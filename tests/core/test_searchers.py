"""Per-variant behaviour tests for the four STS3 searchers."""

import numpy as np
import pytest

from repro.core import (
    ApproximateSearcher,
    Bound,
    DictInvertedIndex,
    Grid,
    IndexedSearcher,
    NaiveSearcher,
    PruningSearcher,
    transform,
    zone_histogram,
)
from repro.core.jaccard import jaccard
from repro.exceptions import EmptyDatabaseError, ParameterError


@pytest.fixture(scope="module")
def fixture_data():
    rng = np.random.default_rng(11)
    bound = Bound(0.0, 63.0, (-3.0,), (3.0,))
    grid = Grid.from_cell_sizes(bound, sigma=2, epsilon=0.4)
    series = [np.clip(rng.normal(size=64), -3, 3) for _ in range(80)]
    sets = [transform(s, grid) for s in series]
    query_series = np.clip(series[17] + rng.normal(0, 0.1, size=64), -3, 3)
    query_set = transform(query_series, grid)
    return grid, series, sets, query_series, query_set


class TestNaive:
    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            NaiveSearcher([])

    def test_bad_k_raises(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        with pytest.raises(ParameterError):
            NaiveSearcher(sets).query(query_set, k=0)

    def test_finds_near_duplicate(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        result = NaiveSearcher(sets).query(query_set, k=1)
        assert result.best.index == 17

    def test_k_larger_than_db(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        result = NaiveSearcher(sets).query(query_set, k=500)
        assert len(result.neighbors) == len(sets)

    def test_early_stop_matches_exhaustive(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        fast = NaiveSearcher(sets, early_stop=True).query(query_set, k=5)
        slow = NaiveSearcher(sets, early_stop=False).query(query_set, k=5)
        assert fast.indices() == slow.indices()
        assert fast.similarities() == slow.similarities()

    def test_exact_match_has_similarity_one(self, fixture_data):
        _, _, sets, _, _ = fixture_data
        result = NaiveSearcher(sets).query(sets[3], k=1)
        assert result.best.index == 3
        assert result.best.similarity == 1.0

    def test_stats_counted(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        result = NaiveSearcher(sets, early_stop=False).query(query_set, k=1)
        assert result.stats.candidates == len(sets)
        assert result.stats.exact_computations == len(sets)


class TestIndexed:
    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            IndexedSearcher([])

    def test_intersection_counts_exact(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        searcher = IndexedSearcher(sets)
        counts = searcher.intersection_counts(query_set)
        for i, s in enumerate(sets):
            assert counts[i] == np.intersect1d(s, query_set, assume_unique=True).size

    def test_disjoint_query(self, fixture_data):
        _, _, sets, _, _ = fixture_data
        searcher = IndexedSearcher(sets)
        far = np.asarray([10**9, 10**9 + 1], dtype=np.int64)
        counts = searcher.intersection_counts(far)
        assert counts.sum() == 0
        result = searcher.query(far, k=2)
        assert all(n.similarity == 0.0 for n in result.neighbors)

    def test_matches_naive(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        indexed = IndexedSearcher(sets).query(query_set, k=7)
        naive = NaiveSearcher(sets).query(query_set, k=7)
        assert indexed.indices() == naive.indices()
        assert np.allclose(indexed.similarities(), naive.similarities())

    def test_dict_variant_matches(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        dense = IndexedSearcher(sets).query(query_set, k=5)
        sparse = DictInvertedIndex(sets).query(query_set, k=5)
        assert dense.indices() == sparse.indices()

    def test_untouched_series_counted_as_pruned(self, fixture_data):
        _, _, sets, _, query_set = fixture_data
        result = IndexedSearcher(sets).query(query_set, k=1)
        nonzero = int(
            np.count_nonzero(IndexedSearcher(sets).intersection_counts(query_set))
        )
        assert result.stats.exact_computations == nonzero
        assert result.stats.pruned == len(sets) - nonzero


class TestPruning:
    def test_zone_histogram_sums_to_set_size(self, fixture_data):
        grid, _, sets, _, _ = fixture_data
        hist = zone_histogram(sets[0], grid, scale=4)
        assert hist.sum() == len(sets[0])
        assert hist.shape == (16,)

    def test_upper_bound_admissible(self, fixture_data):
        grid, _, sets, _, query_set = fixture_data
        for scale in (1, 2, 5, 9):
            searcher = PruningSearcher(sets, grid, scale=scale)
            bounds = searcher.upper_bounds(query_set)
            for i, s in enumerate(sets):
                assert jaccard(s, query_set) <= bounds[i] + 1e-12

    def test_matches_naive(self, fixture_data):
        grid, _, sets, _, query_set = fixture_data
        for scale in (2, 6):
            pruned = PruningSearcher(sets, grid, scale=scale).query(query_set, k=4)
            naive = NaiveSearcher(sets).query(query_set, k=4)
            assert pruned.indices() == naive.indices()

    def test_unsorted_scan_matches_sorted(self, fixture_data):
        grid, _, sets, _, query_set = fixture_data
        sorted_result = PruningSearcher(sets, grid, 5, sort_candidates=True).query(query_set, k=3)
        paper_result = PruningSearcher(sets, grid, 5, sort_candidates=False).query(query_set, k=3)
        assert sorted_result.indices() == paper_result.indices()

    def test_larger_scale_tightens_bounds(self, fixture_data):
        grid, _, sets, _, query_set = fixture_data
        loose = PruningSearcher(sets, grid, scale=1).upper_bounds(query_set)
        tight = PruningSearcher(sets, grid, scale=10).upper_bounds(query_set)
        # tighter on average — zonewise minima can only drop as zones split
        assert tight.mean() <= loose.mean() + 1e-12

    def test_prunes_something(self, fixture_data):
        grid, _, sets, _, query_set = fixture_data
        result = PruningSearcher(sets, grid, scale=8).query(query_set, k=1)
        assert result.stats.pruned > 0

    def test_bad_scale_raises(self, fixture_data):
        grid, _, sets, _, _ = fixture_data
        with pytest.raises(ParameterError):
            PruningSearcher(sets, grid, scale=0)


class TestApproximate:
    def test_answer_is_valid_series(self, fixture_data):
        grid, series, sets, query_series, query_set = fixture_data
        searcher = ApproximateSearcher(series, sets, grid.bound, max_scale=4)
        result = searcher.query(query_series, query_set, k=3)
        assert all(0 <= n.index < len(sets) for n in result.neighbors)
        # similarities are the *exact* full-resolution Jaccard values
        for n in result.neighbors:
            assert n.similarity == pytest.approx(jaccard(sets[n.index], query_set))

    def test_filters_most_candidates(self, fixture_data):
        grid, series, sets, query_series, query_set = fixture_data
        searcher = ApproximateSearcher(series, sets, grid.bound, max_scale=5)
        result = searcher.query(query_series, query_set, k=1)
        assert result.stats.final_candidates < len(sets)
        assert result.stats.filter_rounds >= 1

    def test_keeps_at_least_k(self, fixture_data):
        grid, series, sets, query_series, query_set = fixture_data
        searcher = ApproximateSearcher(series, sets, grid.bound, max_scale=5)
        result = searcher.query(query_series, query_set, k=5)
        assert len(result.neighbors) == 5

    def test_exact_duplicate_always_survives(self, fixture_data):
        """A database series identical to the query ties the maximal
        coarse similarity at every scale, so it is never filtered."""
        grid, series, sets, _, _ = fixture_data
        searcher = ApproximateSearcher(series, sets, grid.bound, max_scale=5)
        result = searcher.query(series[29], sets[29], k=1)
        assert result.best.index == 29
        assert result.best.similarity == 1.0

    def test_bad_max_scale_raises(self, fixture_data):
        grid, series, sets, _, _ = fixture_data
        with pytest.raises(ParameterError):
            ApproximateSearcher(series, sets, grid.bound, max_scale=1)

    def test_mismatched_lists_raise(self, fixture_data):
        grid, series, sets, _, _ = fixture_data
        with pytest.raises(ParameterError):
            ApproximateSearcher(series[:-1], sets, grid.bound)
