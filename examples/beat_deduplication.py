"""Near-duplicate detection with the set-similarity join.

Once STS3 maps time series to cell-ID sets, the classic all-pairs
set-similarity join applies directly: find every pair of windows whose
Jaccard similarity exceeds a threshold — e.g. to deduplicate a beat
archive, or to surface recurring patterns.

This example plants duplicated (lightly noised) beats inside an ECG
window collection and recovers the duplicate groups with
:func:`repro.core.similarity_join`.

Run with::

    python examples/beat_deduplication.py
"""

from __future__ import annotations

import numpy as np

from repro.core import STS3Database, similarity_join
from repro.data import ecg_stream
from repro.data.workloads import make_workload

THRESHOLD = 0.75


def main() -> None:
    rng = np.random.default_rng(33)
    stream = ecg_stream(220 * 96, seed=33)
    workload = make_workload(stream, n_series=200, n_queries=1, length=96)
    windows = list(workload.database)

    # Plant duplicates: windows 200-205 are noisy copies of window 17.
    duplicates = [17]
    for _ in range(6):
        copy = windows[17] + rng.normal(0, 0.02, size=96)
        duplicates.append(len(windows))
        windows.append(copy)

    db = STS3Database(windows, sigma=3, epsilon=0.4)
    pairs = similarity_join(db.sets, THRESHOLD)

    print(f"{len(windows)} windows, join threshold J >= {THRESHOLD}")
    print(f"planted duplicate group: {duplicates}\n")
    print(f"{'pair':>12}  Jaccard")
    planted_hits = 0
    for p in pairs[:12]:
        planted = p.first in duplicates and p.second in duplicates
        planted_hits += planted
        marker = " <-- planted" if planted else ""
        print(f"({p.first:>4},{p.second:>4})  {p.similarity:.3f}{marker}")
    if len(pairs) > 12:
        print(f"... and {len(pairs) - 12} more pairs")

    expected = len(duplicates) * (len(duplicates) - 1) // 2
    in_group = sum(
        1 for p in pairs if p.first in duplicates and p.second in duplicates
    )
    print(f"\nduplicate-group pairs recovered: {in_group}/{expected}")


if __name__ == "__main__":
    main()
