"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro import STS3Database
from repro.data import ecg_stream, make_workload
from repro.types import Workload

settings.register_profile(
    "repro",
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def small_workload() -> Workload:
    """120 ECG windows of length 96 plus 8 queries."""
    stream = ecg_stream(130 * 96, seed=7)
    return make_workload(stream, n_series=120, n_queries=8, length=96)


@pytest.fixture(scope="session")
def small_db(small_workload: Workload) -> STS3Database:
    return STS3Database(small_workload.database, sigma=3, epsilon=0.4)
