#!/usr/bin/env python
"""Keep the documentation from rotting (run by the CI ``docs`` job).

Four checks over ``README.md`` and every ``docs/*.md`` file, all
stdlib-only so the job needs no dependencies:

1. **Python examples parse** — every ```` ```python ```` fenced block
   must compile (syntax check; blocks are not executed, so examples may
   reference large workloads).  A block may opt out with a
   ``<!-- docs: skip -->`` comment on the line before the fence.
2. **Doctest examples pass** — fenced blocks whose code contains
   ``>>>`` prompts are additionally run through :mod:`doctest` (these
   must be self-contained and fast; only ``docs/*.md`` is scanned).
3. **Links resolve** — relative markdown links (``[x](../README.md)``,
   ``[y](file.md#anchor)``) must point at existing files, and anchors
   at existing headings in the target file.
4. **No orphaned pages** — every ``docs/*.md`` file must be reachable
   by following markdown links from the roots (``README.md`` and
   ``docs/api.md``).  A page nothing links to is documentation nobody
   will find; link it from a root (or from a page a root links to).

Exit status is the number of problems found (0 = clean).
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

_FENCE = re.compile(r"^(?P<indent> *)```(?P<lang>[\w-]*)\s*$")
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def doc_files() -> list[Path]:
    """The markdown files under check: README plus docs/*.md."""
    return [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))


def fenced_blocks(text: str) -> list[tuple[int, str, str]]:
    """``(first_line_number, language, code)`` for each fenced block."""
    blocks = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        match = _FENCE.match(lines[i])
        if match:
            lang = match.group("lang")
            indent = len(match.group("indent"))
            body: list[str] = []
            start = i + 1
            i += 1
            while i < len(lines) and not _FENCE.match(lines[i]):
                body.append(lines[i][indent:])
                i += 1
            skip = start >= 2 and "docs: skip" in lines[start - 2]
            if not skip:
                blocks.append((start + 1, lang, "\n".join(body)))
        i += 1
    return blocks


def heading_anchors(text: str) -> set[str]:
    """GitHub-style anchor slugs for every heading in ``text``."""
    anchors = set()
    for heading in _HEADING.findall(text):
        slug = re.sub(r"[`*_]", "", heading.strip().lower())
        slug = re.sub(r"[^\w\- ]", "", slug)
        anchors.add(slug.replace(" ", "-"))
    return anchors


def check_python_blocks(path: Path, text: str) -> list[str]:
    problems = []
    for line, lang, code in fenced_blocks(text):
        if lang != "python":
            continue
        try:
            compile(code, f"{path.name}:{line}", "exec")
        except SyntaxError as exc:
            problems.append(
                f"{path.relative_to(REPO)}:{line}: python example does not "
                f"parse: {exc.msg} (line {exc.lineno} of the block)"
            )
    return problems


def check_doctests(path: Path, text: str) -> list[str]:
    problems = []
    runner = doctest.DocTestRunner(verbose=False)
    parser = doctest.DocTestParser()
    for line, lang, code in fenced_blocks(text):
        if lang != "python" or ">>>" not in code:
            continue
        test = parser.get_doctest(
            code, {}, f"{path.name}:{line}", str(path), line
        )
        result = runner.run(test, clear_globs=True)
        if result.failed:
            problems.append(
                f"{path.relative_to(REPO)}:{line}: {result.failed} doctest "
                f"example(s) failed (run python -m doctest for details)"
            )
    return problems


def check_links(path: Path, text: str) -> list[str]:
    problems = []
    for target in _LINK.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                problems.append(
                    f"{path.relative_to(REPO)}: broken link -> {target}"
                )
                continue
        else:
            resolved = path
        if anchor and resolved.suffix == ".md":
            if anchor.lower() not in heading_anchors(resolved.read_text()):
                problems.append(
                    f"{path.relative_to(REPO)}: broken anchor -> {target}"
                )
    return problems


#: reachability roots for the orphan check: the front door and the API
#: reference, the two places a reader actually starts from.
ORPHAN_ROOTS = ("README.md", "docs/api.md")


def check_orphans() -> list[str]:
    """Flag ``docs/*.md`` pages unreachable from the roots via links."""
    reachable: set[Path] = set()
    queue = [REPO / root for root in ORPHAN_ROOTS]
    while queue:
        path = queue.pop()
        if path in reachable or not path.exists():
            continue
        reachable.add(path)
        for target in _LINK.findall(path.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            file_part = target.partition("#")[0]
            if not file_part.endswith(".md"):
                continue
            queue.append((path.parent / file_part).resolve())
    return [
        f"{path.relative_to(REPO)}: orphaned page — not linked from "
        f"{' or '.join(ORPHAN_ROOTS)} (directly or transitively)"
        for path in doc_files()
        if path.exists() and path not in reachable
    ]


def main() -> int:
    problems: list[str] = []
    checked = 0
    for path in doc_files():
        if not path.exists():
            problems.append(f"missing documentation file: {path}")
            continue
        text = path.read_text()
        problems += check_python_blocks(path, text)
        if path.parent.name == "docs":
            problems += check_doctests(path, text)
        problems += check_links(path, text)
        checked += 1
    problems += check_orphans()
    for problem in problems:
        print(problem, file=sys.stderr)
    blocks = sum(
        1
        for path in doc_files()
        if path.exists()
        for _, lang, _ in fenced_blocks(path.read_text())
        if lang == "python"
    )
    print(f"checked {checked} files, {blocks} python blocks: "
          f"{len(problems)} problem(s)")
    return min(len(problems), 99)


if __name__ == "__main__":
    raise SystemExit(main())
