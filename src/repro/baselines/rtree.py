"""A 2-D STR-bulk-loaded R-tree.

The paper's introduction describes the classic LCSS acceleration:
"time series are indexed as MBRs (Minimum Boundary Rectangles) stored
in an R-tree.  When a query arrives, its Minimum Bounding Envelope
(MBE) is constructed and split into MBRs" [Vlachos et al.].  This
module provides that substrate — a static R-tree built with the
Sort-Tile-Recursive packing (Leutenegger et al.), sufficient for the
read-only indexing workload of :mod:`repro.baselines.mbe`.

Rectangles live in (time, value) space and are closed on all sides.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError

__all__ = ["Rect", "RTree"]


@dataclass(frozen=True)
class Rect:
    """A closed axis-aligned rectangle in (t, v) space."""

    t_lo: float
    t_hi: float
    v_lo: float
    v_hi: float

    def __post_init__(self) -> None:
        if self.t_hi < self.t_lo or self.v_hi < self.v_lo:
            raise ParameterError(f"degenerate rectangle: {self}")

    def intersects(self, other: "Rect") -> bool:
        """True when the two closed rectangles share any point."""
        return not (
            other.t_lo > self.t_hi
            or other.t_hi < self.t_lo
            or other.v_lo > self.v_hi
            or other.v_hi < self.v_lo
        )

    @staticmethod
    def union(rects: list["Rect"]) -> "Rect":
        """The smallest rectangle covering every input rectangle."""
        return Rect(
            min(r.t_lo for r in rects),
            max(r.t_hi for r in rects),
            min(r.v_lo for r in rects),
            max(r.v_hi for r in rects),
        )


class _Node:
    __slots__ = ("box", "children", "entries")

    def __init__(self, box: Rect, children: list["_Node"] | None, entries: list[tuple[Rect, object]] | None):
        self.box = box
        self.children = children
        self.entries = entries

    @property
    def is_leaf(self) -> bool:
        return self.entries is not None


class RTree:
    """Static R-tree over ``(Rect, payload)`` entries (STR packing).

    STR sorts entries by time center, tiles them into vertical slices,
    sorts each slice by value center, and packs runs of ``fanout``
    entries per leaf; inner levels are packed the same way over the
    child boxes.  Queries walk only subtrees whose box intersects the
    probe rectangle.
    """

    def __init__(self, entries: list[tuple[Rect, object]], fanout: int = 16):
        if fanout < 2:
            raise ParameterError(f"fanout must be >= 2, got {fanout}")
        self.fanout = fanout
        self.size = len(entries)
        self._root = self._build(entries) if entries else None

    def _pack_level(self, items: list, box_of, make_node) -> list["_Node"]:
        """One STR packing pass: items → nodes of ≤ fanout items."""
        n = len(items)
        per_node = self.fanout
        n_nodes = int(np.ceil(n / per_node))
        n_slices = max(1, int(np.ceil(np.sqrt(n_nodes))))
        slice_size = per_node * int(np.ceil(n_nodes / n_slices))
        items = sorted(items, key=lambda it: (box_of(it).t_lo + box_of(it).t_hi))
        nodes: list[_Node] = []
        for start in range(0, n, slice_size):
            chunk = sorted(
                items[start : start + slice_size],
                key=lambda it: (box_of(it).v_lo + box_of(it).v_hi),
            )
            for leaf_start in range(0, len(chunk), per_node):
                group = chunk[leaf_start : leaf_start + per_node]
                nodes.append(make_node(group))
        return nodes

    def _build(self, entries: list[tuple[Rect, object]]) -> _Node:
        leaves = self._pack_level(
            entries,
            box_of=lambda e: e[0],
            make_node=lambda group: _Node(
                Rect.union([r for r, _ in group]), None, list(group)
            ),
        )
        level = leaves
        while len(level) > 1:
            level = self._pack_level(
                level,
                box_of=lambda node: node.box,
                make_node=lambda group: _Node(
                    Rect.union([n.box for n in group]), list(group), None
                ),
            )
        return level[0]

    def query_intersecting(self, probe: Rect) -> list[object]:
        """Payloads of all entries whose rectangle intersects ``probe``."""
        if self._root is None:
            return []
        out: list[object] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.box.intersects(probe):
                continue
            if node.is_leaf:
                out.extend(
                    payload for rect, payload in node.entries if rect.intersects(probe)
                )
            else:
                stack.extend(node.children)
        return out

    def height(self) -> int:
        """Tree height (1 for a single leaf); 0 for an empty tree."""
        if self._root is None:
            return 0
        h, node = 1, self._root
        while not node.is_leaf:
            node = node.children[0]
            h += 1
        return h
