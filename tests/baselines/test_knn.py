"""Tests for the generic k-NN scan and 1-NN classification."""

import numpy as np
import pytest

from repro.baselines.ed import euclidean
from repro.baselines.knn import (
    error_rate,
    knn_classify,
    knn_search,
    measures,
    nn_classify,
)
from repro.data.ucr_like import smooth_outlines
from repro.exceptions import EmptyDatabaseError, ParameterError
from repro.types import LabeledDataset


@pytest.fixture(scope="module")
def database():
    rng = np.random.default_rng(0)
    return [rng.normal(size=32) for _ in range(30)]


class TestKnnSearch:
    def test_empty_raises(self):
        with pytest.raises(EmptyDatabaseError):
            knn_search([], np.zeros(3), measures.ed())

    def test_bad_k_raises(self, database):
        with pytest.raises(ParameterError):
            knn_search(database, database[0], measures.ed(), k=0)

    def test_self_is_nearest(self, database):
        result = knn_search(database, database[11], measures.ed(), k=1)
        assert result[0][0] == 11
        assert result[0][1] == 0.0

    def test_results_sorted(self, database):
        rng = np.random.default_rng(1)
        result = knn_search(database, rng.normal(size=32), measures.ed(), k=5)
        distances = [d for _, d in result]
        assert distances == sorted(distances)

    def test_early_stop_matches_exhaustive(self, database):
        rng = np.random.default_rng(2)
        query = rng.normal(size=32)
        fast = knn_search(database, query, measures.ed(), k=4, early_stop=True)
        slow = knn_search(database, query, measures.ed(), k=4, early_stop=False)
        assert [i for i, _ in fast] == [i for i, _ in slow]
        assert [d for _, d in fast] == pytest.approx([d for _, d in slow])

    def test_matches_brute_force(self, database):
        rng = np.random.default_rng(3)
        query = rng.normal(size=32)
        got = knn_search(database, query, measures.ed(), k=3)
        brute = sorted(
            ((euclidean(query, s), i) for i, s in enumerate(database))
        )[:3]
        assert [i for i, _ in got] == [i for _, i in brute]

    def test_k_capped(self, database):
        result = knn_search(database[:4], database[0], measures.ed(), k=100)
        assert len(result) == 4

    def test_dtw_measure(self, database):
        result = knn_search(database, database[5], measures.dtw(window=3), k=1)
        assert result[0][0] == 5

    def test_lcss_measure(self, database):
        result = knn_search(database, database[5], measures.lcss(0.5), k=1)
        assert result[0][1] == 0.0

    def test_ftse_measure_matches_lcss(self, database):
        rng = np.random.default_rng(4)
        query = rng.normal(size=32)
        a = knn_search(database, query, measures.lcss(0.5), k=3, early_stop=False)
        b = knn_search(database, query, measures.ftse(0.5), k=3, early_stop=False)
        assert [i for i, _ in a] == [i for i, _ in b]

    def test_fastdtw_measure_runs(self, database):
        result = knn_search(
            database, database[9], measures.fast_dtw(radius=0), k=1, early_stop=False
        )
        assert result[0][0] == 9


class TestClassification:
    @pytest.fixture(scope="class")
    def dataset(self):
        return smooth_outlines(
            n_classes=3, n_train_per_class=6, n_test_per_class=4, length=48, seed=7
        )

    def test_nn_classify_returns_label(self, dataset):
        label = nn_classify(dataset.train, dataset.test.series[0], measures.ed())
        assert label in set(dataset.train.labels.tolist())

    def test_error_rate_range(self, dataset):
        err = error_rate(dataset.train, dataset.test, measures.ed())
        assert 0.0 <= err <= 1.0

    def test_error_rate_zero_on_train(self, dataset):
        err = error_rate(dataset.train, dataset.train, measures.ed())
        assert err == 0.0

    def test_dtw_handles_warped_classes(self, dataset):
        window = max(1, dataset.length // 10)
        err = error_rate(dataset.train, dataset.test, measures.dtw(window=window))
        assert err < 0.5

    def test_constant_labels_classified_perfectly(self):
        rng = np.random.default_rng(8)
        train = LabeledDataset([rng.normal(size=16) for _ in range(6)], np.zeros(6))
        test = LabeledDataset([rng.normal(size=16) for _ in range(3)], np.zeros(3))
        assert error_rate(train, test, measures.ed()) == 0.0


class TestKnnClassify:
    @pytest.fixture(scope="class")
    def train(self):
        rng = np.random.default_rng(9)
        series = [rng.normal(size=24) for _ in range(12)]
        labels = np.repeat([0, 1], 6)
        return LabeledDataset(series, labels)

    def test_k1_matches_nn_classify(self, train):
        rng = np.random.default_rng(10)
        for _ in range(5):
            query = rng.normal(size=24)
            assert knn_classify(train, query, measures.ed(), k=1) == nn_classify(
                train, query, measures.ed()
            )

    def test_majority_wins(self, train):
        """A query equal to a class-0 series with many class-0 twins."""
        query = train.series[0]
        assert knn_classify(train, query, measures.ed(), k=5) in (0, 1)
        # exact copy: its own label must win at k=1
        assert knn_classify(train, query, measures.ed(), k=1) == int(train.labels[0])

    def test_tie_broken_by_distance(self):
        # two labels, one neighbour each at different distances, k=2
        train = LabeledDataset(
            [np.zeros(4), np.ones(4) * 10], np.array([7, 8])
        )
        query = np.ones(4)  # closer to the zeros series
        assert knn_classify(train, query, measures.ed(), k=2) == 7

    def test_returns_valid_label(self, train):
        rng = np.random.default_rng(11)
        label = knn_classify(train, rng.normal(size=24), measures.ed(), k=3)
        assert label in set(train.labels.tolist())
