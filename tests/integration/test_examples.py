"""Integrity tests for the example scripts.

Every example must at least compile (so documentation code never
rots); the fast ones are executed end-to-end in a subprocess and their
key output lines asserted.  The slower tuning-heavy examples are
compile-checked only (their logic is covered by the unit suites).
"""

from __future__ import annotations

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"
ALL_EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))

#: examples fast enough to execute in the test suite, with a string
#: their stdout must contain.
RUNNABLE = {
    "quickstart.py": "auto-dispatched nearest neighbour",
    "ecg_monitoring.py": "after streaming",
    "beat_deduplication.py": "duplicate-group pairs recovered",
}


def test_examples_exist():
    assert len(ALL_EXAMPLES) >= 7


@pytest.mark.parametrize("path", ALL_EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    py_compile.compile(str(path), doraise=True)


@pytest.mark.parametrize("name", sorted(RUNNABLE), ids=str)
def test_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert RUNNABLE[name] in result.stdout
