"""Benchmark: background maintenance vs stop-the-world compaction.

Drives an identical sustained insert stream (out-of-bound spikes force
a steady trickle of segment seals) into two databases:

- **stop-the-world** — after every insert, tier merges run inline to
  the policy fixpoint, so the insert call pays for every merge;
- **background** — a :class:`~repro.core.maintenance.MaintenanceEngine`
  thread merges concurrently; the insert call only ever waits for the
  atomic snapshot swap.

Per-insert latency is recorded for both (p50/p99), the live-segment
count is sampled after every background insert and gated against a
ceiling, and at every ``--sample-every`` checkpoint both databases are
quiesced to the tier fixpoint and probed with the same query set —
layouts and k-NN answers must be bit-identical (the merge policy is
confluent: interleaving must not change where the catalog converges).

Results land in ``BENCH_maintenance.json`` and a summary is appended to
the append-only ``BENCH_trajectory.json`` history.

Run standalone::

    PYTHONPATH=src python benchmarks/bench_maintenance.py

or as a CI gate on a small workload::

    PYTHONPATH=src python benchmarks/bench_maintenance.py \
        --series 400 --inserts 240 --min-p99-speedup 1.0
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import STS3Database, __version__
from repro.core import MaintenanceConfig, MaintenanceEngine, plan_merge

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_maintenance.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=1000,
                        help="base database size")
    parser.add_argument("--inserts", type=int, default=600,
                        help="sustained insert stream length")
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--buffer-capacity", type=int, default=8,
                        help="seal cadence: smaller = more segments")
    parser.add_argument("--max-segments", type=int, default=6,
                        help="background merges trigger past this count")
    parser.add_argument("--tier-base", type=int, default=32)
    parser.add_argument("--fanout", type=int, default=2)
    parser.add_argument("--interval", type=float, default=0.001,
                        help="engine wake-up interval (seconds)")
    parser.add_argument("--sample-every", type=int, default=100,
                        help="inserts between quiesce-and-compare points")
    parser.add_argument("--probes", type=int, default=5,
                        help="probe queries per sample point")
    parser.add_argument("--ceiling-slack", type=int, default=None,
                        help="allowed live segments above max_segments "
                             "mid-soak (default: fanout + 2)")
    parser.add_argument("--min-p99-speedup", type=float, default=1.0,
                        help="exit non-zero when stop-the-world p99 / "
                             "background p99 falls below this "
                             "(negative disables the gate)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def _insert_stream(args) -> list[np.ndarray]:
    """Deterministic stream; every 4th insert breaks the bound (seals)."""
    rng = np.random.default_rng(args.seed + 1)
    stream = []
    spike = 100.0
    for i in range(args.inserts):
        series = rng.normal(size=args.length)
        if i % 4 == 3:
            series[int(rng.integers(0, args.length))] = spike
            spike += 10.0  # always breaks even the grown bound
        stream.append(series)
    return stream


def _fresh_db(args) -> STS3Database:
    rng = np.random.default_rng(args.seed)
    base = [rng.normal(size=args.length) for _ in range(args.series)]
    return STS3Database(
        base, sigma=args.sigma, epsilon=args.epsilon,
        normalize=False, buffer_capacity=args.buffer_capacity,
    )


def _probe_queries(args) -> list[np.ndarray]:
    rng = np.random.default_rng(args.seed + 2)
    return [rng.normal(size=args.length) for _ in range(args.probes)]


def _answers(db, queries, k):
    return [
        [
            (n.index, round(n.similarity, 12))
            for n in db.query(q, k=k, method="index").neighbors
        ]
        for q in queries
    ]


def _merge_to_fixpoint(db, config) -> int:
    merges = 0
    while True:
        window = plan_merge(db.catalog.segments, config)
        if window is None:
            return merges
        db.catalog.merge_run(*window)
        merges += 1


def _percentile(samples, q) -> float:
    return float(np.percentile(np.asarray(samples), q))


def run(args: argparse.Namespace) -> dict:
    config = MaintenanceConfig(
        max_segments=args.max_segments, tier_base=args.tier_base,
        fanout=args.fanout, interval_s=args.interval,
    )
    slack = args.ceiling_slack
    if slack is None:
        slack = args.fanout + 2
    ceiling = args.max_segments + slack
    stream = _insert_stream(args)
    queries = _probe_queries(args)
    sample_points = list(range(args.sample_every, args.inserts + 1,
                               args.sample_every))
    if sample_points and sample_points[-1] != args.inserts:
        sample_points.append(args.inserts)
    print(
        f"workload: {args.series} series, {args.inserts} inserts, "
        f"seal every ~{4 * args.buffer_capacity} inserts, "
        f"tier_base {args.tier_base}, fanout {args.fanout}, "
        f"trigger > {args.max_segments} segments",
        flush=True,
    )

    # -- stop-the-world: merges run inline inside the insert loop -------
    serial = _fresh_db(args)
    serial_latencies = []
    serial_samples = {}
    serial_merges = 0
    reenable = gc.isenabled()
    gc.disable()
    try:
        for i, series in enumerate(stream, start=1):
            start = time.perf_counter()
            serial.insert(series)
            serial_merges += _merge_to_fixpoint(serial, config)
            serial_latencies.append(time.perf_counter() - start)
            if i in sample_points:
                serial_samples[i] = (
                    [len(s) for s in serial.catalog.segments],
                    _answers(serial, queries, args.k),
                )
    finally:
        if reenable:
            gc.enable()

    # -- background: the engine thread owns every merge -----------------
    background = _fresh_db(args)
    engine = MaintenanceEngine(background, config)
    background_latencies = []
    background_samples = {}
    max_live = len(background.catalog.segments)
    ceiling_ok = True
    engine.start()
    gc.disable()
    try:
        for i, series in enumerate(stream, start=1):
            start = time.perf_counter()
            background.insert(series)
            background_latencies.append(time.perf_counter() - start)
            live = len(background.catalog.segments)
            max_live = max(max_live, live)
            if live > ceiling:
                ceiling_ok = False
            if i in sample_points:
                # quiesce: merges the stream raced ahead of finish now,
                # bringing both databases to the same policy fixpoint
                engine.run_until_idle()
                background_samples[i] = (
                    [len(s) for s in background.catalog.segments],
                    _answers(background, queries, args.k),
                )
    finally:
        if reenable:
            gc.enable()
        engine.stop()

    identical = all(
        serial_samples[i] == background_samples[i] for i in sample_points
    )
    serial_p99 = _percentile(serial_latencies, 99)
    background_p99 = _percentile(background_latencies, 99)
    speedup = serial_p99 / background_p99 if background_p99 > 0 else float("inf")

    record = {
        "benchmark": "maintenance",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_inserts": args.inserts,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "buffer_capacity": args.buffer_capacity,
        },
        "policy": {
            "max_segments": args.max_segments,
            "tier_base": args.tier_base,
            "fanout": args.fanout,
            "interval_s": args.interval,
        },
        "stop_the_world": {
            "p50_ms": round(_percentile(serial_latencies, 50) * 1e3, 4),
            "p99_ms": round(serial_p99 * 1e3, 4),
            "total_seconds": round(sum(serial_latencies), 6),
            "merges": serial_merges,
        },
        "background": {
            "p50_ms": round(_percentile(background_latencies, 50) * 1e3, 4),
            "p99_ms": round(background_p99 * 1e3, 4),
            "total_seconds": round(sum(background_latencies), 6),
            "merges": engine.merges,
            "max_live_segments": max_live,
            "ceiling": ceiling,
            "ceiling_ok": ceiling_ok,
        },
        "p99_speedup": round(speedup, 3),
        "sample_points": sample_points,
        "identical_at_every_sample": identical,
    }
    print(
        f"stop-the-world: p50 {record['stop_the_world']['p50_ms']:8.3f} ms  "
        f"p99 {record['stop_the_world']['p99_ms']:8.3f} ms  "
        f"({serial_merges} inline merges)"
    )
    print(
        f"background    : p50 {record['background']['p50_ms']:8.3f} ms  "
        f"p99 {record['background']['p99_ms']:8.3f} ms  "
        f"({engine.merges} engine merges)"
    )
    print(
        f"p99 speedup {speedup:.2f}x   live segments <= {max_live} "
        f"(ceiling {ceiling}, ok={ceiling_ok})   "
        f"identical at samples={identical}"
    )
    serial.close()
    background.close()
    return record


def append_trajectory(record: dict, path: Path) -> None:
    """Append this run to the shared append-only trajectory history."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "maintenance",
        "phase": "maintenance",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": record["workload"],
        "summary": {
            "p99_speedup": record["p99_speedup"],
            "stop_the_world_p99_ms": record["stop_the_world"]["p99_ms"],
            "background_p99_ms": record["background"]["p99_ms"],
            "max_live_segments": record["background"]["max_live_segments"],
            "ceiling_ok": record["background"]["ceiling_ok"],
            "identical_at_every_sample": record["identical_at_every_sample"],
        },
    }
    history["runs"].append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended run {len(history['runs'])} to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    record = run(args)

    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args.trajectory)

    if not record["identical_at_every_sample"]:
        print(
            "FAIL: background maintenance diverged from the serial "
            "baseline at a sample point",
            file=sys.stderr,
        )
        return 1
    if not record["background"]["ceiling_ok"]:
        print(
            f"FAIL: live segments exceeded the ceiling "
            f"({record['background']['max_live_segments']} > "
            f"{record['background']['ceiling']})",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_p99_speedup >= 0
        and record["p99_speedup"] < args.min_p99_speedup
    ):
        print(
            f"FAIL: p99 speedup {record['p99_speedup']}x below the "
            f"{args.min_p99_speedup}x floor",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
