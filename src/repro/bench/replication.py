"""The replication lever: replica reads, lag convergence, failover.

One phase, four verdicts (docs/replication.md):

- **read throughput** — batch k-NN queries/second under
  ``read_preference="nearest"`` (the batch striped across the primary
  plus every caught-up follower) against the same batch served by the
  primary alone.  Followers are whole processes over the same
  partition, so replica reads scale the way shards do; the CI gate
  asserts ≥1.5x with two followers on the 4-vCPU runner.
- **bit-identity** — striped answers must equal primary-only answers
  bit for bit (similarities compared by ``float.hex``): a caught-up
  follower is the same database, so routing must never change an
  answer.
- **lag convergence** — after a write burst, every follower's
  ``lag_records`` must be exactly 0 (shipping runs inline with the
  ack, so the healthy steady state has no visible staleness window).
- **failover** — an acked insert must survive SIGKILL of its primary:
  the next query promotes the freshest follower and stays complete,
  the fencing epoch moves, and the insert is found at similarity 1.0
  under its acked id — the zero-acked-write-loss drill.

Wired into ``benchmarks/bench_replication.py`` (the CI gate).  The
record carries ``available_cores`` so a ~1.0x run on a starved machine
reads as the hardware ceiling it is, not a regression.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from ..core.executor import available_cpu_count
from ..core.shard import ShardedDatabase
from .levers import _best_of

__all__ = ["run_replication_phase"]


def _hex_answers(results) -> list:
    """Neighbor lists with similarities as exact hex — bitwise compare."""
    return [
        [(n.index, float(n.similarity).hex()) for n in r.neighbors]
        for r in results
    ]


def run_replication_phase(
    n_series: int = 4000,
    n_queries: int = 64,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    shards: int = 1,
    replicas: int = 2,
    writes: int = 16,
    directory: str | Path | None = None,
    check_faults: bool = True,
) -> dict:
    """Benchmark and verify the replicated engine; returns the phase record.

    One shard with N followers isolates the replica-read lever from
    the shard lever: every endpoint holds the *same* partition, so any
    speedup is striping across followers, not partitioning.
    ``check_faults=False`` skips the primary-kill drill.
    """
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=length) for _ in range(n_series)]
    queries = [rng.normal(size=length) for _ in range(n_queries)]

    tmp = None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="sts3-replication-bench-")
        directory = Path(tmp.name) / "shards"
    try:
        sharded = ShardedDatabase.build(
            base, shards, directory,
            sigma=sigma, epsilon=epsilon, normalize=False, replicas=replicas,
        )
        try:
            # warm every endpoint, then time primary-only vs striped
            sharded.query_batch(queries[:4], k=k, method="index")
            sharded.query_batch(
                queries[:4], k=k, method="index", read_preference="nearest"
            )
            primary_results = sharded.query_batch(queries, k=k, method="index")
            primary_seconds = _best_of(
                lambda: sharded.query_batch(queries, k=k, method="index"),
                repeats,
            )
            striped_results = sharded.query_batch(
                queries, k=k, method="index", read_preference="nearest"
            )
            striped_seconds = _best_of(
                lambda: sharded.query_batch(
                    queries, k=k, method="index", read_preference="nearest"
                ),
                repeats,
            )
            identical = _hex_answers(primary_results) == _hex_answers(
                striped_results
            )
            complete = all(r.complete for r in striped_results)

            # write burst: inline shipping must leave zero visible lag
            for _ in range(writes):
                sharded.insert(rng.normal(size=length))
            lags = [
                replica["lag_records"]
                for entry in sharded.replica_status()
                for replica in entry["replicas"]
                if replica["alive"]
            ]
            record = {
                "phase": "replication",
                "n_series": n_series,
                "n_queries": n_queries,
                "k": k,
                "shards": shards,
                "replicas": replicas,
                "available_cores": available_cpu_count(),
                "primary_seconds": round(primary_seconds, 6),
                "striped_seconds": round(striped_seconds, 6),
                "replica_read_speedup": round(
                    primary_seconds / striped_seconds, 3
                ),
                "primary_queries_per_second": round(
                    n_queries / primary_seconds, 2
                ),
                "striped_queries_per_second": round(
                    n_queries / striped_seconds, 2
                ),
                "identical_neighbor_lists": identical,
                "all_complete": complete,
                "writes": writes,
                "followers_live": len(lags),
                "max_lag_records": max(lags) if lags else None,
                "lag_converged": bool(lags) and max(lags) == 0,
            }
            if check_faults:
                record.update(_failover_drill(sharded, rng, length, k))
            return record
        finally:
            sharded.close()
    finally:
        if tmp is not None:
            tmp.cleanup()


def _failover_drill(sharded: ShardedDatabase, rng, length: int, k: int) -> dict:
    """SIGKILL the primary after an acked insert; verify the contract.

    Expected sequence: the post-kill query promotes the freshest
    follower inline and is already complete (no degraded window — the
    difference from the replica-free engine's restart drill); the
    fencing epoch moves; the acked insert is found at exactly
    similarity 1.0 under its acked id.
    """
    probe = rng.normal(size=length) * 8.0  # out-of-bound: exercises the buffer
    report = sharded.insert(probe)
    victim = report["shard"]
    epoch_before = int(sharded.manifest["epochs"][victim])
    sharded.kill_worker(victim)
    started = time.perf_counter()
    promoted = sharded.query(probe, k=k, method="index")
    failover_seconds = time.perf_counter() - started
    found = any(
        n.index == report["id"] and n.similarity == 1.0
        for n in promoted.neighbors
    )
    epoch_after = int(sharded.manifest["epochs"][victim])
    return {
        "fault_insert_id": report["id"],
        "fault_killed_shard": victim,
        "fault_promoted_complete": promoted.complete
        and promoted.skipped_shards == [],
        "fault_epoch_moved": epoch_after > epoch_before,
        "fault_acked_write_found": found,
        "fault_failover_seconds": round(failover_seconds, 6),
        "fault_ok": (
            promoted.complete
            and promoted.skipped_shards == []
            and epoch_after > epoch_before
            and found
        ),
    }
