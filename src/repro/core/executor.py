"""Shared thread pool for parallel segment execution (DESIGN.md §13).

The planner's unit of parallel work is one :class:`SegmentPlan` (or one
shard of a batch): independent numpy sweeps — popcount, GEMM,
``searchsorted`` — that release the GIL, so *threads* scale them across
cores without the pickling and copy-on-write costs of the
process-based ``query_batch(workers=N)`` path.  An
:class:`ExecutorPool` wraps one lazily-created
:class:`~concurrent.futures.ThreadPoolExecutor` per worker count and is
shared process-wide (:func:`get_pool`): pools are tiny, and sharing
keeps thread churn off the per-query path.

Determinism: :meth:`ExecutorPool.map_ordered` returns results in
submission order regardless of completion order, which is what lets the
planner keep its bit-identical ``(similarity desc, index asc)`` merge —
parallelism changes *when* a segment answer is computed, never how
answers combine.

``resolve_workers`` is the single knob-decoding point: ``None`` → 1
(serial — the default, so single-threaded callers and deterministic
tests see byte-identical behaviour), ``0`` → one worker per *available*
CPU (cgroup/affinity aware via :func:`available_cpu_count`), any other
value is used as-is.  ``STS3_MAX_WORKERS`` caps whatever the knob
resolves to, so operators can bound fan-out without touching call
sites.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["ExecutorPool", "available_cpu_count", "get_pool", "resolve_workers"]

MAX_WORKERS_ENV = "STS3_MAX_WORKERS"


def available_cpu_count() -> int:
    """CPUs this process may actually run on.

    ``os.cpu_count()`` reports the machine, not the container: under a
    CPU-limited cgroup or a pinned affinity mask it oversubscribes.
    ``sched_getaffinity`` reflects the real allowance where the
    platform supports it.
    """
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):
        return os.cpu_count() or 1


def _env_worker_cap() -> int | None:
    raw = os.environ.get(MAX_WORKERS_ENV)
    if raw is None or not raw.strip():
        return None
    try:
        cap = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{MAX_WORKERS_ENV} must be a positive integer, got {raw!r}"
        ) from exc
    if cap < 1:
        raise ValueError(f"{MAX_WORKERS_ENV} must be >= 1, got {cap}")
    return cap


def resolve_workers(max_workers: int | None) -> int:
    """Decode the ``max_workers`` knob into a concrete worker count."""
    if max_workers is None:
        return 1
    workers = int(max_workers)
    if workers < 0:
        raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
    if workers == 0:
        workers = available_cpu_count()
    cap = _env_worker_cap()
    if cap is not None:
        workers = min(workers, cap)
    return max(workers, 1)


class ExecutorPool:
    """A named, lazily-started thread pool with ordered fan-out.

    Threads are created on first use and reused for the life of the
    process (``ThreadPoolExecutor`` joins them at interpreter exit).
    The pool is safe to share between databases: tasks carry their own
    state and the planner gives each worker thread its own workspace.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError(f"ExecutorPool needs >= 1 worker, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="sts3-exec",
                    )
        return self._executor

    def map_ordered(self, fn, items) -> list:
        """Run ``fn(item)`` for every item; results in submission order.

        Exceptions propagate from the first failing item (in submission
        order), matching what a plain loop would raise.
        """
        executor = self._ensure()
        futures = [executor.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def _reset_after_fork(self) -> None:
        """Drop executor state inherited across ``fork``.

        The child inherits the pool *object* but not the pool's threads
        (only the forking thread survives), so a carried-over executor
        would accept work that nothing ever runs.  Locks are replaced
        too: the parent may have been holding them mid-operation.
        """
        self._executor = None
        self._lock = threading.Lock()

    def shutdown(self) -> None:
        """Join the worker threads (tests; production pools live on)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


_pools: dict[int, ExecutorPool] = {}
_pools_lock = threading.Lock()


def get_pool(max_workers: int) -> ExecutorPool:
    """The process-wide shared pool for ``max_workers`` threads."""
    max_workers = int(max_workers)
    with _pools_lock:
        pool = _pools.get(max_workers)
        if pool is None:
            pool = _pools[max_workers] = ExecutorPool(max_workers)
        return pool


def _reset_pools_after_fork() -> None:
    global _pools_lock
    _pools_lock = threading.Lock()
    for pool in _pools.values():
        pool._reset_after_fork()


if hasattr(os, "register_at_fork"):  # pragma: no branch - posix in CI
    os.register_at_fork(after_in_child=_reset_pools_after_fork)
