"""Tests for the paper's extension features.

Per-axis value cell sizes (Section 5.1), parallel batch queries
(conclusion's future work), and their interaction with the standard
search paths.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.grid import Bound, Grid
from repro.exceptions import ParameterError


class TestPerAxisEpsilons:
    def _bound(self):
        return Bound(0.0, 9.0, (-1.0, -2.0), (1.0, 2.0))

    def test_construction(self):
        grid = Grid.from_axis_cell_sizes(self._bound(), sigma=2, epsilons=(0.5, 1.0))
        assert grid.n_rows == (5, 5)

    def test_differs_from_shared_epsilon(self):
        shared = Grid.from_cell_sizes(self._bound(), sigma=2, epsilon=0.5)
        per_axis = Grid.from_axis_cell_sizes(self._bound(), sigma=2, epsilons=(0.5, 1.0))
        assert shared.n_rows != per_axis.n_rows

    def test_validation(self):
        with pytest.raises(ParameterError):
            Grid.from_axis_cell_sizes(self._bound(), sigma=0, epsilons=(1.0, 1.0))
        with pytest.raises(ParameterError):
            Grid.from_axis_cell_sizes(self._bound(), sigma=1, epsilons=(1.0,))
        with pytest.raises(ParameterError):
            Grid.from_axis_cell_sizes(self._bound(), sigma=1, epsilons=(1.0, -1.0))

    def test_database_accepts_tuple_epsilon(self):
        rng = np.random.default_rng(0)
        series = [rng.normal(size=(40, 2)) for _ in range(15)]
        db = STS3Database(series, sigma=2, epsilon=(0.4, 0.8))
        result = db.query(series[3], k=1, method="naive")
        assert result.best.index == 3
        assert result.best.similarity == 1.0

    def test_tuple_epsilon_survives_rebuild(self):
        rng = np.random.default_rng(1)
        series = [rng.normal(size=(20, 2)) for _ in range(5)]
        db = STS3Database(
            series, sigma=2, epsilon=(0.4, 0.8), normalize=False, buffer_capacity=1
        )
        spike = np.zeros((20, 2))
        spike[0, 0] = 99.0
        db.insert(spike)  # forces a rebuild through the buffer
        assert db.rebuild_count == 1
        assert db.grid.row_heights == (0.4, 0.8)


class TestQueryBatch:
    @pytest.fixture(scope="class")
    def db_and_queries(self):
        rng = np.random.default_rng(2)
        series = [rng.normal(size=64) for _ in range(60)]
        queries = [rng.normal(size=64) for _ in range(12)]
        return STS3Database(series, sigma=2, epsilon=0.4), queries

    def test_sequential_matches_individual(self, db_and_queries):
        db, queries = db_and_queries
        batch = db.query_batch(queries, k=3, method="index")
        for q, result in zip(queries, batch):
            single = db.query(q, k=3, method="index")
            assert result.indices() == single.indices()

    @pytest.mark.parametrize("method", ["naive", "index", "pruning", "approximate"])
    def test_parallel_matches_sequential(self, db_and_queries, method):
        db, queries = db_and_queries
        sequential = db.query_batch(queries, k=2, method=method)
        parallel = db.query_batch(queries, k=2, method=method, workers=4)
        for a, b in zip(sequential, parallel):
            assert a.indices() == b.indices()
            assert a.similarities() == b.similarities()

    def test_auto_method_resolved_once(self, db_and_queries):
        db, queries = db_and_queries
        results = db.query_batch(queries[:3], k=1, method="auto", workers=2)
        assert len(results) == 3
