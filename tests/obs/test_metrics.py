"""Metrics registry: labels, determinism, export formats, lifecycle."""

from __future__ import annotations

import json

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)


class TestCounter:
    def test_inc_and_value(self):
        reg = MetricsRegistry()
        c = reg.counter("sts3_queries_total", "queries")
        c.inc(method="index")
        c.inc(2, method="index")
        c.inc(method="naive")
        assert c.value(method="index") == 3.0
        assert c.value(method="naive") == 1.0
        assert c.value(method="never") == 0.0

    def test_negative_increment_rejected(self):
        c = MetricsRegistry().counter("c")
        with pytest.raises(ValueError, match="cannot decrease"):
            c.inc(-1)

    def test_unlabelled_series(self):
        c = MetricsRegistry().counter("c")
        c.inc()
        assert c.value() == 1.0


class TestGauge:
    def test_set_inc_and_negative(self):
        g = MetricsRegistry().gauge("sts3_buffer_fill")
        g.set(5)
        g.inc(-2)
        assert g.value() == 3.0


class TestHistogram:
    def test_observe_buckets(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(0.01, 0.1, 1.0))
        for v in (0.005, 0.05, 0.5, 5.0):  # one per bucket + one overflow
            h.observe(v)
        snap = h.series_snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(5.555)
        assert snap["buckets"] == {"0.01": 1, "0.1": 2, "1.0": 3, "+Inf": 4}

    def test_untouched_series_snapshot(self):
        h = MetricsRegistry().histogram("lat")
        assert h.series_snapshot() == {"count": 0, "sum": 0.0, "buckets": {}}

    def test_default_buckets_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS

    def test_empty_buckets_rejected(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            MetricsRegistry().histogram("lat", buckets=())


class TestLabelRemoval:
    """Per-series removal: segment retirement must drop stale labels."""

    def test_remove_one_series(self):
        g = MetricsRegistry().gauge("g")
        g.set(10, segment="1")
        g.set(20, segment="2")
        assert g.remove(segment="1") is True
        assert g.value(segment="1") == 0.0
        assert g.value(segment="2") == 20.0

    def test_remove_missing_returns_false(self):
        g = MetricsRegistry().gauge("g")
        assert g.remove(segment="404") is False

    def test_discard_labels_matches_subset(self):
        g = MetricsRegistry().gauge("g")
        g.set(1, segment="3", state="resident")
        g.set(2, segment="3", state="mapped")
        g.set(3, segment="4", state="resident")
        assert g.discard_labels(segment="3") == 2
        assert g.value(segment="3", state="resident") == 0.0
        assert g.value(segment="4", state="resident") == 3.0

    def test_discard_labels_empty_match_is_noop(self):
        g = MetricsRegistry().gauge("g")
        g.set(1, segment="1")
        assert g.discard_labels() == 0
        assert g.value(segment="1") == 1.0

    def test_removal_works_when_disabled(self):
        # a disabled registry still holds series recorded earlier; the
        # retirement path must be able to clear them regardless
        reg = MetricsRegistry()
        g = reg.gauge("g")
        g.set(5, segment="1")
        reg.enabled = False
        assert g.remove(segment="1") is True

    def test_removed_series_absent_from_export(self):
        reg = MetricsRegistry()
        g = reg.gauge("sts3_bitset_bytes_resident", "resident bytes")
        g.set(100, segment="0")
        g.set(200, segment="1")
        g.discard_labels(segment="0")
        text = reg.to_prometheus()
        assert 'segment="0"' not in text
        assert 'segment="1"' in text


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("c") is reg.counter("c")
        assert isinstance(reg.counter("c"), Counter)
        assert isinstance(reg.gauge("g"), Gauge)
        assert isinstance(reg.histogram("h"), Histogram)

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("name")
        with pytest.raises(ValueError, match="already registered as counter"):
            reg.gauge("name")

    def test_disabled_registry_records_nothing(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("c").inc()
        reg.gauge("g").set(1)
        reg.histogram("h").observe(0.1)
        snap = reg.snapshot()
        assert snap == {"counters": {}, "gauges": {}, "histograms": {}}

    def test_reset_zeroes_but_keeps_definitions(self):
        reg = MetricsRegistry()
        c = reg.counter("c", "help text")
        c.inc()
        reg.reset()
        assert c.value() == 0.0
        assert reg.counter("c") is c  # definition survives

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = set_registry(fresh)
        try:
            assert get_registry() is fresh
        finally:
            set_registry(previous)


class TestSnapshotDeterminism:
    @staticmethod
    def _feed(reg, order):
        for method in order:
            reg.counter("sts3_queries_total", "q").inc(method=method)
        reg.gauge("fill").set(7, shard="b")
        reg.gauge("fill").set(3, shard="a")
        reg.histogram("lat", buckets=(0.1, 1.0)).observe(0.05, op="save")

    def test_same_events_any_order_snapshot_identically(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        self._feed(a, ["index", "naive", "index"])
        self._feed(b, ["naive", "index", "index"])
        assert a.snapshot() == b.snapshot()
        assert a.to_prometheus() == b.to_prometheus()

    def test_snapshot_shape_and_keys(self):
        reg = MetricsRegistry()
        self._feed(reg, ["index"])
        snap = reg.snapshot()
        assert snap["counters"] == {'sts3_queries_total{method="index"}': 1.0}
        assert snap["gauges"] == {'fill{shard="a"}': 3.0, 'fill{shard="b"}': 7.0}
        hist = snap["histograms"]['lat{op="save"}']
        assert hist["count"] == 1
        json.dumps(snap)  # JSON-ready throughout

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(k=3)
        assert reg.counter("c").value(k="3") == 1.0


class TestPrometheus:
    def test_counter_exposition(self):
        reg = MetricsRegistry()
        reg.counter("sts3_queries_total", "queries answered").inc(method="index")
        text = reg.to_prometheus()
        assert "# HELP sts3_queries_total queries answered" in text
        assert "# TYPE sts3_queries_total counter" in text
        assert 'sts3_queries_total{method="index"} 1.0' in text
        assert text.endswith("\n")

    def test_histogram_exposition_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", "latency", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        text = reg.to_prometheus()
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 3' in text
        assert "lat_sum 5.55" in text
        assert "lat_count 3" in text

    def test_no_help_line_when_empty(self):
        reg = MetricsRegistry()
        reg.counter("bare").inc()
        text = reg.to_prometheus()
        assert "# HELP" not in text
        assert "# TYPE bare counter" in text
