"""Parallel segment execution is bit-identical to serial execution.

The DESIGN.md §13 contract: ``max_workers`` changes wall-clock time,
never answers.  Segment plans are independent, ``map_ordered`` hands
results back in submission order, and the KnnHeap merge is
deterministic — so any worker count (including repeated runs with the
same count) must produce exactly the same neighbor lists, similarities
included, for every method, for scalar and batch entry points, and for
degraded (deadline) queries with an injected clock.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import STS3Database
from repro.core.executor import ExecutorPool, get_pool, resolve_workers

LENGTH = 40
WORKER_COUNTS = (1, 2, 8)


def fingerprints(results):
    """Exact (index, similarity) lists — bit-identity, not approximate."""
    return [[(n.index, n.similarity) for n in r.neighbors] for r in results]


def build_db(seed, n_series=120, segments=3, cache_bytes=0):
    """A multi-segment database: base segment + sealed spiked buffers."""
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=LENGTH) for _ in range(n_series)]
    db = STS3Database(
        base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=8,
        cache_bytes=cache_bytes,
    )
    spike = 40.0
    for _ in range(segments - 1):
        for _ in range(8):
            series = rng.normal(size=LENGTH)
            series[int(rng.integers(0, LENGTH))] = spike
            spike += 5.0
            db.insert(series)
    return db, rng


@pytest.fixture(scope="module")
def shared():
    db, rng = build_db(seed=7)
    queries = [rng.normal(size=LENGTH) for _ in range(6)]
    return db, queries


class TestResolveWorkers:
    def test_none_is_serial(self):
        assert resolve_workers(None) == 1

    def test_zero_is_available_cpu_count(self, monkeypatch):
        # 0 means "one per CPU the process may run on" — the affinity
        # mask, not the machine (they differ under cgroup pinning).
        from repro.core.executor import MAX_WORKERS_ENV, available_cpu_count
        monkeypatch.delenv(MAX_WORKERS_ENV, raising=False)
        assert resolve_workers(0) == available_cpu_count()

    def test_explicit_passthrough(self):
        assert resolve_workers(3) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-1)

    def test_pool_registry_reuses_instances(self):
        assert get_pool(2) is get_pool(2)
        assert get_pool(2) is not get_pool(3)

    def test_map_ordered_preserves_submission_order(self):
        pool = ExecutorPool(4)
        out = pool.map_ordered(lambda x: x * x, range(20))
        assert out == [x * x for x in range(20)]


class TestParallelBitIdentity:
    @pytest.mark.parametrize("method", ["naive", "index", "pruning",
                                        "approximate", "minhash"])
    def test_scalar_query_identical_across_worker_counts(self, shared, method):
        db, queries = shared
        db.max_workers = None
        want = fingerprints([db.query(q, k=5, method=method) for q in queries])
        for workers in WORKER_COUNTS:
            db.max_workers = workers
            got = fingerprints([db.query(q, k=5, method=method) for q in queries])
            assert got == want, f"workers={workers} diverged for {method}"
        db.max_workers = None

    @pytest.mark.parametrize("method", ["naive", "index", "pruning",
                                        "approximate", "minhash"])
    def test_batch_query_identical_across_worker_counts(self, shared, method):
        db, queries = shared
        db.max_workers = None
        want = fingerprints(db.query_batch(queries, k=5, method=method))
        for workers in WORKER_COUNTS:
            db.max_workers = workers
            got = fingerprints(db.query_batch(queries, k=5, method=method))
            assert got == want, f"workers={workers} diverged for {method}"
        db.max_workers = None

    def test_repeated_parallel_runs_are_stable(self, shared):
        db, queries = shared
        db.max_workers = 8
        runs = [fingerprints(db.query_batch(queries, k=5, method="index"))
                for _ in range(3)]
        db.max_workers = None
        assert runs[0] == runs[1] == runs[2]

    @given(seed=st.integers(min_value=0, max_value=2**16),
           k=st.integers(min_value=1, max_value=12),
           workers=st.sampled_from(WORKER_COUNTS))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_queries_identical(self, seed, k, workers):
        db, rng = build_db(seed=11, n_series=60, segments=2)
        query_rng = np.random.default_rng(seed)
        queries = [query_rng.normal(size=LENGTH) for _ in range(3)]
        db.max_workers = None
        want = fingerprints(db.query_batch(queries, k=k, method="index"))
        db.max_workers = workers
        got = fingerprints(db.query_batch(queries, k=k, method="index"))
        db.max_workers = None
        assert got == want


def ticking_clock(step):
    """A fake monotonic clock advancing ``step`` seconds per call."""
    ticks = iter(np.arange(0.0, 100_000.0, step))
    return lambda: float(next(ticks))


class TestDeadlineLadderUnderParallelism:
    """The degradation ladder keeps working with workers > 1.

    The injected clock is consumed from multiple threads, so exact tick
    placement isn't reproducible across worker counts — what must hold
    is the ladder's *behavior*: degraded results carry their reason,
    still answer, and name skipped segments honestly.
    """

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_generous_deadline_stays_complete(self, workers):
        db, rng = build_db(seed=3)
        query = rng.normal(size=LENGTH)
        db.max_workers = workers
        db.planner.clock = ticking_clock(0.0001)
        result = db.query(query, k=5, method="index", deadline_ms=10_000)
        assert result.complete is True
        assert result.degraded_reason is None

    @pytest.mark.parametrize("workers", WORKER_COUNTS)
    def test_blown_deadline_degrades_not_raises(self, workers):
        db, rng = build_db(seed=3)
        query = rng.normal(size=LENGTH)
        db.max_workers = workers
        db.planner.clock = ticking_clock(0.2)  # blows a 100 ms budget fast
        result = db.query(query, k=5, method="index", deadline_ms=100)
        assert result.complete is False
        assert result.degraded_reason == "deadline"
        assert len(result.neighbors) > 0  # degraded, never empty
        # skipped segments are named honestly, not fabricated
        assert all(s.startswith("segment-") for s in result.skipped_segments)

    def test_deadline_queries_identical_when_clock_is_serial(self):
        # With one worker the injected clock is consumed sequentially,
        # so the whole degraded result must be reproducible bit-for-bit.
        runs = []
        for _ in range(2):
            db, rng = build_db(seed=5)
            query = rng.normal(size=LENGTH)
            db.max_workers = 1
            db.planner.clock = ticking_clock(0.05)
            result = db.query(query, k=5, method="index", deadline_ms=100)
            runs.append((
                [(n.index, n.similarity) for n in result.neighbors],
                result.complete,
                result.degraded_reason,
                tuple(result.skipped_segments),
            ))
        assert runs[0] == runs[1]
