"""Zero-copy mapped archive loads (DESIGN.md §13).

``load_database(path, mmap=True)`` opens a v4 archive by parsing the
manifest only: every segment becomes a lazy shell over mapped payload
bytes, materialized (and CRC-verified) on first touch.  These tests
pin the contract:

- mapped answers are bit-identical to eager ones, across methods;
- segments stay unmaterialized until a query touches them, and
  ``memory_stats`` reports mapped-vs-resident honestly;
- structural damage (bad footer, truncation) quarantines at open,
  exactly like the eager loader;
- payload corruption the open-time check cannot see raises
  :class:`DatasetError` on first touch instead of returning garbage;
- pre-v4 archives fall back to the eager loader;
- a mapped database still pickles (worker processes re-map lazily).
"""

import pickle
import struct

import numpy as np
import pytest

from repro import STS3Database
from repro.core import load_database, save_database
from repro.core.persistence import _read_manifest
from repro.exceptions import DatasetError

LENGTH = 32
METHODS = ["naive", "index", "pruning", "approximate", "minhash"]


def build_db(seed=13, n_series=50, segments=3):
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=LENGTH) for _ in range(n_series)]
    db = STS3Database(base, sigma=2, epsilon=0.5, normalize=False,
                      buffer_capacity=4)
    spike = 60.0
    for _ in range(segments - 1):
        for _ in range(4):
            series = rng.normal(size=LENGTH)
            series[int(rng.integers(0, LENGTH))] = spike
            spike += 5.0
            db.insert(series)
    return db, rng


@pytest.fixture
def archive(tmp_path):
    db, rng = build_db()
    path = tmp_path / "db.sts3"
    save_database(db, path, pack_bitsets=True)
    return path, db, rng


def fingerprint_of(result):
    return [(n.index, n.similarity) for n in result.neighbors]


def payload_coords(path, index=0):
    """(offset, length) of one segment payload, straight off the manifest."""
    manifest = _read_manifest(path, path.read_bytes())
    payload = manifest["segments"][index]["payload"]
    return int(payload["offset"]), int(payload["length"])


class TestMappedEquivalence:
    def test_answers_bit_identical_to_eager(self, archive):
        path, db, rng = archive
        eager = load_database(path)
        mapped = load_database(path, mmap=True)
        queries = [rng.normal(size=LENGTH) for _ in range(4)]
        for method in METHODS:
            for query in queries:
                want = fingerprint_of(eager.query(query, k=5, method=method))
                got = fingerprint_of(mapped.query(query, k=5, method=method))
                assert got == want, method

    def test_catalog_shape_matches(self, archive):
        path, db, _ = archive
        mapped = load_database(path, mmap=True)
        assert len(mapped.catalog.segments) == len(db.catalog.segments)
        assert [len(s) for s in mapped.catalog.segments] == \
            [len(s) for s in db.catalog.segments]

    def test_loader_knobs_apply(self, archive):
        path, _, _ = archive
        mapped = load_database(path, mmap=True, max_workers=2,
                               cache_bytes=1 << 16)
        assert mapped.max_workers == 2
        assert mapped.result_cache is not None
        assert mapped.result_cache.capacity_bytes == 1 << 16


class TestLaziness:
    def test_segments_start_lazy_and_sized(self, archive):
        path, db, _ = archive
        mapped = load_database(path, mmap=True)
        for segment, original in zip(mapped.catalog.segments,
                                     db.catalog.segments):
            assert segment.is_lazy
            assert len(segment) == len(original)  # size without touching
        for segment in mapped.catalog.segments:
            assert segment.is_lazy  # __len__ must not materialize

    def test_memory_stats_report_mapped_bytes(self, archive):
        path, _, rng = archive
        mapped = load_database(path, mmap=True)
        stats = mapped.catalog.segments[0].memory_stats()
        assert stats["mapped_payload_bytes"] > 0
        mapped.query(rng.normal(size=LENGTH), k=3, method="naive")
        touched = [s for s in mapped.catalog.segments if not s.is_lazy]
        assert touched  # the query materialized at least one segment
        assert touched[0].memory_stats()["mapped_payload_bytes"] == 0


class TestDamage:
    def test_bad_footer_quarantines_at_open(self, archive):
        path, _, rng = archive
        offset, length = payload_coords(path, index=1)
        raw = bytearray(path.read_bytes())
        # Stamp a wrong CRC footer: visible without reading the blob.
        struct.pack_into("<I", raw, offset + length, 0xDEADBEEF)
        path.write_bytes(bytes(raw))

        mapped = load_database(path, mmap=True)
        assert len(mapped.catalog.quarantined) == 1
        assert mapped.catalog.quarantined[0].reason == "checksum mismatch"
        result = mapped.query(rng.normal(size=LENGTH), k=3, method="index")
        assert result.complete is False  # quarantine degrades the answer

    def test_payload_corruption_raises_on_first_touch(self, archive):
        path, _, rng = archive
        offset, length = payload_coords(path, index=0)
        raw = bytearray(path.read_bytes())
        # Flip bytes mid-payload; the footer still matches the manifest,
        # so the damage is invisible until the blob is actually read.
        middle = offset + length // 2
        raw[middle] ^= 0xFF
        path.write_bytes(bytes(raw))

        mapped = load_database(path, mmap=True)
        assert all(s.is_lazy for s in mapped.catalog.segments)
        with pytest.raises(DatasetError, match="first touch"):
            mapped.query(rng.normal(size=LENGTH), k=3, method="naive")

    def test_eager_loader_catches_the_same_corruption_at_open(self, archive):
        path, _, _ = archive
        offset, length = payload_coords(path, index=0)
        raw = bytearray(path.read_bytes())
        raw[offset + length // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        eager = load_database(path)
        assert any(q.reason == "checksum mismatch"
                   for q in eager.catalog.quarantined)


class TestFallbackAndTransport:
    def test_v3_archive_falls_back_to_eager(self, tmp_path):
        db, rng = build_db()
        path = tmp_path / "legacy.npz"
        save_database(db, path, format_version=3)
        loaded = load_database(path, mmap=True)  # nothing mappable: eager
        query = rng.normal(size=LENGTH)
        assert fingerprint_of(loaded.query(query, k=5, method="index")) == \
            fingerprint_of(db.query(query, k=5, method="index"))

    def test_mapped_database_pickles_and_answers(self, archive):
        path, _, rng = archive
        mapped = load_database(path, mmap=True)
        clone = pickle.loads(pickle.dumps(mapped))
        query = rng.normal(size=LENGTH)
        assert fingerprint_of(clone.query(query, k=5, method="index")) == \
            fingerprint_of(mapped.query(query, k=5, method="index"))

    def test_buffer_loads_eagerly_even_when_mapped(self, archive):
        path, db, rng = archive
        spiked = rng.normal(size=LENGTH)
        spiked[0] = 500.0  # far out of bound: stays buffered
        db.insert(spiked)
        assert len(db.buffer) > 0
        save_database(db, path, pack_bitsets=True)
        mapped = load_database(path, mmap=True)
        assert len(mapped.buffer) == len(db.buffer)
