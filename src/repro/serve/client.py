"""Synchronous client for the binary query protocol.

A thin blocking wrapper over one TCP connection: each call packs a
frame (:func:`~repro.serve.protocol.pack_message`), sends it, and
blocks for the matching response.  Query series travel as raw float64
blobs, so the server searches exactly the bytes the caller holds, and
responses come back as real :class:`~repro.core.result.QueryResult`
objects — code written against ``STS3Database.query`` ports to the
client by changing one receiver.

Server-side refusals (``BUSY``, ``RATE_LIMITED``, ``DRAINING``, ...)
re-raise locally as :class:`~repro.serve.protocol.ServeError` with the
wire code intact, so callers handle overload the same way embedded
callers do.

Thread safety: one :class:`ServeClient` is one connection with one
in-flight request; give each thread its own client (connections are
cheap, and separate connections is exactly what lets the server
coalesce their queries).
"""

from __future__ import annotations

import socket
from typing import Sequence

import numpy as np

from ..core.result import QueryResult
from .protocol import (
    DEFAULT_PORT,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    _LEN,
    pack_message,
    result_from_wire,
    unpack_payload,
)

__all__ = ["ServeClient"]


class ServeClient:
    """Blocking binary-protocol client (context manager).

    ``client_id`` names this caller for the server's per-client rate
    limiting; it defaults to the connection's local address, which
    keeps distinct processes distinct without configuration.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float | None = 30.0,
        client_id: str | None = None,
    ):
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        if client_id is None:
            local = self._sock.getsockname()
            client_id = f"{local[0]}:{local[1]}"
        self.client_id = client_id
        self._next_id = 0

    # -- plumbing --------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ProtocolError(
                    f"server closed the connection mid message "
                    f"({n - remaining}/{n} bytes)"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _call(self, header: dict, arrays: Sequence[np.ndarray] = ()) -> dict:
        self._next_id += 1
        header = {
            "v": PROTOCOL_VERSION,
            "id": self._next_id,
            "client": self.client_id,
            **header,
        }
        self._sock.sendall(pack_message(header, arrays))
        (length,) = _LEN.unpack(self._recv_exactly(_LEN.size))
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"response frame of {length} bytes exceeds the "
                f"{MAX_FRAME_BYTES}-byte limit"
            )
        reply, _ = unpack_payload(self._recv_exactly(length))
        if reply.get("status") != "ok":
            raise ServeError(
                reply.get("code", "INTERNAL"),
                reply.get("message", "request failed"),
            )
        return reply

    # -- operations ------------------------------------------------------

    def ping(self) -> dict:
        """Round-trip liveness check; returns server status fields."""
        return self._call({"op": "ping"})

    def query(
        self,
        series: np.ndarray,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
    ) -> QueryResult:
        """One k-NN query; mirrors ``STS3Database.query``."""
        reply = self._call(
            {
                "op": "query",
                "k": k,
                "method": method,
                "scale": scale,
                "max_scale": max_scale,
                "deadline_ms": deadline_ms,
            },
            [np.asarray(series, dtype=np.float64)],
        )
        return result_from_wire(reply["result"])

    def query_batch(
        self,
        queries: Sequence[np.ndarray],
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
    ) -> list[QueryResult]:
        """A pre-assembled batch; mirrors ``STS3Database.query_batch``."""
        reply = self._call(
            {
                "op": "batch",
                "k": k,
                "method": method,
                "scale": scale,
                "max_scale": max_scale,
                "deadline_ms": deadline_ms,
            },
            [np.asarray(q, dtype=np.float64) for q in queries],
        )
        return [result_from_wire(r) for r in reply["results"]]

    def insert(self, series: np.ndarray) -> dict:
        """Insert one series; returns ``n_series``/``buffered`` status.

        A sharded server (docs/sharding.md) additionally reports the
        assigned global ``id`` and owning ``shard``.
        """
        reply = self._call(
            {"op": "insert"}, [np.asarray(series, dtype=np.float64)]
        )
        report = {
            "n_series": reply["n_series"],
            "buffered": reply["buffered"],
            "path": reply["path"],
            "sealed_segment": reply["sealed_segment"],
        }
        for key in ("id", "shard"):
            if key in reply:
                report[key] = reply[key]
        return report

    def verify(self) -> list[str]:
        """Server-side ``verify_integrity``; empty list means healthy."""
        return list(self._call({"op": "verify"})["problems"])

    def metrics(self) -> str:
        """The server's Prometheus exposition text."""
        return self._call({"op": "metrics"})["text"]

    def close(self) -> None:
        self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
