"""Tests for k-medoids clustering and unlabeled tuning."""

import numpy as np
import pytest

from repro.core.clustering import cluster_series, k_medoids
from repro.core.tuning import tune_sigma_epsilon_unlabeled
from repro.data.ucr_like import smooth_outlines
from repro.exceptions import ParameterError


def _block_distances(sizes, gap=10.0, within=1.0, seed=0):
    """A distance matrix with clear block structure."""
    rng = np.random.default_rng(seed)
    n = sum(sizes)
    labels = np.repeat(np.arange(len(sizes)), sizes)
    distances = np.empty((n, n))
    for i in range(n):
        for j in range(n):
            base = within if labels[i] == labels[j] else gap
            distances[i, j] = 0.0 if i == j else base + rng.uniform(0, 0.1)
    distances = (distances + distances.T) / 2
    return distances, labels


class TestKMedoids:
    def test_recovers_blocks(self):
        distances, truth = _block_distances([6, 6, 6])
        labels, medoids = k_medoids(distances, 3, seed=1)
        # same-block points share a label; cross-block points don't
        for a in range(len(truth)):
            for b in range(len(truth)):
                if truth[a] == truth[b]:
                    assert labels[a] == labels[b]
        assert len(medoids) == 3

    def test_single_cluster(self):
        distances, _ = _block_distances([5])
        labels, medoids = k_medoids(distances, 1)
        assert (labels == 0).all()
        assert len(medoids) == 1

    def test_k_equals_n(self):
        distances, _ = _block_distances([4])
        labels, medoids = k_medoids(distances, 4)
        assert sorted(labels.tolist()) == [0, 1, 2, 3]

    def test_deterministic_for_seed(self):
        distances, _ = _block_distances([5, 5])
        a, _ = k_medoids(distances, 2, seed=3)
        b, _ = k_medoids(distances, 2, seed=3)
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ParameterError):
            k_medoids(np.zeros((3, 4)), 2)
        with pytest.raises(ParameterError):
            k_medoids(np.zeros((3, 3)), 0)
        with pytest.raises(ParameterError):
            k_medoids(np.zeros((3, 3)), 4)

    def test_identical_points(self):
        """All-zero distances must not crash the seeding."""
        labels, medoids = k_medoids(np.zeros((6, 6)), 2, seed=0)
        assert len(medoids) == 2


class TestClusterSeries:
    def test_separates_distinct_templates(self):
        ds = smooth_outlines(
            n_classes=3, n_train_per_class=6, n_test_per_class=2,
            length=64, seed=2, noise_std=0.05,
        )
        labels = cluster_series(list(ds.train.series), 3, seed=1)
        # clustering should be strongly informative about true classes:
        # most pairs sharing a true class share a cluster
        truth = ds.train.labels
        agree = disagree = 0
        for i in range(len(truth)):
            for j in range(i + 1, len(truth)):
                if truth[i] == truth[j]:
                    if labels[i] == labels[j]:
                        agree += 1
                    else:
                        disagree += 1
        assert agree > disagree

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            cluster_series([], 2)


class TestUnlabeledTuning:
    def test_produces_usable_parameters(self):
        ds = smooth_outlines(
            n_classes=3, n_train_per_class=6, n_test_per_class=4,
            length=64, seed=4, noise_std=0.05,
        )
        result = tune_sigma_epsilon_unlabeled(
            list(ds.train.series), n_clusters=3,
            sigma_grid=[1, 4, 8], epsilon_grid=[0.1, 0.4],
        )
        assert result.sigma in (1, 4, 8)
        assert result.epsilon in (0.1, 0.4)
        # the tuned parameters classify the *real* labels decently
        from repro.core.tuning import sts3_error_rate

        err = sts3_error_rate(ds.train, ds.test, result.sigma, result.epsilon)
        assert err < 0.5

    def test_too_few_series(self):
        with pytest.raises(ParameterError):
            tune_sigma_epsilon_unlabeled([np.zeros(8)] * 3, 2)
