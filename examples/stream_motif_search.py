"""Subsequence (motif) search in a long stream.

The paper cites SPRING for subsequence matching under DTW; STS3's grid
representation gives a natural set-based analogue: grid the stream once
with absolute time columns, then every column-aligned window alignment
is scored by one sparse join, and the best candidates are refined at
sample resolution.

This example plants two noisy copies of a motif in a long ECG-like
stream and recovers their positions.

Run with::

    python examples/stream_motif_search.py
"""

from __future__ import annotations

import numpy as np

from repro.core import SubsequenceSearcher
from repro.data import ecg_stream


def main() -> None:
    rng = np.random.default_rng(21)
    stream = ecg_stream(60_000, seed=21)

    # The motif: a distinctive double-spike not present in normal ECG.
    t = np.arange(192, dtype=float)
    motif = (
        3.0 * np.exp(-0.5 * ((t - 60) / 6) ** 2)
        - 2.0 * np.exp(-0.5 * ((t - 120) / 9) ** 2)
    )
    plant_positions = (14_500, 41_000)
    for position in plant_positions:
        stream[position : position + 192] += motif + rng.normal(0, 0.05, 192)

    searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
    query = stream[plant_positions[0] : plant_positions[0] + 192].copy()

    print(f"stream: {len(stream)} points; query: {len(query)} points")
    print(f"planted motif at: {plant_positions}\n")
    matches = searcher.search(query, k=4, refine=True)
    print(f"{'rank':>4}  {'offset':>8}  Jaccard")
    for rank, match in enumerate(matches, start=1):
        marker = " <-- planted" if any(
            abs(match.offset - p) < 192 for p in plant_positions
        ) else ""
        print(f"{rank:>4}  {match.offset:>8}  {match.similarity:.3f}{marker}")

    found = sum(
        any(abs(m.offset - p) < 192 for m in matches) for p in plant_positions
    )
    print(f"\nrecovered {found}/{len(plant_positions)} planted occurrences")


if __name__ == "__main__":
    main()
