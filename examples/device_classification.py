"""Electricity-device classification — the paper's suitable scenario.

Section 6.2: when "time series have a large global shift in the t-axis,
only a few points have different values, and the values of other points
are equal" — electricity-usage profiles of household devices [21] —
long, narrow grid cells let STS3 absorb the shift while the few active
points still separate the classes.  The paper's Table 4 shows STS3
beating both ED and DTW on Computers / RefrigerationDevices /
ScreenType.

This example reproduces that comparison on the synthetic device-profile
family, including the σ/ε grid search of Section 6.3.

Run with::

    python examples/device_classification.py
"""

from __future__ import annotations

from repro.baselines import error_rate, measures, sakoe_chiba_window
from repro.core.tuning import sts3_error_rate, tune_sigma_epsilon
from repro.data.ucr_like import device_profiles


def main() -> None:
    ds = device_profiles(
        n_classes=3,
        n_train_per_class=25,
        n_test_per_class=25,
        length=360,
        seed=3,
        shift_fraction=0.3,
        noise_std=0.05,
    )
    print(ds.describe(), "\n")

    # Baselines.
    window = sakoe_chiba_window(ds.length, 0.1)
    ed_err = error_rate(ds.train, ds.test, measures.ed())
    dtw_err = error_rate(ds.train, ds.test, measures.dtw(window=window))

    # STS3 with tuned cells.  Long cells (large sigma) tolerate the
    # global shift; a moderate epsilon keeps the burst levels apart.
    tuned = tune_sigma_epsilon(
        ds.train,
        sigma_grid=[4, 12, 36, 72, 108],
        epsilon_grid=[0.1, 0.3, 0.6, 1.0],
    )
    sts3_err = sts3_error_rate(ds.train, ds.test, tuned.sigma, tuned.epsilon)

    print(f"tuned parameters: sigma={tuned.sigma} (samples), epsilon={tuned.epsilon}")
    print(f"validation error during tuning: {tuned.error:.3f}\n")
    print(f"{'measure':>8}  error rate")
    print(f"{'ED':>8}  {ed_err:.3f}")
    print(f"{'DTW':>8}  {dtw_err:.3f}")
    print(f"{'STS3':>8}  {sts3_err:.3f}")

    if sts3_err <= min(ed_err, dtw_err):
        print("\nSTS3 wins on this workload — the paper's suitable scenario.")
    else:
        print("\nSTS3 did not win this draw; rerun with more training data.")


if __name__ == "__main__":
    main()
