"""Background maintenance engine: tiering, eviction, cadence, crashes.

Covers the policy layer (``tier_of``/``plan_merge``), the engine's
trigger semantics (background merges fire past ``max_segments``;
``run_until_idle`` quiesces to the tier fixpoint), the memory budget
(cold payloads released, lazily re-faulted bit-identically), the
checkpoint cadence (WAL records past the archive), and crash-during-
merge recovery at every injected fault point (DESIGN.md §15).
"""

from __future__ import annotations

import shutil
import tempfile
import time
from pathlib import Path

import numpy as np
import pytest

from repro import faults
from repro.core import (
    MaintenanceConfig,
    MaintenanceEngine,
    STS3Database,
    WriteAheadLog,
    default_wal_dir,
    load_database,
    plan_merge,
    recover_database,
    save_database,
    tier_of,
)
from repro.exceptions import ParameterError

LENGTH = 24


def _series(seed, spike=0.0):
    rng = np.random.default_rng(seed)
    out = rng.normal(size=LENGTH)
    if spike:
        out[seed % LENGTH] = spike
    return out


def _make_db(n=8, seed=0, **kwargs):
    kwargs.setdefault("buffer_capacity", 2)
    return STS3Database(
        [_series(seed + i) for i in range(n)],
        sigma=2, epsilon=0.5, normalize=False, **kwargs,
    )


def _seal_segments(db, count, per=2, seed=1000):
    """Seal ``count`` extra segments of ``per`` series each."""
    spike = 50.0
    for i in range(count):
        for j in range(per):
            spike += 10.0
            db.insert(_series(seed + i * per + j, spike=spike))
        db.flush()


def _answer(db, query, k=5):
    result = db.query(query, k=k, method="index")
    return [(n.index, round(n.similarity, 12)) for n in result.neighbors]


class TestTierPolicy:
    def test_tier_of_boundaries(self):
        assert tier_of(0, 64, 4) == 0
        assert tier_of(63, 64, 4) == 0
        assert tier_of(64, 64, 4) == 1
        assert tier_of(255, 64, 4) == 1
        assert tier_of(256, 64, 4) == 2
        assert tier_of(1024, 64, 4) == 3

    def test_plan_merge_picks_leftmost_window(self):
        class Stub:
            def __init__(self, n):
                self._n = n

            def __len__(self):
                return self._n

        config = MaintenanceConfig(tier_base=4, fanout=2)
        segments = [Stub(16), Stub(2), Stub(3), Stub(2), Stub(1)]
        assert plan_merge(segments, config) == (1, 3)

    def test_plan_merge_none_at_fixpoint(self):
        class Stub:
            def __init__(self, n):
                self._n = n

            def __len__(self):
                return self._n

        config = MaintenanceConfig(tier_base=4, fanout=2)
        assert plan_merge([Stub(16), Stub(4), Stub(2)], config) is None
        assert plan_merge([Stub(16)], config) is None
        assert plan_merge([], config) is None

    def test_config_validation(self):
        with pytest.raises(ParameterError):
            MaintenanceConfig(fanout=1)
        with pytest.raises(ParameterError):
            MaintenanceConfig(tier_base=0)
        with pytest.raises(ParameterError):
            MaintenanceConfig(max_segments=0)
        with pytest.raises(ParameterError):
            MaintenanceConfig(checkpoint_every=0)
        with pytest.raises(ParameterError):
            MaintenanceConfig(memory_budget_bytes=-1)


class TestEngineMerges:
    def test_run_until_idle_reaches_fixpoint(self):
        db = _make_db()
        _seal_segments(db, 4)
        config = MaintenanceConfig(max_segments=2, tier_base=10_000, fanout=2)
        engine = MaintenanceEngine(db, config)
        engine.run_until_idle()
        assert plan_merge(db.catalog.segments, config) is None
        assert engine.merges >= 1
        assert db.verify_integrity() == []

    def test_background_matches_serial_baseline(self):
        """Interleaved background merges converge to the serial layout."""
        config = MaintenanceConfig(
            max_segments=2, tier_base=4, fanout=2, interval_s=0.002
        )
        background = _make_db()
        serial = _make_db()
        engine = MaintenanceEngine(background, config)
        engine.start()
        try:
            spike = 50.0
            for i in range(16):
                spike += 10.0
                background.insert(_series(2000 + i, spike=spike))
                serial.insert(_series(2000 + i, spike=spike))
                while plan_merge(serial.catalog.segments, config) is not None:
                    serial.catalog.merge_run(*plan_merge(
                        serial.catalog.segments, config))
                time.sleep(0.003)
        finally:
            engine.stop()
        background.flush()
        serial.flush()
        engine.run_until_idle()
        while plan_merge(serial.catalog.segments, config) is not None:
            serial.catalog.merge_run(*plan_merge(serial.catalog.segments, config))
        assert [len(s) for s in background.catalog.segments] == \
            [len(s) for s in serial.catalog.segments]
        query = _series(31337)
        assert _answer(background, query) == _answer(serial, query)

    def test_triggered_mode_respects_max_segments(self):
        db = _make_db()
        _seal_segments(db, 3)  # 4 live segments
        config = MaintenanceConfig(max_segments=8, tier_base=10_000, fanout=2)
        engine = MaintenanceEngine(db, config)
        before = len(db.catalog.segments)
        engine.run_pending(triggered_only=True)
        assert len(db.catalog.segments) == before  # under threshold: no-op
        engine.run_until_idle()
        assert len(db.catalog.segments) < before  # explicit quiesce merges

    def test_background_thread_enforces_ceiling(self):
        db = _make_db()
        config = MaintenanceConfig(
            max_segments=3, tier_base=4, fanout=2, interval_s=0.002
        )
        engine = db.enable_maintenance(config, start=True)
        try:
            spike = 50.0
            for i in range(24):
                spike += 10.0
                db.insert(_series(4000 + i, spike=spike))
                time.sleep(0.002)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                if len(db.catalog.segments) <= config.max_segments:
                    break
                time.sleep(0.01)
            assert len(db.catalog.segments) <= config.max_segments
        finally:
            db.stop_maintenance()
        assert not engine.running

    def test_pause_blocks_merges_resume_restores(self):
        db = _make_db()
        _seal_segments(db, 4)
        config = MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
        engine = MaintenanceEngine(db, config)
        engine.pause()
        before = len(db.catalog.segments)
        engine.run_pending()
        assert len(db.catalog.segments) == before
        engine.resume()
        engine.run_until_idle()
        assert len(db.catalog.segments) < before

    def test_reader_pin_survives_background_merge(self):
        db = _make_db()
        _seal_segments(db, 4)
        snap = db.catalog.pin()
        layout = [len(s) for s in snap.segments]
        engine = MaintenanceEngine(
            db, MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
        )
        engine.run_until_idle()
        assert [len(s) for s in snap.segments] == layout
        assert db.catalog.pinned_snapshots() == 1
        db.catalog.release(snap)
        assert db.catalog.pinned_snapshots() == 0


class TestMemoryBudget:
    @pytest.fixture()
    def archive(self, tmp_path):
        db = _make_db(n=6)
        _seal_segments(db, 2, per=3)
        path = tmp_path / "db.sts3"
        save_database(db, path, pack_bitsets=True)
        return path

    def test_eviction_frees_and_refault_is_bit_identical(self, archive):
        db = load_database(archive, mmap=True)
        query = _series(777)
        before = _answer(db, query)  # materializes every segment
        resident = sum(s.resident_bytes() for s in db.catalog.segments)
        assert resident > 0
        # fanout > live segments: the engine can only evict, not merge,
        # so the layout (and with it every similarity) must be preserved
        config = MaintenanceConfig(memory_budget_bytes=1, fanout=64)
        engine = MaintenanceEngine(db, config)
        freed = engine.run_pending()["evicted_bytes"]
        assert freed > 0
        assert all(
            seg.resident_state == "mapped" for seg in db.catalog.segments
        )
        assert _answer(db, query) == before  # lazy re-fault, same bits
        db.close()

    def test_hot_segment_evicted_last(self, archive):
        db = load_database(archive, mmap=True)
        query = _series(778)
        _answer(db, query)  # materialize + stamp last_used on all
        hot = db.catalog.segments[-1]
        hot.mark_used()
        budget = hot.resident_bytes() + 1  # room for exactly the hot one
        engine = MaintenanceEngine(
            db, MaintenanceConfig(memory_budget_bytes=budget, fanout=64)
        )
        engine.run_pending()
        assert hot.resident_state == "resident"
        assert any(
            seg.resident_state == "mapped"
            for seg in db.catalog.segments if seg is not hot
        )
        db.close()

    def test_no_budget_means_no_eviction(self, archive):
        db = load_database(archive, mmap=True)
        _answer(db, _series(779))
        engine = MaintenanceEngine(db, MaintenanceConfig(fanout=64))
        assert engine.run_pending()["evicted_bytes"] == 0
        db.close()


class TestCheckpointCadence:
    def test_checkpoint_fires_and_resets_lag(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = _make_db()
        save_database(db, path)
        wal = WriteAheadLog(default_wal_dir(path), fsync_batch=1)
        db.attach_wal(wal)
        config = MaintenanceConfig(
            checkpoint_every=5, checkpoint_path=str(path)
        )
        engine = MaintenanceEngine(db, config)
        for i in range(4):
            db.insert(_series(5000 + i))
        assert not engine.run_pending()["checkpointed"]
        db.insert(_series(5004))
        assert wal.records_since_checkpoint == 5
        assert engine.run_pending()["checkpointed"]
        assert wal.records_since_checkpoint == 0
        assert engine.checkpoints == 1
        # the archive now covers everything: recovery has no replay debt
        recovered = recover_database(path, fsync_batch=1)
        assert len(recovered) == len(db)
        recovered.close()
        db.close()

    def test_watermark_restored_across_reopen(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = _make_db()
        save_database(db, path)
        wal = WriteAheadLog(default_wal_dir(path), fsync_batch=1)
        db.attach_wal(wal)
        for i in range(3):
            db.insert(_series(6000 + i))
        wal.close()
        reopened = recover_database(path, fsync_batch=1)
        # 3 records remain past the archive; a fresh process must see them
        assert reopened.wal.records_since_checkpoint == 3
        save_database(reopened, path)  # checkpoint retires them
        assert reopened.wal.records_since_checkpoint == 0
        reopened.close()
        db.close()

    def test_no_wal_no_checkpoint(self):
        db = _make_db()
        engine = MaintenanceEngine(
            db, MaintenanceConfig(checkpoint_every=1, checkpoint_path="/dev/null")
        )
        assert not engine.run_pending()["checkpointed"]


class TestCrashDuringMerge:
    """Crash at any injected point recovers bit-identical, unquarantined."""

    POINTS = [
        ("maintenance.merge.journal", False),
        ("maintenance.merge.publish", True),
        ("maintenance.merge.done", True),
    ]

    @pytest.fixture()
    def durable(self, tmp_path):
        path = tmp_path / "db.sts3"
        db = _make_db()
        save_database(db, path)
        wal = WriteAheadLog(default_wal_dir(path), fsync_batch=1)
        db.attach_wal(wal)
        _seal_segments(db, 2, per=3)
        config = MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
        assert plan_merge(db.catalog.segments, config) is not None
        return db, path, config

    @pytest.mark.parametrize("point,merge_survives", POINTS)
    def test_crash_recovers_history(self, durable, tmp_path, point,
                                    merge_survives):
        db, path, config = durable
        window = plan_merge(db.catalog.segments, config)
        # the reference: an identical copy where the merge either fully
        # applied (journaled before the crash) or never happened
        ref_dir = tmp_path / "ref"
        ref_dir.mkdir()
        shutil.copy(path, ref_dir / "db.sts3")
        shutil.copytree(default_wal_dir(path), default_wal_dir(ref_dir / "db.sts3"))
        reference = recover_database(ref_dir / "db.sts3", fsync_batch=1)
        if merge_survives:
            reference.merge_run(*plan_merge(reference.catalog.segments, config))

        plan = faults.FaultPlan([faults.Fault(point, "crash")])
        with pytest.raises(faults.SimulatedCrash):
            with faults.inject(plan):
                db.merge_run(*window)
        db.wal._file.close()  # the "process" died; drop the fd only

        recovered = recover_database(path, fsync_batch=1)
        assert len(recovered) == len(reference)
        assert not recovered.catalog.quarantined
        assert [len(s) for s in recovered.catalog.segments] == \
            [len(s) for s in reference.catalog.segments]
        query = _series(90210)
        assert _answer(recovered, query) == _answer(reference, query)
        assert recovered.verify_integrity() == []
        recovered.close()
        reference.close()

    def test_engine_records_crash_and_stops(self, durable):
        db, path, config = durable
        engine = MaintenanceEngine(db, config)
        plan = faults.FaultPlan([faults.Fault("maintenance.merge.build", "crash")])
        with pytest.raises(faults.SimulatedCrash):
            with faults.inject(plan):
                engine.run_until_idle()
        db.close()


class TestStatusSurface:
    def test_status_without_engine(self):
        db = _make_db()
        status = db.maintenance_status()
        assert status["engine"] is None
        assert status["max_segments"] is None
        assert status["live_segments"] == len(db.catalog.segments)
        assert status["wal_lag"] == 0
        assert status["resident_bytes"] > 0

    def test_status_with_engine(self):
        db = _make_db()
        _seal_segments(db, 2)
        db.enable_maintenance(
            MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
        )
        db.maintenance.run_until_idle()
        status = db.maintenance_status()
        assert status["engine"] == "idle"
        assert status["max_segments"] == 1
        assert status["merges"] >= 1
        assert status["last_error"] is None
        db.stop_maintenance()
        assert db.maintenance is None
