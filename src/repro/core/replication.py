"""WAL-shipping replication for the sharded engine (docs/replication.md).

PR 9's sharded engine scales queries out but keeps exactly one copy of
every shard: a worker death costs that shard's partition until it
restarts and recovers *on the same archive*.  This module adds the
availability half — a :class:`ReplicaSet` pairs each primary shard
with N follower processes kept current by **WAL shipping**:

- The supervisor (the parent process) holds one :class:`~repro.core.
  wal.WalTail` per follower over the primary's on-disk WAL directory.
  After every acknowledged write it polls the tail and ships the new
  CRC32-framed records — the exact bytes the primary fsynced — over
  the same pipe RPC the shards speak (``ship`` frames: a uint8 blob
  plus ``first_seq``/``last_seq``/``count``).
- A follower appends the shipped frames to its own **mirror** WAL
  directory (fsynced *before* applying — the mirror is the follower's
  durability), applies the records through
  :func:`~repro.core.persistence.apply_wal_records` (the same code
  path crash recovery uses, so follower state is bit-identical to a
  recovered primary), advances its ``applied_seq`` watermark, and
  persists the watermark in a sidecar
  (:func:`~repro.core.wal.write_applied_seq`).
- Reads may be served from caught-up followers under a bounded-
  staleness guard (``read_preference`` on
  :class:`~repro.core.shard.ShardedDatabase`); the scatter-gather
  merge is unchanged because a caught-up follower answers exactly like
  its primary.
- On primary death the supervisor **promotes** the freshest follower:
  the remaining intact frames on the dead primary's disk are shipped
  (an acknowledged write is fsynced, hence intact, hence shipped — no
  acked write is ever lost), the shard's fencing epoch is bumped in
  the manifest, and a ``promote`` frame flips the follower into a
  journaling primary (its mirror becomes the shard's live WAL).

Fencing: every worker and follower echoes its ``epoch`` in every
reply; the supervisor rejects replies carrying a stale epoch, so a
zombie primary — one that was presumed dead, got replaced, but is
still draining its pipe — can never have a late ack believed.

Fault points (deterministic drills, :mod:`repro.faults`):
``replication.ship`` fires supervisor-side before each ship (a crash
kind simulates a network partition to that follower; slow delays on
the virtual clock), ``replication.apply`` fires in the follower before
applying (crash = follower death mid-apply), and
``replication.promote`` fires before a promotion is attempted (crash =
promotion aborted, the supervisor falls back to local restart).
"""

from __future__ import annotations

import logging
import signal
import time
from pathlib import Path

import numpy as np

from .. import faults
from ..exceptions import ReproError
from ..obs import get_registry, span
from ..serve.protocol import OP_PROMOTE, OP_SHIP, OP_SUBSCRIBE
from .rpc import RpcError, WorkerDied, recv_frame, send_frame
from .wal import TailBatch, WalGapError, WalTail, _generation_files, MAGIC

__all__ = [
    "ReplicaHandle",
    "ReplicaSet",
    "ReplicationError",
    "replica_mirror_name",
]

logger = logging.getLogger(__name__)


class ReplicationError(ReproError):
    """A replication operation failed (shipping, apply, or promotion)."""


def replica_mirror_name(shard_id: int, replica_id: int) -> str:
    """Mirror WAL directory name for one follower of one shard."""
    return f"shard-{shard_id:02d}.replica-{replica_id}.wal"


# -- the follower process ------------------------------------------------


class _MirrorWriter:
    """Append-only writer for a follower's mirror WAL directory.

    Shipped frames are already framed and checksummed; the mirror just
    needs them on disk (magic-prefixed, generation-numbered) before the
    apply is acknowledged.  Appends go to the newest generation file —
    creating ``00000001.wal`` when the mirror is empty — so the mirror
    replays and lints exactly like a primary WAL directory.
    """

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        existing = _generation_files(self.directory)
        path = existing[-1] if existing else self.directory / f"{1:08d}.wal"
        fresh = not path.exists() or path.stat().st_size == 0
        self._file = open(path, "ab")
        if fresh:
            self._file.write(MAGIC)
            self._file.flush()
            import os

            os.fsync(self._file.fileno())

    def append(self, blob: bytes) -> None:
        import os

        self._file.write(blob)
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


def _replica_worker_main(conn, options: dict) -> None:
    """One follower's serving loop: bootstrap, apply ships, maybe promote.

    Bootstrap loads the shard archive (``mmap=True``, page-cache shared
    with the primary mapping the same file) and replays the *mirror*
    WAL — so a restarted follower resumes from its own watermark
    instead of re-shipping history.  A mirror that is wholly covered by
    the archive (the follower lagged across a checkpoint and was
    re-bootstrapped) is wiped: its frames are redundant, and keeping
    them would leave a sequence gap in front of future ships.

    The loop answers read ops (``query``/``status``/``ping``/
    ``verify``) through the same dispatcher the primary worker uses;
    write ops bounce off the database's follower mode until a
    ``promote`` frame arrives, after which the loop *is* a primary
    worker loop in every respect.
    """
    shard_id = options["shard_id"]
    replica_id = options["replica_id"]
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    epoch = int(options.get("epoch", 0))
    try:
        from .persistence import apply_wal_records, load_database
        from .shard import _ShardIdTable, _replay_id_table, _worker_status
        from .wal import replay_wal, write_applied_seq

        db = load_database(options["archive"], mmap=True)
        table = _ShardIdTable.from_extras(
            getattr(db, "archive_extras", {}).get("shard", {})
        )
        db.set_follower(True)
        mirror = Path(options["mirror"])
        mirror.mkdir(parents=True, exist_ok=True)
        records, report = replay_wal(mirror, truncate=True)
        if report.records and report.last_seq <= db.wal_seq:
            # every mirrored frame is covered by the archive; a fresh
            # mirror keeps future ships contiguous from the watermark
            for path in _generation_files(mirror):
                path.unlink()
            records = []
        replayed: list[tuple[dict, dict | None]] = []
        apply_wal_records(
            db,
            records,
            from_seq=db.wal_seq,
            observer=lambda record, info: replayed.append((record, info)),
        )
        _replay_id_table(shard_id, table, replayed)
        if len(table) != len(db):
            raise ReplicationError(
                f"shard {shard_id} replica {replica_id}: id table covers "
                f"{len(table)} series, database holds {len(db)}"
            )
        applied = max(db.wal_seq, report.last_seq)
        write_applied_seq(mirror, applied)
        writer = _MirrorWriter(mirror)
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            send_frame(conn, {"op": "ready", "status": "error", "error": f"{exc}"})
        except Exception:
            pass
        conn.close()
        return

    send_frame(
        conn,
        {
            "op": "ready",
            "status": "ok",
            "applied_seq": applied,
            "epoch": epoch,
            **_worker_status(db, table),
        },
    )

    from .shard import _worker_handle

    try:
        while True:
            try:
                header, arrays = recv_frame(conn, None)
            except WorkerDied:
                break  # supervisor closed its end
            op = header.get("op")
            try:
                if op == "shutdown":
                    send_frame(conn, {"op": "ack", "epoch": epoch})
                    break
                if op == OP_SUBSCRIBE:
                    reply: dict = {
                        "op": "ack",
                        "applied_seq": applied,
                        **_worker_status(db, table),
                    }
                elif op == OP_SHIP:
                    try:
                        faults.fault_point("replication.apply")
                    except faults.SimulatedCrash:
                        import os

                        os._exit(17)  # follower died mid-apply
                    reply = _apply_ship(
                        db, table, writer, mirror, header, arrays, applied
                    )
                    if reply.get("op") == "ack":
                        applied = int(reply["applied_seq"])
                elif op == OP_PROMOTE:
                    try:
                        faults.fault_point("replication.promote")
                    except faults.SimulatedCrash:
                        import os

                        os._exit(17)  # died in the promotion window
                    from .wal import WriteAheadLog

                    writer.close()
                    epoch = int(header["epoch"])
                    db.set_follower(False)
                    db.attach_wal(
                        WriteAheadLog(
                            mirror,
                            fsync_batch=int(options.get("fsync_batch") or 1),
                            start_seq=applied,
                        )
                    )
                    reply = {
                        "op": "ack",
                        "applied_seq": applied,
                        "promoted": True,
                        **_worker_status(db, table),
                    }
                else:
                    reply, reply_arrays = _worker_handle(
                        db, table, options, header, arrays
                    )
                    reply["epoch"] = epoch
                    send_frame(conn, reply, reply_arrays)
                    continue
                reply["epoch"] = epoch
                send_frame(conn, reply)
            except Exception as exc:  # noqa: BLE001 - answer, keep serving
                send_frame(conn, {"op": "error", "error": f"{exc}", "epoch": epoch})
    finally:
        db.close()
        conn.close()


def _apply_ship(db, table, writer, mirror, header, arrays, applied) -> dict:
    """Mirror + apply one shipped frame run; returns the reply header."""
    from .persistence import apply_wal_records
    from .shard import _replay_id_table, _worker_status
    from .wal import parse_frames, write_applied_seq

    first = int(header["first_seq"])
    if first != applied + 1:
        return {
            "op": "error",
            "error": (
                f"ship gap: follower applied through {applied}, "
                f"shipment starts at {first}"
            ),
            "applied_seq": applied,
        }
    blob = arrays[0].tobytes() if arrays else b""
    records = parse_frames(blob, expect_seq=first)
    if not records:
        return {"op": "ack", "applied_seq": applied, **_worker_status(db, table)}
    # durability first: the mirror append is fsynced before the apply,
    # so an acked shipment survives this follower's own death
    writer.append(blob)
    replayed: list[tuple[dict, dict | None]] = []
    with span("replication.apply", records=len(records)):
        apply_wal_records(
            db,
            records,
            from_seq=applied,
            observer=lambda record, info: replayed.append((record, info)),
        )
    _replay_id_table(None, table, replayed)
    applied = records[-1]["seq"]
    write_applied_seq(mirror, applied)
    return {"op": "ack", "applied_seq": applied, **_worker_status(db, table)}


# -- the supervisor side -------------------------------------------------


class ReplicaHandle:
    """Supervisor-side view of one live follower."""

    __slots__ = (
        "shard_id",
        "replica_id",
        "process",
        "conn",
        "applied_seq",
        "n_series",
        "tail",
        "mirror",
        "partitioned",
        "caught_up_at",
    )

    def __init__(self, shard_id, replica_id, process, conn, applied_seq, n_series, tail, mirror):
        self.shard_id = shard_id
        self.replica_id = replica_id
        self.process = process
        self.conn = conn
        self.applied_seq = int(applied_seq)
        self.n_series = int(n_series)
        self.tail = tail
        self.mirror = mirror
        #: test/drill hook — a partitioned follower receives no ships
        #: (and its lag grows) until the partition heals.
        self.partitioned = False
        self.caught_up_at = time.monotonic()


class ReplicaSet:
    """All followers of one :class:`~repro.core.shard.ShardedDatabase`.

    Owned by the engine and called under its lock; never touches the
    primary worker handles.  ``handles[shard_id][replica_id]`` is a
    :class:`ReplicaHandle` or None (dead / failed to spawn / promoted
    away).
    """

    def __init__(self, engine, n_replicas: int):
        self.engine = engine
        self.n_replicas = int(n_replicas)
        self.handles: list[list[ReplicaHandle | None]] = [
            [None] * self.n_replicas for _ in range(engine.n_shards)
        ]
        registry = get_registry()
        self._g_lag_records = registry.gauge(
            "sts3_replication_lag_records",
            "records the follower is behind its primary",
        )
        self._g_lag_seconds = registry.gauge(
            "sts3_replication_lag_seconds",
            "seconds since the follower was last caught up",
        )
        self._c_shipped = registry.counter(
            "sts3_replication_shipped_records_total",
            "WAL records shipped to followers",
        )
        self._c_ship_failures = registry.counter(
            "sts3_replication_ship_failures_total",
            "failed ship attempts, by shard, replica, and kind",
        )
        self._g_live = registry.gauge(
            "sts3_replica_workers_live", "follower processes currently serving"
        )

    # -- lifecycle -------------------------------------------------------

    def start_all(self) -> None:
        for shard_id in range(self.engine.n_shards):
            for replica_id in range(self.n_replicas):
                self.spawn(shard_id, replica_id)

    def mirror_dir(self, shard_id: int, replica_id: int) -> Path:
        return self.engine.directory / replica_mirror_name(shard_id, replica_id)

    def spawn(self, shard_id: int, replica_id: int) -> ReplicaHandle | None:
        """Start (or re-bootstrap) one follower; None when it fails."""
        engine = self.engine
        archive = engine.directory / engine.manifest["files"][shard_id]
        mirror = self.mirror_dir(shard_id, replica_id)
        options = {
            "shard_id": shard_id,
            "replica_id": replica_id,
            "archive": str(archive),
            "mirror": str(mirror),
            "epoch": int(engine.manifest["epochs"][shard_id]),
            "fsync_batch": engine.fsync_batch,
        }
        parent_conn, child_conn = engine._ctx.Pipe(duplex=True)
        process = engine._ctx.Process(
            target=_replica_worker_main,
            args=(child_conn, options),
            name=f"sts3-shard-{shard_id}-replica-{replica_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            ready, _ = recv_frame(parent_conn, max(engine.rpc_timeout, 30.0))
        except RpcError as exc:
            parent_conn.close()
            process.join(timeout=5.0)
            logger.warning(
                "shard %d replica %d failed to start: %s", shard_id, replica_id, exc
            )
            return None
        if ready.get("status") != "ok":
            parent_conn.close()
            process.join(timeout=5.0)
            logger.warning(
                "shard %d replica %d failed to start: %s",
                shard_id,
                replica_id,
                ready.get("error"),
            )
            return None
        applied = int(ready["applied_seq"])
        handle = ReplicaHandle(
            shard_id,
            replica_id,
            process,
            parent_conn,
            applied,
            int(ready["n_series"]),
            WalTail(self.engine.shard_wal_dir(shard_id), from_seq=applied),
            mirror,
        )
        self.handles[shard_id][replica_id] = handle
        self._set_live_gauge()
        return handle

    def reap(self, shard_id: int, replica_id: int) -> None:
        handle = self.handles[shard_id][replica_id]
        if handle is None:
            return
        self.handles[shard_id][replica_id] = None
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        self._discard_handle_labels(shard_id, replica_id)
        self._set_live_gauge()

    def detach(self, shard_id: int, replica_id: int) -> None:
        """Forget a follower without killing it (it was promoted)."""
        self.handles[shard_id][replica_id] = None
        self._discard_handle_labels(shard_id, replica_id)
        self._set_live_gauge()

    def close(self) -> None:
        for shard_id in range(self.engine.n_shards):
            for replica_id in range(self.n_replicas):
                handle = self.handles[shard_id][replica_id]
                if handle is None:
                    continue
                try:
                    send_frame(handle.conn, {"op": "shutdown"})
                    recv_frame(handle.conn, 5.0)
                except RpcError:
                    pass
                self.reap(shard_id, replica_id)

    def _discard_handle_labels(self, shard_id: int, replica_id: int) -> None:
        # membership changed: retire this follower's *gauge* series so
        # dashboards stop showing a ghost watermark (the PR 8
        # discard_labels hygiene, extended to replica labels).  Counters
        # (shipped/failures) keep their labels — they are history, and
        # wiping them would erase the very failures that explain a reap.
        get_registry().discard_labels(
            name_prefix="sts3_replication_lag_",
            shard=str(shard_id),
            replica=str(replica_id),
        )

    def _set_live_gauge(self) -> None:
        self._g_live.set(
            sum(1 for row in self.handles for h in row if h is not None)
        )

    # -- shipping --------------------------------------------------------

    def live(self, shard_id: int) -> list[ReplicaHandle]:
        return [h for h in self.handles[shard_id] if h is not None]

    def ship(self, shard_id: int) -> None:
        """Ship new primary WAL frames to every reachable follower."""
        for handle in self.live(shard_id):
            if handle.partitioned:
                self._observe_lag(handle)
                continue
            try:
                faults.fault_point("replication.ship")
            except faults.SimulatedCrash:
                # an injected partition: this follower misses the round
                self._c_ship_failures.inc(
                    shard=str(shard_id), replica=str(handle.replica_id),
                    kind="partition",
                )
                self._observe_lag(handle)
                continue
            self.ship_one(handle)

    def ship_all(self) -> None:
        for shard_id in range(self.engine.n_shards):
            self.ship(shard_id)

    def _rebootstrap(self, handle: ReplicaHandle, kind: str) -> bool:
        """Replace a follower that cannot be caught up by shipping."""
        self._c_ship_failures.inc(
            shard=str(handle.shard_id), replica=str(handle.replica_id),
            kind=kind,
        )
        replica_id = handle.replica_id
        self.reap(handle.shard_id, replica_id)
        return self.spawn(handle.shard_id, replica_id) is not None

    def ship_one(self, handle: ReplicaHandle) -> bool:
        """Poll this follower's tail and ship the batch; False on failure."""
        try:
            batch = handle.tail.poll()
        except WalGapError:
            # the primary checkpointed past this follower's watermark;
            # catch-up by shipping is impossible — re-bootstrap from
            # the (necessarily newer) archive
            return self._rebootstrap(handle, "gap")
        if batch.count == 0:
            if handle.applied_seq < int(
                self.engine._primary_ckpt[handle.shard_id]
            ):
                # nothing to tail *and* the follower sits behind the
                # primary's checkpoint: the frames it needs were retired
                # and the empty log will never surface them — the gap an
                # idle WalTail cannot see
                return self._rebootstrap(handle, "gap")
            self._observe_lag(handle)
            return True
        with span(
            "replication.ship",
            shard=handle.shard_id,
            replica=handle.replica_id,
            records=batch.count,
        ):
            try:
                send_frame(
                    handle.conn,
                    {
                        "op": OP_SHIP,
                        "first_seq": batch.first_seq,
                        "last_seq": batch.last_seq,
                        "count": batch.count,
                    },
                    [np.frombuffer(batch.blob, dtype=np.uint8)],
                )
                reply, _ = recv_frame(handle.conn, self.engine.rpc_timeout)
            except RpcError:
                self._rebootstrap(handle, "rpc")
                return False
        if reply.get("op") != "ack":
            # e.g. a gap the tail missed; re-bootstrap cleanly
            self._rebootstrap(handle, "apply")
            return False
        handle.applied_seq = int(reply["applied_seq"])
        handle.n_series = int(reply["n_series"])
        self._c_shipped.inc(
            batch.count,
            shard=str(handle.shard_id),
            replica=str(handle.replica_id),
        )
        self._observe_lag(handle)
        return True

    # -- staleness -------------------------------------------------------

    def lag_records(self, handle: ReplicaHandle) -> int:
        primary = int(self.engine._primary_seq[handle.shard_id])
        return max(0, primary - handle.applied_seq)

    def _observe_lag(self, handle: ReplicaHandle) -> None:
        lag = self.lag_records(handle)
        now = time.monotonic()
        if lag == 0:
            handle.caught_up_at = now
        labels = {
            "shard": str(handle.shard_id),
            "replica": str(handle.replica_id),
        }
        self._g_lag_records.set(lag, **labels)
        self._g_lag_seconds.set(
            0.0 if lag == 0 else now - handle.caught_up_at, **labels
        )

    def endpoints(self, shard_id: int, max_lag_records: int) -> list[ReplicaHandle]:
        """Followers fresh enough to serve reads (bounded staleness)."""
        return [
            h
            for h in self.live(shard_id)
            if not h.partitioned and self.lag_records(h) <= max_lag_records
        ]

    def freshest(self, shard_id: int) -> ReplicaHandle | None:
        """The promotion candidate: highest watermark wins, id breaks ties."""
        best: ReplicaHandle | None = None
        for handle in self.live(shard_id):
            if best is None or handle.applied_seq > best.applied_seq:
                best = handle
        return best

    def set_partitioned(self, shard_id: int, replica_id: int, flag: bool) -> None:
        """Drill hook: cut (or heal) the link to one follower."""
        handle = self.handles[shard_id][replica_id]
        if handle is not None:
            handle.partitioned = bool(flag)

    # -- promotion -------------------------------------------------------

    def promote(self, shard_id: int, handle: ReplicaHandle, epoch: int) -> dict | None:
        """Catch this follower up from disk, then flip it into a primary.

        Called with the fencing epoch already bumped and persisted.
        The final catch-up reads the dead primary's WAL directly — an
        acknowledged write was fsynced before its ack, so its frame is
        intact on disk and this ship delivers it (the zero-acked-loss
        argument).  Returns the promote ack (new primary status) or
        None when promotion failed; the follower is reaped on failure.
        """
        try:
            if not self.ship_one(handle):
                return None
            if self.handles[shard_id][handle.replica_id] is not handle:
                return None  # ship_one re-bootstrapped it; not current
            send_frame(handle.conn, {"op": OP_PROMOTE, "epoch": int(epoch)})
            reply, _ = recv_frame(handle.conn, self.engine.rpc_timeout)
        except (RpcError, WalGapError):
            self.reap(shard_id, handle.replica_id)
            return None
        if reply.get("op") != "ack" or not reply.get("promoted"):
            self.reap(shard_id, handle.replica_id)
            return None
        return reply

    # -- introspection ---------------------------------------------------

    def status(self, shard_id: int) -> list[dict]:
        entries = []
        for replica_id in range(self.n_replicas):
            handle = self.handles[shard_id][replica_id]
            entry = {
                "replica": replica_id,
                "alive": handle is not None,
                "mirror": replica_mirror_name(shard_id, replica_id),
            }
            if handle is not None:
                lag = self.lag_records(handle)
                entry.update(
                    applied_seq=handle.applied_seq,
                    primary_seq=int(self.engine._primary_seq[shard_id]),
                    lag_records=lag,
                    lag_seconds=(
                        0.0
                        if lag == 0
                        else time.monotonic() - handle.caught_up_at
                    ),
                    partitioned=handle.partitioned,
                    n_series=handle.n_series,
                )
            entries.append(entry)
        return entries
