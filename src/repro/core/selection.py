"""O(n) top-k selection with the repo-wide deterministic tie-break.

Every STS3 variant must return the same neighbours on tied inputs:
similarity descending, database index ascending (DESIGN.md §8).  The
historical implementation was a full ``np.lexsort`` over all *n*
candidates — ``O(n log n)`` per query even though only ``k ≪ n`` rows
are returned.  :func:`top_k_indices` gets the same answer in ``O(n)``:

1. ``np.partition`` finds the k-th largest similarity (the selection
   threshold) without ordering anything else;
2. everything strictly above the threshold is in the top-k by
   definition; the remaining seats are filled by the *smallest-index*
   candidates tied at the threshold (the deterministic tie-break);
3. only the k chosen rows are fully sorted.

The helper is shared by the scalar searchers (`core/indexed.py`), the
batch kernel (`core/batch.py`), and the pruning searcher's candidate
admission (`core/pruning.py`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["top_k_indices"]


def top_k_indices(
    sims: np.ndarray, k: int, tie_break: np.ndarray | None = None
) -> np.ndarray:
    """Positions of the ``k`` best similarities, best first.

    Returns positions into ``sims`` ordered by (similarity descending,
    tie-break ascending).  ``tie_break`` defaults to the position
    itself; pass explicit database indices when ``sims`` is a permuted
    or partial view (as the pruning searcher does).
    """
    sims = np.asarray(sims)
    n = sims.shape[0]
    k = min(k, n)
    tie = np.arange(n, dtype=np.int64) if tie_break is None else tie_break
    if k <= 0:
        return np.empty(0, dtype=np.int64)
    if k == n:
        return np.lexsort((tie, -sims))
    # k-th largest similarity = the selection threshold.
    threshold = -np.partition(-sims, k - 1)[k - 1]
    greater = np.flatnonzero(sims > threshold)
    ties = np.flatnonzero(sims == threshold)
    need = k - greater.size
    if ties.size > need:
        # Seats are contested: keep the tied candidates with the
        # smallest tie-break values.  flatnonzero is ascending, so the
        # default tie-break needs no extra sort.
        if tie_break is not None:
            ties = ties[np.argsort(tie[ties], kind="stable")[:need]]
        else:
            ties = ties[:need]
    chosen = np.concatenate((greater, ties))
    return chosen[np.lexsort((tie[chosen], -sims[chosen]))]
