"""The three kernel-speed levers as reusable benchmark phases.

Each phase measures one lever of DESIGN.md §13 on a self-contained
workload, verifies the levered path returns answers bit-identical to
the plain path, and returns a JSON-ready record:

- :func:`run_parallel_phase` — serial vs thread-parallel segment
  execution (``max_workers``) over a multi-segment catalog;
- :func:`run_mmap_phase` — eager vs zero-copy mapped archive opens,
  plus the first-touch cost the mapped path defers;
- :func:`run_cache_phase` — uncached queries vs warm result-cache hits;
- :func:`run_combined_phase` — a repeated-query serving workload with
  every lever on against the all-levers-off baseline (the PR's ≥5x
  combined queries-per-second acceptance).

The phases are consumed by ``benchmarks/bench_levers.py`` (CI gates +
trajectory appends) and the ``sts3 bench`` CLI subcommand (speedup
table).  Timings are best-of-``repeats`` with gc disabled, the same
discipline as the batch-engine benchmark.
"""

from __future__ import annotations

import gc
import os
import tempfile
import time
from pathlib import Path

import numpy as np

from ..core import STS3Database, load_database, save_database
from ..core.executor import available_cpu_count, resolve_workers

__all__ = [
    "build_segmented_database",
    "run_parallel_phase",
    "run_mmap_phase",
    "run_cache_phase",
    "run_combined_phase",
    "run_lever_phases",
]


def _neighbor_lists(results) -> list:
    return [[(n.index, n.similarity) for n in r.neighbors] for r in results]


def _best_of(fn, repeats: int) -> float:
    """Best (min) wall time of ``fn`` over ``repeats`` runs, gc off."""
    best = float("inf")
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
    finally:
        if was_enabled:
            gc.enable()
    return best


def build_segmented_database(
    n_series: int,
    length: int,
    sigma: float,
    epsilon: float,
    seed: int,
    segments: int = 4,
    buffer_capacity: int = 32,
    **db_kwargs,
) -> tuple[STS3Database, np.random.Generator]:
    """A deterministic multi-segment database plus its RNG.

    The base segment holds ``n_series`` series; each further segment is
    a sealed buffer of ``buffer_capacity`` spiked (bound-breaking)
    series, so the catalog genuinely has independent per-segment plans
    for the parallel lever to fan out.
    """
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=length) for _ in range(n_series)]
    db = STS3Database(
        base, sigma=sigma, epsilon=epsilon, normalize=False,
        buffer_capacity=buffer_capacity, **db_kwargs,
    )
    spike = 50.0
    for _ in range(max(0, segments - 1)):
        for _ in range(buffer_capacity):
            series = rng.normal(size=length)
            series[int(rng.integers(0, length))] = spike
            spike += 10.0
            db.insert(series)
    return db, rng


def run_parallel_phase(
    n_series: int = 3000,
    n_queries: int = 64,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    workers: int = 0,
    segments: int = 4,
) -> dict:
    """Serial vs thread-parallel batch execution over one catalog.

    ``workers=0`` resolves to the machine's CPU count.  The speedup is
    honest about single-core machines: with one core the parallel path
    still runs (one pool worker) and the record says so, but no floor
    should be asserted there — the CI leg pins a 4-vCPU runner.
    """
    resolved = resolve_workers(workers if workers else 0)
    db, rng = build_segmented_database(
        n_series, length, sigma, epsilon, seed, segments=segments
    )
    queries = [rng.normal(size=length) for _ in range(n_queries)]
    db.query_batch(queries[:4], k=k, method="index")  # warm caches

    db.max_workers = None
    serial_results = db.query_batch(queries, k=k, method="index")
    serial = _best_of(lambda: db.query_batch(queries, k=k, method="index"), repeats)

    db.max_workers = resolved
    parallel_results = db.query_batch(queries, k=k, method="index")
    parallel = _best_of(lambda: db.query_batch(queries, k=k, method="index"), repeats)
    db.max_workers = None

    identical = _neighbor_lists(serial_results) == _neighbor_lists(parallel_results)
    return {
        "phase": "parallel",
        "n_series": n_series,
        "n_queries": n_queries,
        "segments": len(db.catalog.segments),
        "workers": resolved,
        "cpu_count": os.cpu_count(),
        "available_cores": available_cpu_count(),
        "serial_seconds": round(serial, 6),
        "parallel_seconds": round(parallel, 6),
        "parallel_speedup": round(serial / parallel, 3),
        "queries_per_second": round(n_queries / parallel, 2),
        "identical_neighbor_lists": identical,
    }


def run_mmap_phase(
    n_series: int = 4000,
    n_queries: int = 16,
    length: int = 256,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    segments: int = 4,
) -> dict:
    """Eager vs zero-copy mapped archive opens (v4, packed bitsets).

    ``open_speedup`` compares open times only — the mapped side defers
    payload reads to first touch, which is timed separately — and the
    record checks mapped answers stay bit-identical to eager ones.
    """
    db, rng = build_segmented_database(
        n_series, length, sigma, epsilon, seed, segments=segments
    )
    queries = [rng.normal(size=length) for _ in range(n_queries)]
    with tempfile.TemporaryDirectory() as tmp:
        archive = Path(tmp) / "levers.sts3"
        save_database(db, archive, pack_bitsets=True)
        archive_bytes = archive.stat().st_size

        eager = _best_of(lambda: load_database(archive), repeats)
        mapped = _best_of(lambda: load_database(archive, mmap=True), repeats)

        eager_db = load_database(archive)
        mapped_db = load_database(archive, mmap=True)
        start = time.perf_counter()
        mapped_results = [
            mapped_db.query(q, k=k, method="index") for q in queries
        ]
        first_touch = time.perf_counter() - start
        eager_results = [
            eager_db.query(q, k=k, method="index") for q in queries
        ]
    identical = _neighbor_lists(eager_results) == _neighbor_lists(mapped_results)
    return {
        "phase": "mmap",
        "n_series": n_series,
        "segments": segments,
        "archive_bytes": archive_bytes,
        "eager_open_seconds": round(eager, 6),
        "mmap_open_seconds": round(mapped, 6),
        "mmap_open_speedup": round(eager / mapped, 3),
        "first_touch_seconds": round(first_touch, 6),
        "identical_neighbor_lists": identical,
    }


def run_cache_phase(
    n_series: int = 3000,
    n_queries: int = 32,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    cache_bytes: int = 8 << 20,
    segments: int = 4,
) -> dict:
    """Uncached queries vs warm result-cache hits on the same workload.

    The cached loop is timed *after* one populating pass, so every
    timed request is a hit — the lever's steady-state serving shape.
    Hit answers are checked bit-identical to uncached ones and the
    cache's own hit/miss counters are recorded.
    """
    db, rng = build_segmented_database(
        n_series, length, sigma, epsilon, seed, segments=segments,
        cache_bytes=cache_bytes,
    )
    queries = [rng.normal(size=length) for _ in range(n_queries)]

    db.result_cache.clear()
    cache = db.result_cache
    db.result_cache = None
    uncached_results = [db.query(q, k=k, method="index") for q in queries]
    uncached = _best_of(
        lambda: [db.query(q, k=k, method="index") for q in queries], repeats
    )

    db.result_cache = cache
    cached_results = [db.query(q, k=k, method="index") for q in queries]  # populate
    cached = _best_of(
        lambda: [db.query(q, k=k, method="index") for q in queries], repeats
    )
    stats = cache.stats()

    identical = _neighbor_lists(uncached_results) == _neighbor_lists(cached_results)
    return {
        "phase": "cache",
        "n_series": n_series,
        "n_queries": n_queries,
        "cache_bytes": cache_bytes,
        "uncached_seconds": round(uncached, 6),
        "cached_seconds": round(cached, 6),
        "cache_hit_speedup": round(uncached / cached, 3),
        "hits": stats["hits"],
        "misses": stats["misses"],
        "evictions": stats["evictions"],
        "identical_neighbor_lists": identical,
    }


def run_combined_phase(
    n_series: int = 3000,
    n_queries: int = 32,
    epochs: int = 8,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    workers: int = 0,
    cache_bytes: int = 8 << 20,
    segments: int = 4,
) -> dict:
    """All levers on vs all levers off, on a repeated-query serving run.

    The workload replays the same ``n_queries`` batch for ``epochs``
    rounds — the shape a query cache exists for.  The levered side pays
    one miss epoch and serves the rest from cache (parallel execution
    accelerates the misses on multi-core machines); the baseline
    recomputes every round.  Backs the PR's combined ≥5x acceptance.
    """
    resolved = resolve_workers(workers if workers else 0)
    db, rng = build_segmented_database(
        n_series, length, sigma, epsilon, seed, segments=segments,
        cache_bytes=cache_bytes,
    )
    queries = [rng.normal(size=length) for _ in range(n_queries)]
    db.query_batch(queries[:4], k=k, method="index")  # warm structures
    total = n_queries * epochs

    def serve() -> list:
        out = []
        for _ in range(epochs):
            out.extend(db.query_batch(queries, k=k, method="index"))
        return out

    db.result_cache.clear()
    cache = db.result_cache
    db.result_cache = None
    db.max_workers = None
    baseline_results = serve()
    baseline = _best_of(lambda: serve(), 1)

    db.result_cache = cache
    db.max_workers = resolved
    cache.clear()
    levered_results = serve()  # includes the miss epoch
    levered = _best_of(lambda: (cache.clear(), serve()), 1)
    db.max_workers = None

    identical = _neighbor_lists(baseline_results) == _neighbor_lists(levered_results)
    return {
        "phase": "combined",
        "n_series": n_series,
        "requests": total,
        "epochs": epochs,
        "workers": resolved,
        "available_cores": available_cpu_count(),
        "cache_bytes": cache_bytes,
        "baseline_seconds": round(baseline, 6),
        "levered_seconds": round(levered, 6),
        "combined_speedup": round(baseline / levered, 3),
        "baseline_queries_per_second": round(total / baseline, 2),
        "combined_queries_per_second": round(total / levered, 2),
        "identical_neighbor_lists": identical,
    }


_PHASES = {
    "parallel": run_parallel_phase,
    "mmap": run_mmap_phase,
    "cache": run_cache_phase,
    "combined": run_combined_phase,
}


def run_lever_phases(
    levers: list[str],
    n_series: int = 3000,
    n_queries: int = 32,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    workers: int = 0,
    cache_bytes: int = 8 << 20,
) -> list[dict]:
    """Run the named lever phases with one shared workload shape."""
    records = []
    for lever in levers:
        if lever not in _PHASES:
            raise ValueError(
                f"unknown lever {lever!r}; one of {sorted(_PHASES)}"
            )
        kwargs = dict(
            n_series=n_series, n_queries=n_queries, length=length,
            sigma=sigma, epsilon=epsilon, k=k, seed=seed,
        )
        if lever in ("parallel", "combined"):
            kwargs["workers"] = workers
        if lever in ("cache", "combined"):
            kwargs["cache_bytes"] = cache_bytes
        if lever != "combined":
            kwargs["repeats"] = repeats
        records.append(_PHASES[lever](**kwargs))
    return records
