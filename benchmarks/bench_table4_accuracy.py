"""Tables 4 and 8: 1-NN classification error — ED vs DTW vs STS3.

Paper Section 7.2.2.  For each dataset the σ/ε of STS3 are tuned on a
class-balanced half-split of TRAIN (Table 5 grid, subsampled), then the
error rate on TEST is reported.  The "fixed-workload" columns
(DTWfixed / STS3fixed) tune on TRAIN+TEST directly, reproducing the
paper's second protocol ("the error rate when the TRAIN and TEST
datasets are both used to train parameters").

Shape to reproduce (not absolute numbers — the datasets are synthetic
stand-ins): STS3 ≈ ED overall; STS3 wins on the suitable scenarios
(Device / Shapes); DTW wins on the noisy scenario; everyone struggles
on TwoClose.
"""

from __future__ import annotations

import pytest

from repro.baselines import error_rate, measures, sakoe_chiba_window
from repro.bench import render_table, repro_scale
from repro.core.tuning import sts3_error_rate, tune_sigma_epsilon
from repro.data.registry import load_dataset
from repro.types import LabeledDataset

DATASETS = ["CBF", "Device", "Shapes", "Noisy", "TwoClose"]

SIGMA_GRID = {  # coarse per-length grids (Table 5 subsample)
    "CBF": [1, 4, 10, 21, 38],
    "Device": [2, 8, 24, 72, 180],
    "Shapes": [2, 6, 16, 50, 150],
    "Noisy": [2, 8, 32, 128, 300],
    "TwoClose": [2, 16, 64, 256, 700],
}
EPSILON_GRID = [0.05, 0.1, 0.2, 0.4, 0.7, 1.0]


def _merged(train: LabeledDataset, test: LabeledDataset) -> LabeledDataset:
    return LabeledDataset(
        series=list(train.series) + list(test.series),
        labels=list(train.labels) + list(test.labels),
        name=train.name,
    )


@pytest.fixture(scope="module")
def experiment(report):
    scale = min(repro_scale(), 0.2)
    # DTW is O(n·ω) per pair; cap the TEST subset every measure is
    # scored on so the slow measures finish (all measures share the
    # same subset, keeping the comparison fair).
    test_cap = max(10, round(200 * scale))
    rows = []
    prepared = {}
    for name in DATASETS:
        ds = load_dataset(name, scale=scale, seed=0)
        test = ds.test.subset(range(min(len(ds.test), test_cap)))
        window = sakoe_chiba_window(ds.length, 0.1)
        ed_err = error_rate(ds.train, test, measures.ed())
        dtw_err = error_rate(ds.train, test, measures.dtw(window=window))
        tuned = tune_sigma_epsilon(
            ds.train, sigma_grid=SIGMA_GRID[name], epsilon_grid=EPSILON_GRID
        )
        sts3_err = sts3_error_rate(ds.train, test, tuned.sigma, tuned.epsilon)
        # Fixed-workload protocol: tune on everything, test on TEST.
        merged = _merged(ds.train, ds.test)
        fixed = tune_sigma_epsilon(
            merged, sigma_grid=SIGMA_GRID[name], epsilon_grid=EPSILON_GRID
        )
        sts3_fixed = sts3_error_rate(merged, test, fixed.sigma, fixed.epsilon)
        rows.append([name, ed_err, dtw_err, sts3_err, tuned.error, sts3_fixed])
        prepared[name] = (ds, test, tuned)
    report(
        "table4_accuracy",
        render_table(
            ["Dataset", "ED", "DTW", "STS3", "tSTS3", "STS3fixed"],
            rows,
            title=f"Table 4/8: 1-NN error rates (scale={scale})",
        ),
    )
    return prepared


def test_suitable_scenario_shape(experiment, report):
    """STS3 should beat or match ED on the device scenario (Table 4)."""
    ds, test, tuned = experiment["Device"]
    sts3_err = sts3_error_rate(ds.train, test, tuned.sigma, tuned.epsilon)
    ed_err = error_rate(ds.train, test, measures.ed())
    assert sts3_err <= ed_err + 0.1


@pytest.mark.parametrize("name", DATASETS)
def test_bench_sts3_classification(benchmark, experiment, name):
    """pytest-benchmark row: tuned-STS3 TEST classification."""
    ds, test, tuned = experiment[name]
    benchmark.pedantic(
        lambda: sts3_error_rate(ds.train, test, tuned.sigma, tuned.epsilon),
        rounds=1,
        iterations=1,
    )
