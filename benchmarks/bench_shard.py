"""Benchmark gate: the sharded multi-process engine (docs/sharding.md).

Runs :func:`repro.bench.shard.run_shard_phase` — batch k-NN throughput
of an N-shard :class:`~repro.core.shard.ShardedDatabase` against the
single-process engine on the same workload — and enforces the three
contracts of the sharding PR:

1. **bit-identity**: every sharded answer equals the single-process
   answer exactly (similarities compared as ``float.hex``); a mismatch
   fails the run regardless of speed,
2. **no acked write lost**: the worker-kill drill (acked insert →
   SIGKILL owner → degraded query naming the shard → recovered query
   finding the insert) must pass,
3. **throughput**: with ``--min-shard-speedup`` set, the N-shard
   batch must beat the single-process batch by that factor.

CI runs the gate on a 4-vCPU runner (job ``perf-shards``)::

    PYTHONPATH=src python benchmarks/bench_shard.py \
        --shards 4 --min-shard-speedup 2.0

The speedup floor only makes sense when the runner has at least as
many cores as shards; the identity and fault gates hold anywhere (the
record's ``available_cores`` says what the machine could do).  Results
append a ``shard`` phase to ``BENCH_trajectory.json`` alongside the
lever phases, keeping the trend diffable across PRs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.bench.shard import run_shard_phase

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_shard.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1

_SUMMARY_KEYS = (
    "shard_speedup",
    "sharded_queries_per_second",
    "single_queries_per_second",
    "shards",
    "available_cores",
    "fault_ok",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--series", type=int, default=4000)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the worker-kill recovery drill")
    parser.add_argument("--min-shard-speedup", type=float, default=None,
                        help="fail unless sharded/single >= this factor "
                             "(only meaningful with cores >= shards)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def append_trajectory(record: dict, args, path: Path) -> None:
    """Append the shard phase to the shared run history (append-only)."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    summary = {key: record[key] for key in _SUMMARY_KEYS if key in record}
    summary["identical_neighbor_lists"] = record["identical_neighbor_lists"]
    history["runs"].append({
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "shard",
        "phase": "shard",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "shards": args.shards,
        },
        "summary": summary,
    })
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended shard phase entry to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    print(
        f"shard phase: {args.shards} shards — {args.series} series x "
        f"{args.queries} queries, length {args.length}, k={args.k}",
        flush=True,
    )
    record = run_shard_phase(
        n_series=args.series, n_queries=args.queries, length=args.length,
        sigma=args.sigma, epsilon=args.epsilon, k=args.k, seed=args.seed,
        repeats=args.repeats, shards=args.shards,
        check_faults=not args.no_faults,
    )
    print(
        f"   shard: {record['shard_speedup']:.2f}x "
        f"({record['shards']} shards on {record['available_cores']} cores, "
        f"{record['sharded_queries_per_second']} q/s vs "
        f"{record['single_queries_per_second']} q/s)   "
        f"identical={record['identical_neighbor_lists']}"
    )
    if not args.no_faults:
        print(
            f"   fault: killed shard {record['fault_killed_shard']} after "
            f"acked insert #{record['fault_insert_id']} — degraded="
            f"{record['fault_degraded_first']} recovered="
            f"{record['fault_recovered_complete']} found="
            f"{record['fault_acked_write_found']}"
        )

    result = {
        "benchmark": "shard",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "shards": args.shards,
        },
        "phases": [record],
    }
    if str(args.output) != "-":
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args, args.trajectory)

    if not record["identical_neighbor_lists"]:
        print(
            "FAIL: sharded answers differ from the single-process engine",
            file=sys.stderr,
        )
        return 1
    if not args.no_faults and not record["fault_ok"]:
        print("FAIL: worker-kill recovery drill failed", file=sys.stderr)
        return 1
    if args.min_shard_speedup is not None:
        measured = record["shard_speedup"]
        if measured < args.min_shard_speedup:
            print(
                f"FAIL: shard speedup {measured:.2f}x below required "
                f"{args.min_shard_speedup:.2f}x "
                f"({record['available_cores']} cores available)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
