"""Internals of the approximate searcher: dense vs sparse coarse levels."""

import numpy as np
import pytest

from repro.core import approximate as approx_mod
from repro.core.approximate import ApproximateSearcher, _CoarseLevel
from repro.core.grid import Bound, Grid
from repro.core.setrep import transform


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    series = [rng.normal(size=48) for _ in range(25)]
    bound = Bound.of_database(series)
    grid = Grid.from_cell_sizes(bound, 2, 0.4)
    sets = [transform(s, grid) for s in series]
    return series, sets, bound


class TestCoarseLevel:
    def test_dense_by_default(self, data):
        series, _, bound = data
        level = _CoarseLevel(Grid.from_resolution(bound, 4), series)
        assert level.dense
        assert level.matrix.shape == (25, 16)

    def test_matrix_rows_match_sets(self, data):
        series, _, bound = data
        grid = Grid.from_resolution(bound, 5)
        level = _CoarseLevel(grid, series)
        for i, s in enumerate(series):
            expected = transform(s, grid)
            assert np.array_equal(np.flatnonzero(level.matrix[i]), expected)

    def test_similarities_match_direct(self, data):
        from repro.core.jaccard import jaccard

        series, _, bound = data
        grid = Grid.from_resolution(bound, 4)
        level = _CoarseLevel(grid, series)
        query_rep = transform(series[7], grid)
        candidates = np.arange(len(series))
        sims = level.similarities(candidates, query_rep)
        for i in range(len(series)):
            assert sims[i] == pytest.approx(jaccard(transform(series[i], grid), query_rep))


class TestSparseFallback:
    def test_sparse_path_equals_dense(self, data, monkeypatch):
        """Force the sparse fallback and check identical answers."""
        series, sets, bound = data
        dense_searcher = ApproximateSearcher(series, sets, bound, max_scale=4)
        monkeypatch.setattr(approx_mod, "_DENSE_CELL_LIMIT", 0)
        sparse_searcher = ApproximateSearcher(series, sets, bound, max_scale=4)
        assert not sparse_searcher.levels[2].dense
        rng = np.random.default_rng(1)
        for _ in range(4):
            query = rng.normal(size=48)
            grid = Grid.from_cell_sizes(bound, 2, 0.4)
            query_set = transform(query, grid)
            a = dense_searcher.query(query, query_set, k=3)
            b = sparse_searcher.query(query, query_set, k=3)
            assert a.indices() == b.indices()
            assert a.similarities() == pytest.approx(b.similarities())
