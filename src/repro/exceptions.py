"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by this library derive from :class:`ReproError`, so
callers can catch a single type at an API boundary.  Where a standard
built-in category also applies (bad argument values, missing lookups) the
exception additionally subclasses the built-in, so ``except ValueError``
written against a generic numeric library keeps working.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A parameter value is outside its documented domain.

    Raised for non-positive cell sizes, ``scale < 1``, ``k < 1`` and
    similar misconfiguration that can be detected before any work starts.
    """


class GridError(ReproError, ValueError):
    """A grid cannot be constructed or used as requested.

    Typical causes: an empty bound (``t_max < t_min``), a degenerate
    value range, or a point handed to a grid method that requires it to
    lie inside the bound.
    """


class EmptyDatabaseError(ReproError, LookupError):
    """A query was issued against a database with no series in it."""


class DatasetError(ReproError, ValueError):
    """A dataset file or generator specification is invalid."""


class FollowerWriteError(ReproError, RuntimeError):
    """A local write reached a database in follower apply mode.

    A replication follower (docs/replication.md) mutates only through
    shipped WAL records; direct ``insert``/``flush``/``compact`` calls
    would fork its history from the primary's, so they are rejected
    until the follower is promoted.
    """
