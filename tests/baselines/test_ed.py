"""Tests for Euclidean distance and its early-abandoning variant."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.ed import euclidean, euclidean_early_abandon, squared_euclidean
from repro.exceptions import ParameterError

pair = st.integers(min_value=1, max_value=64).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(-100, 100, allow_nan=False)),
        arrays(np.float64, n, elements=st.floats(-100, 100, allow_nan=False)),
    )
)


class TestEuclidean:
    def test_known_value(self):
        assert euclidean(np.array([0.0, 0.0]), np.array([3.0, 4.0])) == 5.0

    def test_self_distance_zero(self):
        a = np.array([1.0, -2.0, 3.0])
        assert euclidean(a, a) == 0.0

    def test_length_mismatch_raises(self):
        with pytest.raises(ParameterError):
            euclidean(np.zeros(3), np.zeros(4))

    def test_multidim(self):
        a = np.zeros((2, 2))
        b = np.ones((2, 2))
        assert euclidean(a, b) == 2.0

    @given(pair)
    def test_symmetry(self, ab):
        a, b = ab
        assert euclidean(a, b) == pytest.approx(euclidean(b, a))

    @given(pair)
    def test_squared_consistent(self, ab):
        a, b = ab
        assert euclidean(a, b) == pytest.approx(np.sqrt(squared_euclidean(a, b)))


class TestEarlyAbandon:
    def test_no_cutoff_equals_exact(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=100), rng.normal(size=100)
        assert euclidean_early_abandon(a, b, float("inf")) == pytest.approx(
            euclidean(a, b)
        )

    def test_abandons_above_cutoff(self):
        a = np.zeros(1000)
        b = np.full(1000, 10.0)
        assert euclidean_early_abandon(a, b, cutoff=1.0) == float("inf")

    def test_exact_below_cutoff(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=64), rng.normal(size=64)
        exact = euclidean(a, b)
        assert euclidean_early_abandon(a, b, cutoff=exact + 1) == pytest.approx(exact)

    @given(pair, st.floats(min_value=0.1, max_value=50))
    def test_never_underestimates(self, ab, cutoff):
        """Either the exact distance, or inf with exact > cutoff."""
        a, b = ab
        exact = euclidean(a, b)
        got = euclidean_early_abandon(a, b, cutoff)
        if got == float("inf"):
            assert exact > cutoff - 1e-9
        else:
            assert got == pytest.approx(exact)
