"""Figure 5(a): runtime of the three accelerated STS3s vs #query.

Paper Section 7.4.1: pruning-based and approximate runtimes grow
linearly with the query count, and the approximate STS3 is the fastest
throughout.  #query spans 1000-8000 in the paper, scaled by
``REPRO_SCALE`` here.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, repro_scale, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

QUERY_COUNTS_PAPER = [1000, 2000, 4000, 8000]
METHODS = ["index", "pruning", "approximate"]


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=200)
    counts = [scaled(c, minimum=5) for c in QUERY_COUNTS_PAPER]
    workload = ecg_workload(n_series, max(counts), length=500, seed=1)
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)
    # Build all accelerated structures offline, as the paper does.
    db.indexed_searcher()
    db.pruning_searcher()
    db.approximate_searcher()

    rows = []
    times: dict[str, list[float]] = {m: [] for m in METHODS}
    for count in counts:
        queries = workload.queries[:count]
        row: list[object] = [count]
        for method in METHODS:
            with Timer() as t:
                for q in queries:
                    db.query(q, k=1, method=method)
            row.append(t.millis)
            times[method].append(t.seconds)
        rows.append(row)
    report(
        "fig5a_query_number",
        render_table(
            ["#query", "index ms", "pruning ms", "approximate ms"],
            rows,
            title=f"Figure 5(a): runtime vs #query (#series={n_series}, len=500)",
        ),
    )
    # Shape: approximate beats the pruning-based scan at the largest
    # query count (our inverted list is vectorized end-to-end and stays
    # fastest — a deviation from the paper's Figure 5(a), recorded in
    # EXPERIMENTS.md), and runtime grows roughly linearly with #query.
    assert times["approximate"][-1] <= times["pruning"][-1] * 1.2
    growth = times["approximate"][-1] / max(times["approximate"][0], 1e-9)
    count_growth = counts[-1] / counts[0]
    assert growth < count_growth * 3
    return db, workload, counts


@pytest.mark.parametrize("method", METHODS)
def test_bench_per_query(benchmark, experiment, method):
    db, workload, _ = experiment
    query = workload.queries[0]
    benchmark(lambda: db.query(query, k=1, method=method))
