"""Tests for the prefix-filtered set-similarity join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.jaccard import jaccard
from repro.core.join import JoinPair, similarity_join
from repro.exceptions import ParameterError


def _brute_force(sets, threshold):
    out = []
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            if len(sets[i]) == 0 or len(sets[j]) == 0:
                continue
            sim = jaccard(sets[i], sets[j])
            if sim >= threshold - 1e-12:
                out.append((round(sim, 12), i, j))
    return sorted(out, key=lambda p: (-p[0], p[1], p[2]))


def _as_sets(lists):
    return [np.unique(np.asarray(xs, dtype=np.int64)) for xs in lists]


sets_strategy = st.lists(
    st.lists(st.integers(0, 60), min_size=0, max_size=25),
    min_size=2,
    max_size=18,
).map(_as_sets)


class TestValidation:
    def test_threshold_range(self):
        with pytest.raises(ParameterError):
            similarity_join([], 0.0)
        with pytest.raises(ParameterError):
            similarity_join([], 1.5)

    def test_fewer_than_two_sets(self):
        assert similarity_join([np.array([1, 2])], 0.5) == []


class TestExactness:
    def test_duplicate_sets_joined(self):
        sets = _as_sets([[1, 2, 3], [1, 2, 3], [9, 10]])
        pairs = similarity_join(sets, 0.99)
        assert pairs == [JoinPair(1.0, 0, 1)]

    def test_known_overlap(self):
        sets = _as_sets([[1, 2, 3, 4], [3, 4, 5, 6], [100]])
        pairs = similarity_join(sets, 0.3)
        assert [(p.first, p.second) for p in pairs] == [(0, 1)]
        assert pairs[0].similarity == pytest.approx(2 / 6)

    def test_threshold_excludes(self):
        sets = _as_sets([[1, 2, 3, 4], [3, 4, 5, 6]])
        assert similarity_join(sets, 0.5) == []

    def test_empty_sets_never_join(self):
        sets = _as_sets([[], [], [1, 2]])
        assert similarity_join(sets, 0.5) == []

    @given(sets_strategy, st.sampled_from([0.1, 0.3, 0.5, 0.7, 0.9, 1.0]))
    @settings(max_examples=60)
    def test_matches_brute_force(self, sets, threshold):
        got = [
            (round(p.similarity, 12), p.first, p.second)
            for p in similarity_join(sets, threshold)
        ]
        assert got == _brute_force(sets, threshold)

    def test_results_sorted(self):
        rng = np.random.default_rng(0)
        sets = [
            np.unique(rng.integers(0, 40, size=rng.integers(5, 20)))
            for _ in range(20)
        ]
        pairs = similarity_join(sets, 0.2)
        sims = [p.similarity for p in pairs]
        assert sims == sorted(sims, reverse=True)

    def test_no_duplicates(self):
        rng = np.random.default_rng(1)
        sets = [
            np.unique(rng.integers(0, 30, size=15)) for _ in range(25)
        ]
        pairs = similarity_join(sets, 0.3)
        keys = [(p.first, p.second) for p in pairs]
        assert len(keys) == len(set(keys))


class TestOnTimeSeries:
    def test_near_duplicate_windows_join(self):
        """Consecutive ECG windows with high overlap surface as pairs."""
        from repro.core import STS3Database
        from repro.data.workloads import ecg_workload

        wl = ecg_workload(60, 1, length=96, seed=3)
        db = STS3Database(wl.database, sigma=3, epsilon=0.4)
        pairs = similarity_join(db.sets, 0.55)
        for p in pairs:
            assert p.similarity >= 0.55
            assert p.first != p.second
        # at this threshold some near-duplicate beats should pair up
        assert len(pairs) > 0
