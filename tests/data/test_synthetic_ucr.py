"""Tests for the faithful synthetic UCR datasets (control charts, patterns)."""

import numpy as np
import pytest

from repro.baselines import error_rate, measures
from repro.data.registry import load_dataset
from repro.data.ucr_like import synthetic_control, two_patterns


class TestSyntheticControl:
    def test_shape(self):
        ds = synthetic_control(n_train_per_class=4, n_test_per_class=4, seed=0)
        assert ds.n_classes == 6
        assert ds.length == 60

    def test_reproducible(self):
        a = synthetic_control(n_train_per_class=2, n_test_per_class=2, seed=5)
        b = synthetic_control(n_train_per_class=2, n_test_per_class=2, seed=5)
        for s1, s2 in zip(a.train.series, b.train.series):
            assert np.array_equal(s1, s2)

    def test_trend_classes_distinguishable(self):
        """Increasing vs decreasing trends are linearly separable, so
        1-NN under ED should do far better than the 5/6 random error."""
        ds = synthetic_control(n_train_per_class=10, n_test_per_class=10, seed=1)
        err = error_rate(ds.train, ds.test, measures.ed())
        assert err < 0.5

    def test_in_registry(self):
        ds = load_dataset("synthetic_control", scale=0.1, seed=0)
        assert ds.n_classes == 6


class TestTwoPatterns:
    def test_shape(self):
        ds = two_patterns(n_train_per_class=3, n_test_per_class=3, seed=0)
        assert ds.n_classes == 4
        assert ds.length == 128

    def test_patterns_present(self):
        """Every instance carries two step patterns of magnitude ~5σ,
        so the series range far exceeds pure noise (z-normed ~[-3,3])."""
        ds = two_patterns(n_train_per_class=5, n_test_per_class=2, seed=2)
        for series, _label in ds.train:
            assert series.max() - series.min() > 2.0

    def test_classes_distinguishable_by_dtw(self):
        ds = two_patterns(n_train_per_class=12, n_test_per_class=8, seed=3)
        err = error_rate(ds.train, ds.test, measures.dtw(window=12))
        assert err < 0.6  # random would be 0.75

    def test_in_registry(self):
        ds = load_dataset("Two_Patterns", scale=0.01, seed=0)
        assert ds.n_classes == 4
        assert ds.length == 128
