"""k-medoids clustering under the Jaccard distance (Section 6.3).

Parameter tuning needs labeled data; the paper notes that when manual
labels are unavailable, "time series clustering algorithms such as [2]
can be used to label the data".  This module provides that substrate: a
PAM-style k-medoids over an arbitrary precomputed distance matrix
(medoids, unlike centroids, need no averaging operation — exactly right
for Jaccard distances between cell sets), plus the convenience that
clusters a series collection via its set representations.

:func:`repro.core.tuning.tune_sigma_epsilon_unlabeled` builds on this
to tune σ/ε with cluster-derived pseudo-labels.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .grid import Bound, Grid
from .jaccard import jaccard_distance
from .setrep import transform

__all__ = ["k_medoids", "cluster_series"]


def k_medoids(
    distances: np.ndarray,
    n_clusters: int,
    seed: int = 0,
    max_iterations: int = 50,
) -> tuple[np.ndarray, np.ndarray]:
    """PAM-style k-medoids over a symmetric distance matrix.

    Initialization follows k-means++ (greedy spread of seeds by
    distance); iterations alternate assignment and exact medoid update
    per cluster until the assignment is stable.  Returns
    ``(labels, medoid_indices)``.
    """
    distances = np.asarray(distances, dtype=np.float64)
    n = distances.shape[0]
    if distances.shape != (n, n):
        raise ParameterError("distance matrix must be square")
    if not 1 <= n_clusters <= n:
        raise ParameterError(
            f"n_clusters must be in [1, {n}], got {n_clusters}"
        )
    rng = np.random.default_rng(seed)

    # k-means++-style seeding on the precomputed distances.
    medoids = [int(rng.integers(0, n))]
    while len(medoids) < n_clusters:
        nearest = distances[:, medoids].min(axis=1)
        weights = nearest**2
        total = weights.sum()
        if total <= 0:  # all points coincide with a medoid
            remaining = [i for i in range(n) if i not in medoids]
            medoids.append(int(rng.choice(remaining)))
            continue
        medoids.append(int(rng.choice(n, p=weights / total)))
    medoids_arr = np.asarray(sorted(set(medoids)), dtype=np.int64)
    while len(medoids_arr) < n_clusters:  # de-dup fallback
        extra = rng.integers(0, n)
        if extra not in medoids_arr:
            medoids_arr = np.sort(np.append(medoids_arr, extra))

    labels = np.argmin(distances[:, medoids_arr], axis=1)
    for _ in range(max_iterations):
        # exact medoid update: the member minimizing intra-cluster cost
        new_medoids = medoids_arr.copy()
        for cluster in range(n_clusters):
            members = np.flatnonzero(labels == cluster)
            if members.size == 0:
                continue
            within = distances[np.ix_(members, members)]
            new_medoids[cluster] = members[within.sum(axis=1).argmin()]
        new_labels = np.argmin(distances[:, new_medoids], axis=1)
        if np.array_equal(new_labels, labels) and np.array_equal(
            new_medoids, medoids_arr
        ):
            break
        labels, medoids_arr = new_labels, new_medoids
    return labels.astype(np.int64), medoids_arr


def cluster_series(
    series: list[np.ndarray],
    n_clusters: int,
    sigma: float = 2,
    epsilon: float = 0.3,
    seed: int = 0,
) -> np.ndarray:
    """Cluster series by the Jaccard distance of their cell sets.

    The grid used for the distance is deliberately fine (small default
    cells): it only needs to *separate* the series, not to be the
    tuned search grid — tuning happens afterwards on the
    pseudo-labels.
    """
    if not series:
        raise ParameterError("cannot cluster an empty collection")
    bound = Bound.of_database(series)
    grid = Grid.from_cell_sizes(bound, sigma, epsilon)
    sets = [transform(s, grid) for s in series]
    n = len(sets)
    distances = np.zeros((n, n))
    for i in range(n):
        for j in range(i + 1, n):
            d = jaccard_distance(sets[i], sets[j])
            distances[i, j] = distances[j, i] = d
    labels, _ = k_medoids(distances, n_clusters, seed=seed)
    return labels
