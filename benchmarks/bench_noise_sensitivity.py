"""Section 6.2 ablation: accuracy degradation under growing noise.

"When the noise of the data is great, the accuracy of our approach
decreases.  As a comparison, DTW does not depend on data distribution
and has no such trouble."  We sweep the noise level of one template
family and track the 1-NN error of ED, DTW, and tuned STS3: the shape
to reproduce is STS3's error climbing toward (and past) DTW's as the
noise grows, while all three are comparable in the clean regime.
"""

from __future__ import annotations

import pytest

from repro.baselines import error_rate, measures, sakoe_chiba_window
from repro.bench import render_table
from repro.core.tuning import sts3_error_rate, tune_sigma_epsilon
from repro.data.ucr_like import noisy_templates

NOISE_LEVELS = [0.1, 0.4, 0.8, 1.6, 2.4]
LENGTH = 96


@pytest.fixture(scope="module")
def experiment(report):
    rows = []
    gaps = []
    for noise in NOISE_LEVELS:
        ds = noisy_templates(
            n_classes=5,
            n_train_per_class=10,
            n_test_per_class=10,
            length=LENGTH,
            seed=7,
            noise_std=noise,
        )
        window = sakoe_chiba_window(LENGTH, 0.1)
        ed_err = error_rate(ds.train, ds.test, measures.ed())
        dtw_err = error_rate(ds.train, ds.test, measures.dtw(window=window))
        tuned = tune_sigma_epsilon(
            ds.train,
            sigma_grid=[1, 3, 8, 20],
            epsilon_grid=[0.1, 0.3, 0.6, 1.0],
        )
        sts3_err = sts3_error_rate(ds.train, ds.test, tuned.sigma, tuned.epsilon)
        rows.append([noise, ed_err, dtw_err, sts3_err])
        gaps.append(sts3_err - dtw_err)
    report(
        "noise_sensitivity",
        render_table(
            ["noise std", "ED", "DTW", "STS3"],
            rows,
            title="Section 6.2: error rate vs noise level (5 classes, len 96)",
        ),
    )
    # Shape: the STS3-DTW gap does not shrink as noise rises; in the
    # noisiest regime STS3 should not beat DTW (the paper's claim).
    assert gaps[-1] >= -0.05
    # And everyone should degrade: last-noise errors exceed first-noise.
    assert rows[-1][3] >= rows[0][3]
    return rows


def test_bench_noisy_eval(benchmark, experiment):
    ds = noisy_templates(
        n_classes=4, n_train_per_class=6, n_test_per_class=6,
        length=LENGTH, seed=8, noise_std=1.0,
    )
    benchmark.pedantic(
        lambda: sts3_error_rate(ds.train, ds.test, 3, 0.3),
        rounds=1,
        iterations=1,
    )
