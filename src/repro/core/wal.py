"""Write-ahead log for the lazy update path (DESIGN.md §12).

The paper's buffered-update scheme (Section 5.3.2) keeps inserted
series in memory until the buffer seals; a crash between insert and
seal silently loses them.  The WAL closes that window: every mutation
is appended (and, at the fsync cadence, made durable) *before* it
touches the :class:`~repro.core.database.UpdateBuffer` or catalog, so
recovery is "load the last checkpoint archive, replay the log".

On-disk layout — a directory of numbered *generation* files::

    <wal dir>/00000001.wal
    <wal dir>/00000002.wal        # rotated at each segment seal
    ...

Each file starts with an 8-byte magic (:data:`MAGIC`) and then holds
CRC32-framed records::

    [payload_len: u32 LE][crc32(payload): u32 LE][payload]

A payload is either compact JSON (UTF-8; first byte ``{``) or, for the
hot insert path, a *binary series frame* — a NUL byte, a compact JSON
header ``{"seq":...,"op":...,"series":{"dtype":...,"shape":[...]}}``,
a NUL separator, and the array's raw bytes (no base64, ~25% fewer
journaled bytes).  Records carry a monotonically increasing ``seq``
plus an ``op`` (``insert`` / ``flush`` / ``compact``); inserted series
travel as their exact float64 bytes, so replay is bit-identical.

Durability semantics:

- :meth:`WriteAheadLog.append` buffers; every ``fsync_batch`` appends
  (or an explicit :meth:`~WriteAheadLog.sync`) the file is fsynced and
  ``synced_seq`` advances.  A write is **acknowledged** once its seq is
  ``<= synced_seq`` — the crash-recovery suite asserts no acknowledged
  write is ever lost, while a torn unsynced tail may be.
- :func:`replay_wal` reads generations in order, stops at the first bad
  frame (short header, short payload, CRC mismatch, undecodable JSON,
  sequence gap), and — with ``truncate=True`` — truncates the file at
  the bad offset and drops later generations: a torn tail never poisons
  a recovery twice.
- :meth:`~WriteAheadLog.rotate` (called at segment seal) starts a new
  generation; :meth:`~WriteAheadLog.checkpoint` (called after a
  successful :func:`~repro.core.persistence.save_database`) deletes the
  generations the archive has made redundant.

Observability: ``wal.append`` / ``wal.replay`` spans and the
``sts3_wal_*`` metric family (appends, bytes, fsyncs, replayed records,
truncated bytes, pending-record gauge) — see docs/observability.md.
"""

from __future__ import annotations

import json
import os
import struct
from base64 import b64decode, b64encode
from dataclasses import dataclass, field
from pathlib import Path
from zlib import crc32

import numpy as np

from .. import faults
from ..exceptions import ParameterError, ReproError
from ..obs import get_registry, get_tracer, span

__all__ = [
    "MAGIC",
    "FrameError",
    "ReplayReport",
    "TailBatch",
    "WalGapError",
    "WalTail",
    "WriteAheadLog",
    "decode_series",
    "encode_series",
    "parse_frames",
    "read_applied_seq",
    "replay_wal",
    "scan_wal",
    "write_applied_seq",
]

#: first 8 bytes of every generation file.
MAGIC = b"STS3WAL1"

_FRAME_HEADER = struct.Struct("<II")  # payload length, crc32(payload)

#: default appends between fsyncs — the insert-path overhead budget
#: (<= 15%, enforced by benchmarks/bench_wal.py) is measured here.  A
#: single fsync costs ~1-2 ms on commodity filesystems, so the batch
#: size bounds both the amortized insert overhead and the worst-case
#: unacknowledged tail (at most this many records can be lost in a
#: crash; set ``fsync_batch=1`` for ack-every-insert durability).  At
#: 256 records (~300 KiB of frames) the amortized fsync cost drops
#: under ~10 µs per insert while the at-risk window stays well below
#: one buffer flush worth of data.
DEFAULT_FSYNC_BATCH = 256

#: spill the in-memory append buffer to the file once it exceeds this
#: many bytes, bounding memory without forcing an fsync.
_SPILL_BYTES = 1 << 20


class _AppendBuffer:
    """In-memory tail of the active generation (group commit).

    Appended frames accumulate here and reach the file in one write at
    each sync (or earlier, past :data:`_SPILL_BYTES`).  Durability
    semantics are unchanged — a record was never acknowledged before
    its fsync — but the insert path pays a ``bytearray`` extend instead
    of a buffered-I/O write.  Quacks like a file so the fault-injection
    layer (:func:`repro.faults.fault_write`) can tear or flip appends
    in-flight exactly as it would real writes.
    """

    __slots__ = ("data",)

    def __init__(self):
        self.data = bytearray()

    def write(self, chunk: bytes) -> None:
        self.data += chunk

    def flush(self) -> None:  # torn-write faults flush before raising
        pass


def encode_series(series: np.ndarray) -> dict:
    """JSON-safe encoding of a series, bit-exact (base64 of raw bytes)."""
    arr = np.ascontiguousarray(series)
    return {
        "dtype": str(arr.dtype),
        "shape": list(arr.shape),
        "data": b64encode(arr.tobytes()).decode("ascii"),
    }


def decode_series(record: dict) -> np.ndarray:
    """Inverse of both series encodings (returns a writable array).

    Accepts the base64 form produced by :func:`encode_series` (key
    ``data``) and the binary frame form produced by
    :meth:`WriteAheadLog.append_series` (key ``raw``, bytes attached by
    the frame parser).
    """
    raw = record["raw"] if "raw" in record else b64decode(record["data"])
    arr = np.frombuffer(raw, dtype=np.dtype(record["dtype"]))
    return arr.reshape(tuple(record["shape"])).copy()


def _generation_files(directory: Path) -> list[Path]:
    return sorted(directory.glob("[0-9]" * 8 + ".wal"))


def _first_frame_seq(path: Path) -> int | None:
    """Seq of the first frame in a generation file (None when empty/bad).

    Reads one frame, not the whole file: used at open to restore the
    checkpoint watermark — everything *before* the oldest surviving
    record is, by construction, covered by the archive.
    """
    try:
        with open(path, "rb") as fh:
            if fh.read(len(MAGIC)) != MAGIC:
                return None
            header = fh.read(_FRAME_HEADER.size)
            if len(header) < _FRAME_HEADER.size:
                return None
            length, checksum = _FRAME_HEADER.unpack(header)
            payload = fh.read(length)
    except OSError:  # pragma: no cover - unreadable file
        return None
    if len(payload) < length or crc32(payload) != checksum:
        return None
    if payload[:1] == b"\x00":
        sep = payload.find(b"\x00", 1)
        if sep < 0:
            return None
        payload = payload[1:sep]
    try:
        record = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    seq = record.get("seq")
    return seq if isinstance(seq, int) else None


def _fsync_directory(directory: Path) -> None:
    """Make a directory entry durable (best-effort off POSIX)."""
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


class WriteAheadLog:
    """Append-only durability log; one instance per live database."""

    def __init__(
        self,
        directory: str | Path,
        fsync_batch: int = DEFAULT_FSYNC_BATCH,
        start_seq: int = 0,
    ):
        if fsync_batch < 1:
            raise ParameterError(f"fsync_batch must be >= 1, got {fsync_batch}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync_batch = int(fsync_batch)
        #: seq of the last appended record (may not be durable yet).
        self.last_seq = int(start_seq)
        #: seq of the last record known to be on stable storage; a
        #: write is *acknowledged* once its seq is <= synced_seq.
        self.synced_seq = int(start_seq)
        #: seq covered by the last archive checkpoint.  Restored from
        #: the oldest surviving generation (records before it were
        #: retired by a past :meth:`checkpoint`); the difference
        #: ``last_seq - checkpoint_seq`` is the replay debt a crash
        #: would incur, and drives the maintenance checkpoint cadence.
        self.checkpoint_seq = int(start_seq)
        survivors = _generation_files(self.directory)
        if survivors:
            first = _first_frame_seq(survivors[0])
            if first is not None:
                self.checkpoint_seq = first - 1
        self._pending = 0
        self._file = None
        # metric handles resolved once: registry lookups are measurable
        # at append rates (see benchmarks/bench_wal.py)
        registry = get_registry()
        self._m_appends = registry.counter(
            "sts3_wal_appends_total", "WAL records appended, by operation"
        )
        self._m_bytes = registry.counter("sts3_wal_bytes_total", "WAL bytes written")
        self._m_pending = registry.gauge(
            "sts3_wal_pending_records", "appended WAL records not yet fsynced"
        )
        self._m_fsyncs = registry.counter("sts3_wal_fsyncs_total", "WAL fsync calls")
        # per-op append counts and bytes accumulated locally between
        # fsyncs, flushed to the registry in sync()
        self._lazy_appends: dict[str, int] = {}
        self._lazy_bytes = 0
        self._buffer = _AppendBuffer()
        # memoized binary-frame headers keyed by (op, dtype, shape):
        # rebuilding the JSON header from scratch costs ~5µs/append,
        # filling the sequence number into a cached template ~0.2µs
        self._series_formats: dict[tuple, bytes] = {}
        self._open_generation()

    # -- file lifecycle -------------------------------------------------

    def _open_generation(self) -> None:
        existing = _generation_files(self.directory)
        index = 1
        if existing:
            index = int(existing[-1].stem) + 1
        path = self.directory / f"{index:08d}.wal"
        self._file = open(path, "ab")
        self._file.write(MAGIC)
        self._file.flush()
        os.fsync(self._file.fileno())
        _fsync_directory(self.directory)
        self.path = path

    def close(self) -> None:
        """Sync and close the active generation file."""
        if self._file is None:
            return
        self.sync()
        self._file.close()
        self._file = None

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the hot path ---------------------------------------------------

    def append(self, op: str, **fields) -> int:
        """Append one record; returns its seq (durable once synced)."""
        if self._file is None:
            raise ParameterError("write-ahead log is closed")
        seq = self.last_seq + 1
        payload = json.dumps(
            {"seq": seq, "op": op, **fields}, separators=(",", ":")
        ).encode()
        return self._append_payload(op, seq, payload)

    def append_series(self, op: str, series: np.ndarray) -> int:
        """Append a record carrying ``series``, bit-exact — the hot path.

        Logically equivalent to ``append(op, series=
        encode_series(series))`` but framed in the *binary* payload
        form: a NUL marker, a compact JSON header, a NUL separator, and
        the array's raw bytes.  Skipping base64 cuts the journaled
        bytes by ~25% and the encode/replay CPU roughly in half — the
        insert path is where benchmarks/bench_wal.py enforces the
        overhead budget.
        """
        if self._file is None:
            raise ParameterError("write-ahead log is closed")
        seq = self.last_seq + 1
        arr = np.ascontiguousarray(series)
        key = (op, arr.dtype, arr.shape)
        fmt = self._series_formats.get(key)
        if fmt is None:
            # dtype.str ("<f8") over str(dtype) ("float64"): the
            # byte order must be explicit for cross-platform replay
            fmt = b'\x00{"seq":%%d,"op":"%s","series":{"dtype":"%s","shape":[%s]}}\x00' % (
                op.encode(),
                arr.dtype.str.encode(),
                ",".join(map(str, arr.shape)).encode(),
            )
            self._series_formats[key] = fmt
        header = fmt % seq
        if faults.get_plan() is None and not get_tracer().enabled:
            # zero-copy fast path: the frame is assembled directly in
            # the append buffer — header and raw array bytes extended
            # separately, checksum chained across the two pieces — so
            # no intermediate payload/frame bytes objects are built.
            # The per-append allocation churn those temporaries cause
            # is the dominant journaling cost once fsyncs are batched.
            raw = arr.data
            length = len(header) + arr.nbytes
            buf = self._buffer.data
            buf += _FRAME_HEADER.pack(length, crc32(raw, crc32(header)))
            buf += header
            buf += raw
            return self._after_append(op, seq, length + _FRAME_HEADER.size)
        return self._append_payload(op, seq, header + arr.tobytes())

    def _append_payload(self, op: str, seq: int, payload: bytes) -> int:
        frame = _FRAME_HEADER.pack(len(payload), crc32(payload)) + payload
        tracer = get_tracer()
        if tracer.enabled:  # even the no-op span costs ~1.3µs/append
            with tracer.span("wal.append", op=op):
                faults.fault_write(self._buffer, frame, "wal.append")
        else:
            faults.fault_write(self._buffer, frame, "wal.append")
        return self._after_append(op, seq, len(frame))

    def _after_append(self, op: str, seq: int, frame_bytes: int) -> int:
        """Bookkeeping shared by both append paths, post buffer write."""
        if len(self._buffer.data) >= _SPILL_BYTES:
            self._spill()
        self.last_seq = seq
        self._pending += 1
        # metric flushing (counters and the pending gauge alike) is
        # deferred to the fsync cadence: registry updates per append
        # are measurable against the insert-path budget
        self._lazy_appends[op] = self._lazy_appends.get(op, 0) + 1
        self._lazy_bytes += frame_bytes
        if self._pending >= self.fsync_batch:
            self.sync()
        return seq

    def _spill(self) -> None:
        """Write the in-memory append buffer through to the file."""
        if self._buffer.data:
            self._file.write(bytes(self._buffer.data))
            self._buffer.data.clear()
            # gauge granularity is the spill/fsync boundary, not the
            # individual append — sampling between batches undercounts
            # by at most fsync_batch - 1 records
            self._m_pending.set(self._pending)

    def sync(self) -> None:
        """fsync the active generation; acknowledges every append so far."""
        if self._file is None:
            return
        self._spill()
        self._file.flush()
        faults.fault_point("wal.sync")
        os.fsync(self._file.fileno())
        self.synced_seq = self.last_seq
        self._pending = 0
        self._m_fsyncs.inc()
        self._m_pending.set(0)
        if self._lazy_appends:
            for op, count in self._lazy_appends.items():
                self._m_appends.inc(count, op=op)
            self._m_bytes.inc(self._lazy_bytes)
            self._lazy_appends = {}
            self._lazy_bytes = 0

    # -- lifecycle ------------------------------------------------------

    def rotate(self) -> None:
        """Start a new generation file (called at segment seal)."""
        self.sync()
        self._file.close()
        self._open_generation()
        get_registry().counter(
            "sts3_wal_rotations_total", "WAL generation rotations"
        ).inc()

    def checkpoint(self) -> int:
        """Drop generations made redundant by a successful archive save.

        Rotates first, so the whole pre-checkpoint log is in retired
        generations, then unlinks them.  Returns the number of files
        removed.  Call only *after* the archive covering ``last_seq``
        is durably on disk — :func:`~repro.core.persistence.save_database`
        does this automatically for a database with an attached WAL.
        """
        self.rotate()
        removed = 0
        for path in _generation_files(self.directory):
            if path != self.path:
                path.unlink()
                removed += 1
        _fsync_directory(self.directory)
        self.checkpoint_seq = self.last_seq
        get_registry().counter(
            "sts3_wal_checkpoints_total", "WAL checkpoints (retired generations)"
        ).inc()
        return removed

    @property
    def records_since_checkpoint(self) -> int:
        """Records journaled past the last archive (crash replay debt)."""
        return self.last_seq - self.checkpoint_seq


# -- replay -------------------------------------------------------------


@dataclass
class ReplayReport:
    """What :func:`replay_wal` (or :func:`scan_wal`) found on disk."""

    records: int = 0
    files: int = 0
    last_seq: int = 0
    truncated_bytes: int = 0
    truncated_file: str | None = None
    dropped_files: list[str] = field(default_factory=list)
    problems: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when every frame of every generation parsed and chained."""
        return not self.problems


def _scan_file(path: Path, expect_seq: int | None) -> tuple[list[dict], int, str | None]:
    """Parse one generation file.

    Returns ``(records, good_bytes, problem)`` where ``good_bytes`` is
    the offset of the first bad byte (file length when clean) and
    ``problem`` describes why parsing stopped (None when clean).
    ``expect_seq`` is the seq the next record must carry (None = accept
    whatever comes first).
    """
    data = path.read_bytes()
    if data[: len(MAGIC)] != MAGIC:
        return [], 0, f"{path.name}: bad or missing magic"
    records: list[dict] = []
    offset = len(MAGIC)
    while offset < len(data):
        if offset + _FRAME_HEADER.size > len(data):
            return records, offset, f"{path.name}: torn frame header at byte {offset}"
        length, checksum = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            return records, offset, f"{path.name}: torn payload at byte {offset}"
        if crc32(payload) != checksum:
            return records, offset, f"{path.name}: CRC mismatch at byte {offset}"
        if payload[:1] == b"\x00":
            # binary series frame: NUL, JSON header, NUL, raw array bytes
            sep = payload.find(b"\x00", 1)
            try:
                if sep < 0:
                    raise ValueError("missing header separator")
                record = json.loads(payload[1:sep].decode())
                record["series"]["raw"] = payload[sep + 1 :]
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                return (
                    records,
                    offset,
                    f"{path.name}: undecodable record at byte {offset}",
                )
        else:
            try:
                record = json.loads(payload.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                return (
                    records,
                    offset,
                    f"{path.name}: undecodable record at byte {offset}",
                )
        seq = record.get("seq")
        if not isinstance(seq, int):
            return records, offset, f"{path.name}: record without seq at byte {offset}"
        if expect_seq is not None and seq != expect_seq:
            return (
                records,
                offset,
                f"{path.name}: sequence gap at byte {offset} "
                f"(expected {expect_seq}, got {seq})",
            )
        records.append(record)
        expect_seq = seq + 1
        offset = start + length
    return records, offset, None


def scan_wal(directory: str | Path) -> tuple[list[dict], ReplayReport]:
    """Read every parseable record without touching the files.

    Parsing stops at the first bad frame (everything after it is
    suspect); the report lists the problem and the generations that
    would be dropped by a truncating :func:`replay_wal`.
    """
    directory = Path(directory)
    report = ReplayReport()
    records: list[dict] = []
    if not directory.is_dir():
        return records, report
    files = _generation_files(directory)
    expect: int | None = None
    for position, path in enumerate(files):
        file_records, good_bytes, problem = _scan_file(path, expect)
        records.extend(file_records)
        report.files += 1
        if problem is not None:
            report.problems.append(problem)
            report.truncated_file = path.name
            report.truncated_bytes = path.stat().st_size - good_bytes
            report.dropped_files = [p.name for p in files[position + 1 :]]
            break
        if file_records:
            expect = file_records[-1]["seq"] + 1
    report.records = len(records)
    report.last_seq = records[-1]["seq"] if records else 0
    return records, report


def replay_wal(
    directory: str | Path, truncate: bool = True
) -> tuple[list[dict], ReplayReport]:
    """Read back every intact record, healing a torn tail.

    With ``truncate=True`` the first bad frame is cut off on disk (the
    file is truncated at the bad offset; a file with corrupt magic is
    removed) and later generations are unlinked, so the log is left in
    the exact state the returned records describe.
    """
    directory = Path(directory)
    with span("wal.replay"):
        records, report = scan_wal(directory)
        if truncate and report.truncated_file is not None:
            bad = directory / report.truncated_file
            keep = bad.stat().st_size - report.truncated_bytes
            if keep <= len(MAGIC):
                bad.unlink()
            else:
                with open(bad, "r+b") as fh:
                    fh.truncate(keep)
                    fh.flush()
                    os.fsync(fh.fileno())
            for name in report.dropped_files:
                (directory / name).unlink(missing_ok=True)
            _fsync_directory(directory)
    registry = get_registry()
    registry.counter(
        "sts3_wal_replayed_records_total", "WAL records read back during replay"
    ).inc(len(records))
    if report.truncated_bytes:
        registry.counter(
            "sts3_wal_truncated_bytes_total", "torn WAL tail bytes discarded"
        ).inc(report.truncated_bytes)
    return records, report


# -- tailing and shipping (docs/replication.md) ---------------------------


class FrameError(ReproError):
    """A shipped WAL frame run failed to parse (torn, corrupt, or gapped)."""


class WalGapError(ReproError):
    """The log no longer holds the next frame a tailer needs.

    Raised when a checkpoint retired generations past a follower's
    watermark: the frames between the watermark and the oldest
    surviving record are gone, so catch-up by shipping is impossible
    and the follower must re-bootstrap from the checkpoint archive.
    """


@dataclass(frozen=True)
class TailBatch:
    """One :meth:`WalTail.poll` result: a contiguous run of raw frames.

    ``blob`` is the concatenated ``[len][crc][payload]`` frames exactly
    as they sit on disk (no magic prefix) — appendable verbatim to a
    follower's mirror log and decodable with :func:`parse_frames`.
    ``count == 0`` means nothing new (``first_seq``/``last_seq`` are 0).
    """

    blob: bytes = b""
    first_seq: int = 0
    last_seq: int = 0
    count: int = 0


def _frame_head(payload: bytes) -> dict | None:
    """The JSON part of one frame payload (None when undecodable)."""
    if payload[:1] == b"\x00":
        sep = payload.find(b"\x00", 1)
        if sep < 0:
            return None
        payload = payload[1:sep]
    try:
        record = json.loads(payload.decode())
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


class WalTail:
    """Incremental reader of a (possibly live) WAL directory.

    The replication shipper (docs/replication.md) holds one tail per
    follower and calls :meth:`poll` after each acknowledged write: the
    tail returns every *intact* frame with ``seq > from_seq`` it has
    not returned before, as raw bytes ready to ship.  Per-file byte
    offsets make polling O(new bytes), not O(log): sealed generations
    cost one ``stat`` each, and only the active generation's tail is
    re-read.

    Torn or in-flight frames at a file tail are left alone — the next
    poll re-reads from the same offset, so a frame that was mid-write
    (or whose writer died) is either picked up complete later or never,
    exactly matching recovery's torn-tail truncation.  A frame that is
    *gone* (its generation retired by a checkpoint the tail never
    caught up to) raises :class:`WalGapError`; the follower behind this
    tail must re-bootstrap from the archive.
    """

    def __init__(self, directory: str | Path, from_seq: int = 0):
        self.directory = Path(directory)
        #: seq of the next frame :meth:`poll` will return.
        self.next_seq = int(from_seq) + 1
        self._offsets: dict[str, int] = {}

    def poll(self) -> TailBatch:
        """All new intact frames since the last poll, in seq order."""
        chunks: list[bytes] = []
        first_seq = 0
        count = 0
        files = _generation_files(self.directory)
        for path in files:
            offset = self._offsets.get(path.name, len(MAGIC))
            try:
                data = path.read_bytes()
            except OSError:
                continue  # racing an unlink; surviving files cover it
            if data[: len(MAGIC)] != MAGIC:
                break  # freshly created, magic not yet flushed
            while offset + _FRAME_HEADER.size <= len(data):
                length, checksum = _FRAME_HEADER.unpack_from(data, offset)
                end = offset + _FRAME_HEADER.size + length
                if end > len(data):
                    break  # torn or in-flight tail; retry next poll
                payload = data[offset + _FRAME_HEADER.size : end]
                if crc32(payload) != checksum:
                    break  # stop at damage, like recovery would
                record = _frame_head(payload)
                seq = record.get("seq") if record else None
                if not isinstance(seq, int):
                    break
                if seq >= self.next_seq:
                    if count == 0:
                        if seq != self.next_seq:
                            raise WalGapError(
                                f"{self.directory}: next frame is seq {seq}, "
                                f"tail needs {self.next_seq} (generations "
                                "retired past the watermark)"
                            )
                        first_seq = seq
                    chunks.append(data[offset:end])
                    count += 1
                    self.next_seq = seq + 1
                offset = end
            self._offsets[path.name] = offset
        live = {path.name for path in files}
        for name in list(self._offsets):
            if name not in live:
                del self._offsets[name]
        return TailBatch(b"".join(chunks), first_seq, self.next_seq - 1, count)


def parse_frames(blob: bytes, expect_seq: int | None = None) -> list[dict]:
    """Decode a shipped frame run back into WAL records.

    The inverse of what :class:`WalTail` produces: ``blob`` is raw
    ``[len][crc][payload]`` frames with no magic prefix.  Every frame
    must be complete, CRC-clean, and — when ``expect_seq`` is given —
    chain contiguously from it; a shipped blob is *not* a crash tail,
    so any damage raises :class:`FrameError` instead of truncating.
    Binary series frames come back with their raw bytes attached under
    ``record["series"]["raw"]``, ready for :func:`decode_series`.
    """
    records: list[dict] = []
    offset = 0
    while offset < len(blob):
        if offset + _FRAME_HEADER.size > len(blob):
            raise FrameError(f"shipped frames torn at byte {offset}")
        length, checksum = _FRAME_HEADER.unpack_from(blob, offset)
        start = offset + _FRAME_HEADER.size
        payload = blob[start : start + length]
        if len(payload) < length:
            raise FrameError(f"shipped frames torn at byte {offset}")
        if crc32(payload) != checksum:
            raise FrameError(f"shipped frame CRC mismatch at byte {offset}")
        if payload[:1] == b"\x00":
            sep = payload.find(b"\x00", 1)
            try:
                if sep < 0:
                    raise ValueError("missing header separator")
                record = json.loads(payload[1:sep].decode())
                record["series"]["raw"] = payload[sep + 1 :]
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                raise FrameError(
                    f"undecodable shipped record at byte {offset}"
                ) from None
        else:
            try:
                record = json.loads(payload.decode())
            except (UnicodeDecodeError, json.JSONDecodeError):
                raise FrameError(
                    f"undecodable shipped record at byte {offset}"
                ) from None
        seq = record.get("seq")
        if not isinstance(seq, int):
            raise FrameError(f"shipped record without seq at byte {offset}")
        if expect_seq is not None and seq != expect_seq:
            raise FrameError(
                f"shipped sequence gap at byte {offset} "
                f"(expected {expect_seq}, got {seq})"
            )
        records.append(record)
        expect_seq = seq + 1
        offset = start + length
    return records


#: sidecar filename inside a follower's mirror WAL directory; records
#: the apply watermark so a restarted follower (and the offline
#: ``sts3 replica-status``) knows where shipping resumes.
APPLIED_SEQ_NAME = "applied.json"


def read_applied_seq(directory: str | Path) -> int | None:
    """The persisted apply watermark of a mirror directory, or None."""
    path = Path(directory) / APPLIED_SEQ_NAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError):
        return None
    seq = payload.get("applied_seq")
    return int(seq) if isinstance(seq, int) else None


def write_applied_seq(directory: str | Path, seq: int) -> None:
    """Atomically persist the apply watermark (temp + rename + fsync).

    Written *after* the shipped records are applied: a crash between
    apply and watermark makes the follower re-request frames it
    already holds in its mirror — harmless, since replay skips records
    at or below the archive seq — whereas the opposite order could
    claim records that were never applied.
    """
    directory = Path(directory)
    path = directory / APPLIED_SEQ_NAME
    tmp = directory / (APPLIED_SEQ_NAME + ".tmp")
    data = json.dumps({"applied_seq": int(seq)}).encode()
    with open(tmp, "wb") as fh:
        fh.write(data)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    _fsync_directory(directory)
