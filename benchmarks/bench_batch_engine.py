"""Benchmark: scalar per-query loop vs the vectorized batch engine.

Measures ``method="index"`` k-NN throughput two ways over the same
workload — a Python loop of scalar :meth:`STS3Database.query` calls,
and one :meth:`STS3Database.query_batch` call through
:class:`repro.core.batch.BatchQueryEngine` — verifies the two return
byte-identical neighbour lists, and records both throughputs in
``BENCH_batch_engine.json`` at the repository root.

It doubles as the observability-overhead guard: the batch run is
repeated with a live :class:`repro.obs.Tracer` installed, the JSON
gains the per-stage (``filter`` / ``refine`` / ``select_topk``)
breakdown of the traced run, and the benchmark fails when tracing
costs more than ``--max-trace-overhead`` (default 5%) over the
untraced run.  A microbenchmark of the disabled (no-op) span path is
also recorded, confirming the always-on instrumentation stays under
2% of scalar query time.

It also measures the insert-heavy path of the segmented storage
engine: flushing a full update buffer seals it as a new segment in
O(buffer) transform work, where the pre-segmented engine re-transformed
the whole database.  The benchmark times a seal (``flush``) against
the equivalent full rebuild (``compact``), verifies through the
``sts3_transforms_total`` counter that the seal did zero transform
work, checks query answers are bit-identical before and after both
operations, and fails when the seal is not at least
``--min-flush-speedup`` times faster than the rebuild.

It also runs a kernel ablation on a dense-overlap workload (small
shared vocabulary, coarse grid): the sparse, dense, and bitset batch
kernels are timed on identical queries, answers are checked
bit-identical, and the run fails when the bitset kernel is not faster
than the sparse kernel (``--min-bitset-speedup`` raises the floor).

Every run additionally *appends* a machine-tagged summary to
``BENCH_trajectory.json`` (``--trajectory``; schema-versioned,
append-only), so performance across PRs stays diffable even though
``BENCH_batch_engine.json`` is overwritten in place.

Run standalone (defaults reproduce the acceptance workload: 10,000
database series, 200 queries, k=10)::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py

or as a CI perf-smoke on a small workload, failing when the batch
engine is slower than the scalar loop, sealing is not faster than
rebuilding, or the bitset kernel loses to sparse::

    PYTHONPATH=src python benchmarks/bench_batch_engine.py \
        --series 1500 --queries 60 --repeats 5 --min-speedup 1.0 \
        --insert-series 1200 --insert-buffer 48 --min-flush-speedup 2.0 \
        --bitset-series 2000 --bitset-queries 48 --min-bitset-speedup 2.0
"""

from __future__ import annotations

import argparse
import gc
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import STS3Database, __version__, aggregate_stats
from repro.bench import run_traced
from repro.core.batch import BatchQueryEngine
from repro.data.workloads import ecg_workload
from repro.obs import span

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_batch_engine.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

#: trajectory schema version — bump only on incompatible entry changes;
#: readers must skip entries with a newer schema than they understand.
TRAJECTORY_SCHEMA = 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--series", type=int, default=10_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--length", type=int, default=256)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=5,
                        help="timed repetitions; best (min) time is recorded")
    parser.add_argument("--min-speedup", type=float, default=None,
                        help="exit non-zero when batch/scalar speedup falls below")
    parser.add_argument("--max-trace-overhead", type=float, default=0.05,
                        help="exit non-zero when enabling tracing slows the "
                             "batch run by more than this fraction "
                             "(negative disables the guard)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--insert-series", type=int, default=4000,
                        help="database size for the insert-heavy workload")
    parser.add_argument("--insert-buffer", type=int, default=64,
                        help="buffered inserts sealed per flush")
    parser.add_argument("--min-flush-speedup", type=float, default=None,
                        help="exit non-zero when sealing a buffer is not at "
                             "least this many times faster than the "
                             "equivalent full rebuild (compact)")
    parser.add_argument("--bitset-series", type=int, default=4000,
                        help="database size for the dense-overlap kernel "
                             "ablation")
    parser.add_argument("--bitset-queries", type=int, default=64,
                        help="query batch size for the kernel ablation")
    parser.add_argument("--min-bitset-speedup", type=float, default=None,
                        help="exit non-zero when the bitset kernel is not at "
                             "least this many times faster than the sparse "
                             "kernel on the dense-overlap workload")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def _neighbor_lists(results):
    return [[(n.index, n.similarity) for n in r.neighbors] for r in results]


def _noop_span_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled (no-op) span enter/exit pair."""
    start = time.perf_counter()
    for _ in range(iterations):
        with span("noop_probe"):
            pass
    return (time.perf_counter() - start) / iterations


def run_insert_workload(args: argparse.Namespace) -> dict:
    """Time sealing a full buffer (flush) against a full rebuild (compact).

    Before the segmented engine a flush re-transformed every stored
    series; ``compact()`` still does exactly that work (it re-derives
    the bound and rebuilds one merged segment), so flush-vs-compact is
    a like-for-like O(buffer) vs O(database) comparison on identical
    state.  Answers are checked bit-identical across buffered → sealed
    → compacted, and the ``sts3_transforms_total`` counter proves the
    seal performed zero transform work.
    """
    from repro.obs import MetricsRegistry, get_registry, set_registry

    n, b = args.insert_series, args.insert_buffer
    print(
        f"insert workload: {n} series, sealing {b}-element buffers "
        f"({args.repeats} repeats)",
        flush=True,
    )
    previous = set_registry(MetricsRegistry())
    try:
        rng = np.random.default_rng(args.seed)
        base = [rng.normal(size=args.length) for _ in range(n)]
        queries = [rng.normal(size=args.length) for _ in range(3)]
        db = STS3Database(
            base, sigma=args.sigma, epsilon=args.epsilon,
            normalize=False, buffer_capacity=b + 1,
        )
        transforms = get_registry().counter("sts3_transforms_total")

        def _total_transforms():
            return sum(
                transforms.value(context=c)
                for c in ("build", "buffer", "extend", "compact", "load")
            )

        def _answers():
            return [
                [(nb.index, nb.similarity) for nb in
                 db.query(q, k=args.k, method="index").neighbors]
                for q in queries
            ]

        flush_best = rebuild_best = float("inf")
        flush_transforms = 0.0
        identical = True
        spike = 100.0
        for _ in range(args.repeats):
            for _ in range(b):
                series = rng.normal(size=args.length)
                series[int(rng.integers(0, args.length))] = spike
                spike += 10.0  # always breaks even the grown bound
                db.insert(series)
            assert len(db.buffer) == b, "inserts flushed early"
            buffered = _answers()

            before = _total_transforms()
            start = time.perf_counter()
            db.flush()
            flush_best = min(flush_best, time.perf_counter() - start)
            flush_transforms = _total_transforms() - before

            identical = identical and _answers() == buffered

            start = time.perf_counter()
            db.compact()
            rebuild_best = min(rebuild_best, time.perf_counter() - start)
            identical = identical and _answers() == buffered
        rebuild_transforms = transforms.value(context="compact") / args.repeats
    finally:
        set_registry(previous)

    speedup = rebuild_best / flush_best
    record = {
        "n_series": n,
        "buffer": b,
        "flush": {
            "seconds": round(flush_best, 6),
            "transforms": flush_transforms,
        },
        "full_rebuild": {
            "seconds": round(rebuild_best, 6),
            "transforms_per_rebuild": rebuild_transforms,
        },
        "flush_speedup": round(speedup, 3),
        "identical_neighbor_lists": identical,
    }
    print(
        f"seal (flush): {flush_best * 1e3:8.2f} ms "
        f"({flush_transforms:.0f} transforms)"
    )
    print(
        f"full rebuild: {rebuild_best * 1e3:8.2f} ms "
        f"(~{rebuild_transforms:.0f} transforms)"
    )
    print(f"seal speedup: {speedup:.1f}x   identical={identical}")
    return record


def run_bitset_ablation(args: argparse.Namespace) -> dict:
    """Time the three batch kernels on a dense-overlap workload.

    Short windows under a coarse grid (``sigma=8, epsilon=2.0``) give a
    ~50-cell vocabulary that every series shares, so the sparse
    kernel's gathered-pair count approaches ``n_queries × total
    postings`` while the whole database packs into one uint64 word per
    series — the regime the bitset kernel exists for.  Answers are
    checked bit-identical across all three kernels; the recorded
    ``bitset_speedup`` (sparse/bitset) backs the CI floor.
    """
    n, q = args.bitset_series, args.bitset_queries
    print(
        f"kernel ablation: {n} series x {q} queries, dense-overlap grid "
        f"({args.repeats} repeats)",
        flush=True,
    )
    workload = ecg_workload(n, q, 64, seed=args.seed)
    db = STS3Database(workload.database, sigma=8, epsilon=2.0)
    searcher = db.indexed_searcher()
    query_sets = [db.transform_query(series) for series in workload.queries]

    timings: dict[str, float] = {}
    answers: dict[str, list] = {}
    for kernel in ("sparse", "dense", "bitset"):
        engine = BatchQueryEngine(searcher, kernel=kernel)
        answers[kernel] = _neighbor_lists(engine.query_batch(query_sets, k=args.k))
        best = float("inf")
        for _ in range(args.repeats):
            start = time.perf_counter()
            engine.query_batch(query_sets, k=args.k)
            best = min(best, time.perf_counter() - start)
        timings[kernel] = best
    auto_engine = BatchQueryEngine(searcher, kernel="auto")
    auto_engine.query_batch(query_sets, k=args.k)

    identical = (
        answers["sparse"] == answers["dense"] == answers["bitset"]
    )
    speedup = timings["sparse"] / timings["bitset"]
    record = {
        "n_series": n,
        "n_queries": q,
        "distinct_cells": int(np.unique(searcher._cells).size),
        "kernels_seconds": {k: round(v, 6) for k, v in timings.items()},
        "auto_selected": auto_engine.last_kernels[:1],
        "bitset_speedup": round(speedup, 3),
        "identical_neighbor_lists": identical,
    }
    for kernel, seconds in timings.items():
        print(f"{kernel:>7} kernel: {seconds * 1e3:8.2f} ms")
    print(
        f"bitset vs sparse: {speedup:.1f}x   identical={identical}   "
        f"auto={record['auto_selected']}"
    )
    return record


def append_trajectory(record: dict, path: Path) -> None:
    """Append this run to the machine-tagged trajectory history.

    The file holds ``{"schema": N, "runs": [...]}`` and is append-only:
    entries are never rewritten, so perf across PRs is diffable.  A
    missing or unreadable file starts a fresh history (the trajectory
    must never block a benchmark run).
    """
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    entry = {
        "schema": TRAJECTORY_SCHEMA,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": record["workload"],
        "summary": {
            "batch_speedup": record["speedup"],
            "batch_queries_per_second":
                record["batch_engine"]["queries_per_second"],
            "flush_speedup": record["insert_workload"]["flush_speedup"],
            "bitset_speedup": record["bitset_ablation"]["bitset_speedup"],
            "bitset_kernels_seconds":
                record["bitset_ablation"]["kernels_seconds"],
            "trace_overhead": record["traced_run"]["overhead_vs_untraced"],
        },
    }
    history["runs"].append(entry)
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended run {len(history['runs'])} to {path}")


def run(args: argparse.Namespace) -> dict:
    print(
        f"workload: {args.series} ECG series x {args.queries} queries, "
        f"length {args.length}, sigma={args.sigma}, epsilon={args.epsilon}, "
        f"k={args.k}",
        flush=True,
    )
    workload = ecg_workload(args.series, args.queries, args.length, seed=args.seed)
    db = STS3Database(workload.database, sigma=args.sigma, epsilon=args.epsilon)
    db.indexed_searcher()  # build outside the timed region

    # Warm both paths: first calls fault in index pages, build the
    # dense one-hot matrix, and grow the reusable workspace.
    db.query(workload.queries[0], k=args.k, method="index")
    db.query_batch(workload.queries[: min(8, args.queries)], k=args.k, method="index")

    # The traced-vs-untraced comparison resolves a ~5% effect, so both
    # sides must see the same noise environment: gc is disabled for the
    # timed region (a collection landing in one loop but not the other
    # once produced a -6% "overhead"), and the scalar, untraced-batch,
    # and traced-batch variants are interleaved inside ONE best-of-N
    # loop so slow drift (page cache, thermal) hits all three equally.
    scalar_best = batch_best = traced_best = float("inf")
    scalar_results = batch_results = traced_results = None
    traced_stages: dict = {}
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(args.repeats):
            start = time.perf_counter()
            scalar_results = [
                db.query(q, k=args.k, method="index") for q in workload.queries
            ]
            scalar_best = min(scalar_best, time.perf_counter() - start)

            start = time.perf_counter()
            batch_results = db.query_batch(
                workload.queries, k=args.k, method="index"
            )
            batch_best = min(batch_best, time.perf_counter() - start)

            start = time.perf_counter()
            results, stages = run_traced(
                lambda: db.query_batch(workload.queries, k=args.k, method="index")
            )
            elapsed = time.perf_counter() - start
            if elapsed < traced_best:
                traced_best = elapsed
                traced_results, traced_stages = results, stages
    finally:
        if gc_was_enabled:
            gc.enable()

    identical = _neighbor_lists(scalar_results) == _neighbor_lists(batch_results)
    traced_identical = _neighbor_lists(traced_results) == _neighbor_lists(batch_results)
    speedup = scalar_best / batch_best
    # Tracing can only add work; a measured negative overhead is pure
    # noise.  The floored value is what the gate and trajectory use, the
    # raw value is kept so a too-noisy run (strongly negative) can FAIL
    # the guard instead of silently passing it.
    raw_trace_overhead = traced_best / batch_best - 1.0
    trace_overhead = max(raw_trace_overhead, 0.0)
    noop = _noop_span_cost()
    # The scalar path enters ~7 no-op spans per query; estimate their
    # share of untraced per-query time (the tentpole's <2% claim).
    spans_per_query = 7
    noop_fraction = (spans_per_query * noop) / (scalar_best / args.queries)
    stats = aggregate_stats(batch_results)
    engine = db.batch_engine()

    record = {
        "benchmark": "batch_engine",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "method": "index",
        },
        "repeats": args.repeats,
        "scalar_loop": {
            "seconds": round(scalar_best, 6),
            "queries_per_second": round(args.queries / scalar_best, 2),
        },
        "batch_engine": {
            "seconds": round(batch_best, 6),
            "queries_per_second": round(args.queries / batch_best, 2),
            "kernels": engine.last_kernels,
            "workspace_bytes": engine.workspace.nbytes,
        },
        "traced_run": {
            "seconds": round(traced_best, 6),
            "overhead_vs_untraced": round(trace_overhead, 4),
            "raw_overhead_vs_untraced": round(raw_trace_overhead, 4),
            "stages_seconds": {
                name: round(seconds, 6)
                for name, seconds in traced_stages.items()
            },
            "identical_neighbor_lists": traced_identical,
        },
        "noop_span": {
            "seconds_per_span": round(noop, 9),
            "estimated_scalar_query_fraction": round(noop_fraction, 5),
        },
        "speedup": round(speedup, 3),
        "identical_neighbor_lists": identical,
        "aggregate_stats": {
            "candidates": stats.candidates,
            "exact_computations": stats.exact_computations,
            "pruned": stats.pruned,
        },
    }

    print(
        f"scalar loop : {scalar_best * 1e3:8.1f} ms "
        f"({record['scalar_loop']['queries_per_second']:8.1f} q/s)"
    )
    print(
        f"batch engine: {batch_best * 1e3:8.1f} ms "
        f"({record['batch_engine']['queries_per_second']:8.1f} q/s)  "
        f"kernels={engine.last_kernels}"
    )
    print(f"speedup     : {speedup:.2f}x   identical={identical}")
    stage_text = "  ".join(
        f"{name}={seconds * 1e3:.1f}ms" for name, seconds in traced_stages.items()
    )
    print(
        f"traced      : {traced_best * 1e3:8.1f} ms "
        f"(+{trace_overhead:.1%} vs untraced, raw "
        f"{raw_trace_overhead:+.1%})  {stage_text}"
    )
    print(
        f"noop spans  : {noop * 1e9:8.1f} ns/span "
        f"(~{noop_fraction:.2%} of scalar query time)"
    )
    record["insert_workload"] = run_insert_workload(args)
    record["bitset_ablation"] = run_bitset_ablation(args)
    return record


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    record = run(args)

    if str(args.output) != "-":
        args.output.write_text(json.dumps(record, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args.trajectory)

    if not record["identical_neighbor_lists"]:
        print("FAIL: batch engine returned different neighbours", file=sys.stderr)
        return 1
    if not record["traced_run"]["identical_neighbor_lists"]:
        print("FAIL: traced run returned different neighbours", file=sys.stderr)
        return 1
    if args.min_speedup is not None and record["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {record['speedup']:.2f}x below required "
            f"{args.min_speedup:.2f}x",
            file=sys.stderr,
        )
        return 1
    overhead = record["traced_run"]["overhead_vs_untraced"]
    raw_overhead = record["traced_run"]["raw_overhead_vs_untraced"]
    if args.max_trace_overhead >= 0:
        if overhead > args.max_trace_overhead:
            print(
                f"FAIL: tracing overhead {overhead:.1%} exceeds "
                f"{args.max_trace_overhead:.1%}",
                file=sys.stderr,
            )
            return 1
        if raw_overhead < -args.max_trace_overhead:
            # A traced run this much *faster* than untraced means the
            # measurement is noise — the guard proved nothing.
            print(
                f"FAIL: raw tracing overhead {raw_overhead:.1%} is below "
                f"-{args.max_trace_overhead:.1%}; the comparison is too "
                "noisy to trust",
                file=sys.stderr,
            )
            return 1
    insert = record["insert_workload"]
    if not insert["identical_neighbor_lists"]:
        print(
            "FAIL: answers changed across flush/compact in the insert workload",
            file=sys.stderr,
        )
        return 1
    if insert["flush_speedup"] <= 1.0:
        print(
            f"FAIL: sealing a buffer ({insert['flush']['seconds']}s) was not "
            f"faster than a full rebuild ({insert['full_rebuild']['seconds']}s)",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_flush_speedup is not None
        and insert["flush_speedup"] < args.min_flush_speedup
    ):
        print(
            f"FAIL: flush speedup {insert['flush_speedup']:.1f}x below "
            f"required {args.min_flush_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    ablation = record["bitset_ablation"]
    if not ablation["identical_neighbor_lists"]:
        print(
            "FAIL: kernels disagreed on the dense-overlap workload",
            file=sys.stderr,
        )
        return 1
    if ablation["bitset_speedup"] <= 1.0:
        print(
            f"FAIL: bitset kernel "
            f"({ablation['kernels_seconds']['bitset']}s) was not faster "
            f"than sparse ({ablation['kernels_seconds']['sparse']}s) on "
            f"the dense-overlap workload",
            file=sys.stderr,
        )
        return 1
    if (
        args.min_bitset_speedup is not None
        and ablation["bitset_speedup"] < args.min_bitset_speedup
    ):
        print(
            f"FAIL: bitset speedup {ablation['bitset_speedup']:.1f}x below "
            f"required {args.min_bitset_speedup:.1f}x",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
