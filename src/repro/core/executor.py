"""Shared thread pool for parallel segment execution (DESIGN.md §13).

The planner's unit of parallel work is one :class:`SegmentPlan` (or one
shard of a batch): independent numpy sweeps — popcount, GEMM,
``searchsorted`` — that release the GIL, so *threads* scale them across
cores without the pickling and copy-on-write costs of the
process-based ``query_batch(workers=N)`` path.  An
:class:`ExecutorPool` wraps one lazily-created
:class:`~concurrent.futures.ThreadPoolExecutor` per worker count and is
shared process-wide (:func:`get_pool`): pools are tiny, and sharing
keeps thread churn off the per-query path.

Determinism: :meth:`ExecutorPool.map_ordered` returns results in
submission order regardless of completion order, which is what lets the
planner keep its bit-identical ``(similarity desc, index asc)`` merge —
parallelism changes *when* a segment answer is computed, never how
answers combine.

``resolve_workers`` is the single knob-decoding point: ``None`` → 1
(serial — the default, so single-threaded callers and deterministic
tests see byte-identical behaviour), ``0`` → one worker per CPU, any
other value is used as-is.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import ThreadPoolExecutor

__all__ = ["ExecutorPool", "get_pool", "resolve_workers"]


def resolve_workers(max_workers: int | None) -> int:
    """Decode the ``max_workers`` knob into a concrete worker count."""
    if max_workers is None:
        return 1
    workers = int(max_workers)
    if workers == 0:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"max_workers must be >= 0 or None, got {max_workers}")
    return workers


class ExecutorPool:
    """A named, lazily-started thread pool with ordered fan-out.

    Threads are created on first use and reused for the life of the
    process (``ThreadPoolExecutor`` joins them at interpreter exit).
    The pool is safe to share between databases: tasks carry their own
    state and the planner gives each worker thread its own workspace.
    """

    def __init__(self, max_workers: int):
        if max_workers < 1:
            raise ValueError(f"ExecutorPool needs >= 1 worker, got {max_workers}")
        self.max_workers = int(max_workers)
        self._executor: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()

    def _ensure(self) -> ThreadPoolExecutor:
        if self._executor is None:
            with self._lock:
                if self._executor is None:
                    self._executor = ThreadPoolExecutor(
                        max_workers=self.max_workers,
                        thread_name_prefix="sts3-exec",
                    )
        return self._executor

    def map_ordered(self, fn, items) -> list:
        """Run ``fn(item)`` for every item; results in submission order.

        Exceptions propagate from the first failing item (in submission
        order), matching what a plain loop would raise.
        """
        executor = self._ensure()
        futures = [executor.submit(fn, item) for item in items]
        return [future.result() for future in futures]

    def shutdown(self) -> None:
        """Join the worker threads (tests; production pools live on)."""
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True)
                self._executor = None


_pools: dict[int, ExecutorPool] = {}
_pools_lock = threading.Lock()


def get_pool(max_workers: int) -> ExecutorPool:
    """The process-wide shared pool for ``max_workers`` threads."""
    max_workers = int(max_workers)
    with _pools_lock:
        pool = _pools.get(max_workers)
        if pool is None:
            pool = _pools[max_workers] = ExecutorPool(max_workers)
        return pool
