"""Deterministic fault injection for the durability layer.

The crash-recovery test suite (``tests/core/test_crash_recovery.py``)
needs to kill the database at *every* point where a write could tear,
and needs the same fault to happen on every run — flaky crash tests
are worse than none.  This module provides that determinism:

- A :class:`FaultPlan` is a list of :class:`Fault` specs, each naming
  an **injection point** (a string like ``"wal.append"`` or
  ``"persist.payload.write"``), a fault ``kind``, and which call at
  that point should trigger (``hit``, 1-based).  Everything random —
  where a torn write cuts, which bit flips — comes from a seeded
  :class:`random.Random`, never the wall clock.
- Durability-layer code marks its I/O through :func:`fault_write`
  (writes that can tear or flip) and :func:`fault_point` (fsync,
  rename, read — operations that can only fail or stall).  With no
  plan installed both are straight pass-throughs.
- Tests install a plan with :func:`inject`::

      plan = FaultPlan([Fault("wal.sync", "crash", hit=2)], seed=7)
      with faults.inject(plan):
          ...            # second fsync raises SimulatedCrash

Fault kinds:

``crash``
    Raise :class:`SimulatedCrash` *before* the operation — the process
    "died" and nothing was written.
``torn``
    Write a strict prefix of the data (seeded cut point), then raise
    :class:`SimulatedCrash` — the classic torn write.
``bitflip``
    Flip one seeded bit of the data, write it, and carry on — silent
    media corruption, caught later by checksums.
``enospc``
    Raise ``OSError(ENOSPC)`` — the disk filled up.  Retryable, so
    the persistence backoff loop sees it.
``slow``
    Record a simulated delay on the plan's virtual clock (no real
    sleeping) and proceed — lets deadline/degradation tests advance
    time deterministically.

The plan also exposes :meth:`FaultPlan.sleep` and
:meth:`FaultPlan.time`, a virtual clock the persistence retry loop
uses instead of ``time.sleep``/``time.monotonic`` while a plan is
installed, so backoff tests run in microseconds.

Beyond the durability layer, the multi-process engines mark their
hazard windows the same way: ``shard.worker.request`` (a worker dies
serving a request — the injected ``kill -9``), and the replication
triad of docs/replication.md — ``replication.ship`` (supervisor-side,
a crash kind stands in for a network partition to one follower),
``replication.apply`` (a follower dies mid-apply), and
``replication.promote`` (a promotion aborts mid-flight and the
supervisor falls back to restart-from-archive).
"""

from __future__ import annotations

import errno
import random
from contextlib import contextmanager
from dataclasses import dataclass, field

__all__ = [
    "Fault",
    "FaultPlan",
    "SimulatedCrash",
    "fault_point",
    "fault_write",
    "get_plan",
    "inject",
]


class SimulatedCrash(RuntimeError):
    """The injected process death.

    Deliberately *not* an ``OSError``: retry loops must never swallow a
    crash — it propagates to the test harness, which then recovers the
    database from disk and checks the durability contract.
    """


@dataclass(frozen=True)
class Fault:
    """One planned failure: ``kind`` at the ``hit``-th call of ``point``."""

    point: str
    kind: str  # crash | torn | bitflip | enospc | slow
    hit: int = 1
    repeat: bool = False  # keep firing on every call at/after ``hit``
    delay: float = 0.05  # virtual seconds, only for kind="slow"

    _KINDS = ("crash", "torn", "bitflip", "enospc", "slow")

    def __post_init__(self):
        if self.kind not in self._KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; one of {self._KINDS}")
        if self.hit < 1:
            raise ValueError(f"hit is 1-based, got {self.hit}")


@dataclass
class FaultPlan:
    """A seeded schedule of faults plus a virtual clock.

    ``hits`` counts calls per injection point (useful to enumerate the
    points a scenario actually exercises); ``triggered`` logs every
    fault that fired as ``(point, kind, call_number)``.
    """

    faults: list[Fault] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self):
        self.faults = list(self.faults)
        self.rng = random.Random(self.seed)
        self.hits: dict[str, int] = {}
        self.triggered: list[tuple[str, str, int]] = []
        self._now = 0.0

    # -- virtual clock --------------------------------------------------

    def time(self) -> float:
        """Virtual monotonic seconds (advanced by ``sleep`` and slow faults)."""
        return self._now

    def sleep(self, seconds: float) -> None:
        """Advance the virtual clock; never blocks."""
        self._now += max(0.0, float(seconds))

    # -- firing ---------------------------------------------------------

    def _match(self, point: str) -> Fault | None:
        count = self.hits.get(point, 0) + 1
        self.hits[point] = count
        for fault in self.faults:
            if fault.point != point:
                continue
            if count == fault.hit or (fault.repeat and count >= fault.hit):
                self.triggered.append((point, fault.kind, count))
                return fault
        return None

    def check(self, point: str) -> None:
        """Non-write injection point: crash, ENOSPC, or slow only."""
        fault = self._match(point)
        if fault is None:
            return
        if fault.kind == "slow":
            self.sleep(fault.delay)
            return
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {point}")
        # torn/bitflip make no sense without data; treat as a crash so a
        # mis-specified plan still kills the process instead of passing.
        raise SimulatedCrash(f"injected crash at {point}")

    def write(self, fileobj, data: bytes, point: str) -> None:
        """Write ``data`` through the plan's fault semantics."""
        fault = self._match(point)
        if fault is None:
            fileobj.write(data)
            return
        if fault.kind == "crash":
            raise SimulatedCrash(f"injected crash before write at {point}")
        if fault.kind == "enospc":
            raise OSError(errno.ENOSPC, f"injected ENOSPC at {point}")
        if fault.kind == "slow":
            self.sleep(fault.delay)
            fileobj.write(data)
            return
        if fault.kind == "torn":
            cut = self.rng.randrange(0, len(data)) if data else 0
            fileobj.write(data[:cut])
            fileobj.flush()
            raise SimulatedCrash(
                f"injected torn write at {point} ({cut}/{len(data)} bytes)"
            )
        # bitflip: corrupt one seeded bit, write the lot, carry on.
        if data:
            flipped = bytearray(data)
            position = self.rng.randrange(0, len(flipped))
            flipped[position] ^= 1 << self.rng.randrange(0, 8)
            data = bytes(flipped)
        fileobj.write(data)


#: the installed plan (module-global: the durability layer is
#: single-process, and tests install/uninstall around each scenario).
_active: FaultPlan | None = None


def get_plan() -> FaultPlan | None:
    """The currently installed plan, or None (production)."""
    return _active


@contextmanager
def inject(plan: FaultPlan):
    """Install ``plan`` for the duration of the block."""
    global _active
    previous = _active
    _active = plan
    try:
        yield plan
    finally:
        _active = previous


def fault_point(point: str) -> None:
    """Mark a non-write injection point (fsync, rename, read, ...)."""
    if _active is not None:
        _active.check(point)


def fault_write(fileobj, data: bytes, point: str) -> None:
    """Write ``data`` to ``fileobj``, subject to the installed plan."""
    if _active is None:
        fileobj.write(data)
    else:
        _active.write(fileobj, data, point)
