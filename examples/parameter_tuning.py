"""Parameter determination walk-through (Section 6.3).

Shows how the three STS3 knobs are chosen from data:

1. σ and ε — grid search on a class-balanced half-split of TRAIN,
   scored by 1-NN error (Table 5 ranges, subsampled).
2. ``scale`` for the pruning-based variant — pick the value with the
   best measured speed-up on a handful of sample queries.
3. ``maxScale`` for the approximate variant — same, with the error/
   speed trade-off printed alongside.

Run with::

    python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import STS3Database, tune_max_scale, tune_scale, tune_sigma_epsilon
from repro.core.tuning import sts3_error_rate
from repro.data import ecg_stream, make_workload
from repro.data.ucr_like import smooth_outlines


def tune_cells() -> None:
    print("=== 1. cell sizes (sigma, epsilon) ===")
    ds = smooth_outlines(
        n_classes=4, n_train_per_class=12, n_test_per_class=12, length=128, seed=1
    )
    result = tune_sigma_epsilon(
        ds.train,
        sigma_grid=[1, 2, 4, 8, 16, 32],
        epsilon_grid=[0.05, 0.1, 0.2, 0.4, 0.8],
    )
    print(f"best: sigma={result.sigma}, epsilon={result.epsilon} "
          f"(validation error {result.error:.3f})")
    test_error = sts3_error_rate(ds.train, ds.test, result.sigma, result.epsilon)
    print(f"TEST error with tuned parameters: {test_error:.3f}")

    print("\nerror as sigma varies (epsilon fixed at the optimum):")
    for sigma, error in result.error_curve("sigma"):
        bar = "#" * int(error * 40)
        print(f"  sigma={sigma:>3}: {error:.3f} {bar}")


def tune_scales() -> None:
    print("\n=== 2. pruning scale and approximate maxScale ===")
    stream = ecg_stream(320 * 256, seed=2)
    workload = make_workload(stream, n_series=300, n_queries=10, length=256)
    db = STS3Database(workload.database, sigma=3, epsilon=0.5)

    scale_result = tune_scale(db, workload.queries, scales=[2, 5, 10, 20, 40])
    print("pruning scale  -> speed-up over naive")
    for scale, speedup in sorted(scale_result.curve.items()):
        print(f"  scale={scale:>3}: {speedup:.2f}x")
    print(f"chosen scale: {scale_result.best}")

    max_scale_result = tune_max_scale(db, workload.queries, max_scales=[2, 3, 4, 5])
    print("\napproximate maxScale -> speed-up over naive")
    for max_scale, speedup in sorted(max_scale_result.curve.items()):
        print(f"  maxScale={max_scale}: {speedup:.2f}x")
    print(f"chosen maxScale: {max_scale_result.best}")


def main() -> None:
    tune_cells()
    tune_scales()


if __name__ == "__main__":
    main()
