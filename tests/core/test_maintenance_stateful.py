"""Hypothesis stateful test of background maintenance against an oracle.

The rule machine drives a WAL-attached database through interleaved
inserts, flushes, background tier merges, evictions, and hard crashes —
including crashes injected *inside* the merge protocol (after the WAL
journal, before the catalog swap, after the swap) — checking after
every step that nothing acknowledged is lost and k-NN answers stay
bit-identical to a layout-aware reference computed fresh from the live
segments (each segment's own grid, DESIGN.md §15).

This hunts for the interleavings example-based tests can't reach:
merge-then-insert-then-crash replay determinism (segment IDs must be
reallocated identically), eviction racing materialization, snapshot
pins held across merges, and WAL sequence accounting when merges and
inserts share the log.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import STS3Database, faults
from repro.core import (
    MaintenanceConfig,
    MaintenanceEngine,
    WriteAheadLog,
    default_wal_dir,
    plan_merge,
    recover_database,
    save_database,
)
from repro.core.jaccard import jaccard

LENGTH = 24

CONFIG = MaintenanceConfig(max_segments=2, tier_base=4, fanout=2)
EVICT_CONFIG = MaintenanceConfig(memory_budget_bytes=1, fanout=64)

MERGE_POINTS = [
    "maintenance.merge.journal",
    "maintenance.merge.publish",
    "maintenance.merge.done",
]


def _series(rng_seed: int, spike: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    out = rng.normal(size=LENGTH)
    if spike:
        out[int(rng.integers(0, LENGTH))] = spike
    return out


class MaintenanceMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**20))
    def build(self, seed):
        self.seed = seed
        self.next_spike = 50.0
        self.tmp = Path(tempfile.mkdtemp(prefix="sts3-maintenance-"))
        self.path = self.tmp / "db.sts3"
        base = [_series(seed + i) for i in range(4)]
        self.db = STS3Database(
            base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=3,
            cache_bytes=1 << 20,
        )
        self.db.attach_wal(
            WriteAheadLog(default_wal_dir(self.path), fsync_batch=1)
        )
        save_database(self.db, self.path)
        self.model = list(self.db.series)

    def teardown(self):
        if getattr(self, "db", None) is not None:
            self.db.close()
        shutil.rmtree(self.tmp, ignore_errors=True)

    # -- mutations ------------------------------------------------------

    @rule(offset=st.integers(0, 1000))
    def insert_in_bound(self, offset):
        series = 0.5 * _series(self.seed + 10_000 + offset)
        series = np.clip(
            series, self.db.grid.bound.x_min[0], self.db.grid.bound.x_max[0]
        )
        self.db.insert(series)
        self.model.append(series)

    @rule(offset=st.integers(0, 1000))
    def insert_out_of_bound(self, offset):
        self.next_spike += 10.0  # always breaks even an expanded bound
        series = _series(self.seed + 20_000 + offset, spike=self.next_spike)
        self.db.insert(series)
        self.model.append(series)

    @rule()
    def flush(self):
        self.db.flush()

    # -- maintenance ----------------------------------------------------

    @rule()
    def background_merge(self):
        """Run the engine to the tier fixpoint; answers must survive."""
        engine = MaintenanceEngine(self.db, CONFIG)
        engine.run_until_idle()
        assert plan_merge(self.db.catalog.segments, CONFIG) is None

    @rule()
    def merge_under_reader_pin(self):
        """A pinned snapshot keeps its segment set across a merge."""
        snapshot = self.db.catalog.pin()
        layout = [len(seg) for seg in snapshot.segments]
        try:
            MaintenanceEngine(self.db, CONFIG).run_until_idle()
            assert [len(seg) for seg in snapshot.segments] == layout
        finally:
            self.db.catalog.release(snapshot)
        assert self.db.catalog.pinned_snapshots() == 0

    @rule()
    def evict(self):
        """Release every releasable payload; answers must survive."""
        MaintenanceEngine(self.db, EVICT_CONFIG).run_pending()

    # -- crashes --------------------------------------------------------

    @rule()
    def crash_and_recover(self):
        """Abandon the live process image; rebuild from archive + WAL."""
        self._crash()

    @rule(point=st.sampled_from(MERGE_POINTS))
    def crash_during_merge(self, point):
        """Die inside the merge protocol; recovery must be exact.

        Crashing after the journal means replay finishes the merge;
        crashing before it means the merge never happened.  Either way
        no series may be lost and nothing may quarantine.
        """
        window = plan_merge(self.db.catalog.segments, CONFIG)
        if window is None:
            return  # at fixpoint: nothing to interrupt
        plan = faults.FaultPlan([faults.Fault(point, "crash")])
        try:
            with faults.inject(plan):
                self.db.merge_run(*window)
        except faults.SimulatedCrash:
            pass
        self._crash()

    def _crash(self):
        abandoned = self.db
        self.db = None
        # no close(), no final sync — the "process" just died.  Only the
        # file handle is dropped so the machine doesn't leak fds.
        if abandoned.wal is not None and abandoned.wal._file is not None:
            abandoned.wal._file.close()
            abandoned.wal._file = None
        self.db = recover_database(self.path, fsync_batch=1,
                                   cache_bytes=1 << 20)

    @rule()
    def checkpoint(self):
        """A successful save retires the WAL; recovery must still work."""
        save_database(self.db, self.path)
        assert self.db.wal.records_since_checkpoint == 0

    # -- invariants -----------------------------------------------------

    @invariant()
    def nothing_acknowledged_is_lost(self):
        assert len(self.db) == len(self.model)
        assert not self.db.catalog.quarantined

    @invariant()
    def internals_consistent(self):
        assert self.db.verify_integrity() == []

    @invariant()
    def no_leaked_snapshot_pins(self):
        assert self.db.catalog.pinned_snapshots() == 0

    # -- oracle queries -------------------------------------------------

    @rule(offset=st.integers(0, 1000), k=st.integers(1, 4))
    def query_matches_model(self, offset, k):
        """Exact answers match a fresh layout-aware reference."""
        from repro.core.setrep import transform_query

        query = _series(self.seed + 30_000 + offset)
        result = self.db.query(query, k=k, method="index")
        sims = []
        for segment in self.db.catalog.segments:
            segment_q = transform_query(query, segment.grid)
            sims += [jaccard(s, segment_q) for s in segment.sets]
        buffer_q = transform_query(query, self.db.buffer.grid)
        sims += [jaccard(s, buffer_q) for s in self.db.buffer.sets]
        expected = sorted(
            ((sim, i) for i, sim in enumerate(sims)), key=lambda t: (-t[0], t[1])
        )[: min(k, len(sims))]
        got = [(n.similarity, n.index) for n in result.neighbors]
        assert [round(s, 12) for s, _ in got] == [round(s, 12) for s, _ in expected]
        assert [i for _, i in got] == [i for _, i in expected]

    @rule(offset=st.integers(0, 1000))
    def query_self_found(self, offset):
        """Every series ever acknowledged is still its own best match."""
        index = offset % len(self.model)
        result = self.db.query(self.model[index], k=1, method="naive")
        assert result.best.similarity == 1.0


TestMaintenanceStateful = MaintenanceMachine.TestCase
TestMaintenanceStateful.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)
