"""Piecewise Aggregate Approximation (PAA) — Keogh et al. 2000.

PAA divides a series into ``segments`` equal-width frames and replaces
each frame by its mean — the simplest of the representation methods the
paper surveys in Section 8.1.  The frame means define a reduced series
whose (scaled) Euclidean distance lower-bounds the true ED, so a PAA
pre-filter can prune an ED k-NN scan exactly.

Included to complete the related-work family: STS3 is itself a
representation method, and PAA is the canonical representation
baseline it is implicitly positioned against.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["paa_transform", "paa_distance", "PAAFilter"]


def paa_transform(series: np.ndarray, segments: int) -> np.ndarray:
    """Mean of each of ``segments`` equal-width frames.

    When the length is not divisible by ``segments``, boundary samples
    contribute fractionally to both adjacent frames (the standard
    continuous-frame definition), so the transform is exact for any
    length.
    """
    if segments < 1:
        raise ParameterError(f"segments must be >= 1, got {segments}")
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ParameterError("PAA is implemented for 1-D series")
    n = len(series)
    if n == 0:
        raise ParameterError("cannot transform an empty series")
    if segments >= n:
        return series.copy()
    if n % segments == 0:
        return series.reshape(segments, n // segments).mean(axis=1)
    # fractional frames: integrate the step function over each frame
    edges = np.linspace(0, n, segments + 1)
    cumulative = np.concatenate(([0.0], np.cumsum(series)))

    def integral(x: float) -> float:
        whole = int(np.floor(x))
        frac = x - whole
        value = cumulative[whole]
        if frac > 0 and whole < n:
            value += frac * series[whole]
        return value

    means = np.empty(segments)
    for k in range(segments):
        means[k] = (integral(edges[k + 1]) - integral(edges[k])) / (
            edges[k + 1] - edges[k]
        )
    return means


def paa_distance(paa_a: np.ndarray, paa_b: np.ndarray, original_length: int) -> float:
    """Lower bound on ED from two PAA vectors of the same resolution.

    ``sqrt(n/M) · ||ā − b̄||`` where ``M`` is the segment count — the
    classic PAA lower-bounding distance (tight for frame-constant
    series, admissible always).
    """
    if paa_a.shape != paa_b.shape:
        raise ParameterError("PAA vectors must share a resolution")
    segments = len(paa_a)
    diff = paa_a - paa_b
    return float(np.sqrt(original_length / segments) * np.sqrt(np.dot(diff, diff)))


class PAAFilter:
    """Exact ED nearest-neighbour search with a PAA pre-filter.

    Database PAA vectors are precomputed; per query the PAA lower
    bounds of all candidates are evaluated vectorized, candidates are
    visited best-bound-first, and the scan stops once the next bound
    exceeds the best exact distance found — the standard
    lower-bounding search, guaranteed exact.
    """

    def __init__(self, database: list[np.ndarray], segments: int = 16):
        if not database:
            raise ParameterError("cannot search an empty database")
        self.database = database
        self.segments = segments
        self.length = len(database[0])
        if any(len(s) != self.length for s in database):
            raise ParameterError("PAAFilter requires equal-length series")
        self.paa = np.stack([paa_transform(s, segments) for s in database])
        self.stats = {"exact_computed": 0, "pruned": 0}

    def nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Index and exact ED of the nearest database series."""
        if len(query) != self.length:
            raise ParameterError("query length differs from the database")
        q_paa = paa_transform(query, self.segments)
        diff = self.paa - q_paa
        bounds = np.sqrt(self.length / self.segments) * np.sqrt(
            np.einsum("ij,ij->i", diff, diff)
        )
        order = np.argsort(bounds, kind="stable")
        best_index = -1
        best_distance = np.inf
        for position, index in enumerate(order):
            if bounds[index] >= best_distance:
                self.stats["pruned"] += len(order) - position
                break
            candidate = self.database[index]
            gap = query - candidate
            distance = float(np.sqrt(np.dot(gap, gap)))
            self.stats["exact_computed"] += 1
            if distance < best_distance:
                best_distance = distance
                best_index = int(index)
        return best_index, best_distance
