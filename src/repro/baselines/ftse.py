"""FTSE-style fast exact LCSS evaluation (Morse & Patel, SIGMOD 2007).

FTSE ("Fast Time Series Evaluation") accelerates ε-matching measures by
first *finding the matching point pairs with a grid* instead of testing
every (i, j) cell of the dynamic program.  The value axis is bucketed
into ε-wide bins; a point of one series can only match points of the
other series in its own or adjacent bins, so match lists are built in
near-linear time.  The measure is then computed from the match lists
alone.

LCSS over an arbitrary match relation equals the longest chain of
matches strictly increasing in both coordinates, so the second phase is
a patience-sorting longest-increasing-subsequence over the match pairs
ordered by (i ascending, j descending) — O(r·log n) for r matches,
exactly the intersection-list flavour of the original algorithm.  The
result is **exact**: the test suite cross-checks it against the full
dynamic program of :mod:`repro.baselines.lcss` on random inputs.
"""

from __future__ import annotations

from bisect import bisect_left

import numpy as np

from ..exceptions import ParameterError

__all__ = ["match_lists", "ftse_lcss_length", "ftse_lcss_similarity", "ftse_lcss_distance"]


def match_lists(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
    delta: int | None = None,
) -> list[np.ndarray]:
    """For each index ``i`` of ``a``, the matching indices ``j`` of ``b``.

    Grid phase of FTSE: bucket ``b`` by value into ε-wide bins, then
    probe each ``a[i]`` against its bin and the two neighbours, keeping
    pairs within ``epsilon`` in value and ``delta`` in position.
    Returned index arrays are sorted ascending.
    """
    if epsilon < 0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon}")
    if delta is not None and delta < 0:
        raise ParameterError(f"delta must be >= 0, got {delta}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ParameterError("FTSE is implemented for 1-D series")

    # Bucket width: ε, floored so that (value − origin) / width stays
    # finite (subnormal ε would overflow to inf) and so that the bucket
    # count stays O(|b|).  A wider bucket only admits extra candidates,
    # which the exact ε test below filters out — correctness is
    # unaffected.
    span = float(b.max() - b.min()) if len(b) else 0.0
    bin_width = max(epsilon, span / (4 * len(b) + 1) if len(b) else 0.0, 1e-12)
    origin = float(b.min()) if len(b) else 0.0
    buckets: dict[int, list[int]] = {}
    for j, value in enumerate(b.tolist()):
        buckets.setdefault(int((value - origin) // bin_width), []).append(j)

    out: list[np.ndarray] = []
    for i, value in enumerate(a.tolist()):
        # Probe every bucket [value−ε, value+ε] can touch, padded by 2:
        # both this quotient and the bucketing of b round at bucket
        # boundaries, and each rounding can displace a point one bucket
        # (e.g. origin 7e-250 puts value 0.0 in bucket −1 while 1.0−ε
        # rounds up a bucket).  Extra candidates are harmless — the
        # exact ε test below filters them.
        lo = int((value - epsilon - origin) // bin_width) - 2
        hi = int((value + epsilon - origin) // bin_width) + 2
        candidates: list[int] = []
        for bucket in range(lo, hi + 1):
            candidates.extend(buckets.get(bucket, ()))
        if not candidates:
            out.append(np.empty(0, dtype=np.int64))
            continue
        js = np.asarray(sorted(candidates), dtype=np.int64)
        keep = np.abs(b[js] - value) <= epsilon
        if delta is not None:
            keep &= np.abs(js - i) <= delta
        out.append(js[keep])
    return out


def ftse_lcss_length(
    a: np.ndarray,
    b: np.ndarray,
    epsilon: float,
    delta: int | None = None,
) -> int:
    """Exact LCSS length computed from grid-built match lists.

    Patience phase: walk ``i`` in order, offering each matching ``j``
    in *descending* order (so multiple matches of one ``i`` cannot
    chain with each other), and maintain ``tails[k]`` = smallest ``j``
    ending an increasing chain of length ``k+1``.
    """
    lists = match_lists(a, b, epsilon, delta)
    tails: list[int] = []
    for js in lists:
        for j in js[::-1].tolist():
            pos = bisect_left(tails, j)
            if pos == len(tails):
                tails.append(j)
            else:
                tails[pos] = j
    return len(tails)


def ftse_lcss_similarity(
    a: np.ndarray, b: np.ndarray, epsilon: float, delta: int | None = None
) -> float:
    """``LCSS / min(|a|, |b|)`` via the FTSE evaluation."""
    n, m = len(a), len(b)
    if min(n, m) == 0:
        return 0.0
    return ftse_lcss_length(a, b, epsilon, delta) / min(n, m)


def ftse_lcss_distance(
    a: np.ndarray, b: np.ndarray, epsilon: float, delta: int | None = None
) -> float:
    """``1 − ftse_lcss_similarity``; smaller means more similar."""
    return 1.0 - ftse_lcss_similarity(a, b, epsilon, delta)
