"""Internals of the approximate searcher: dense vs sparse coarse levels."""

import numpy as np
import pytest

from repro.core import approximate as approx_mod
from repro.core.approximate import ApproximateSearcher, _CoarseLevel
from repro.core.grid import Bound, Grid
from repro.core.setrep import transform


@pytest.fixture
def data():
    rng = np.random.default_rng(0)
    series = [rng.normal(size=48) for _ in range(25)]
    bound = Bound.of_database(series)
    grid = Grid.from_cell_sizes(bound, 2, 0.4)
    sets = [transform(s, grid) for s in series]
    return series, sets, bound


class TestCoarseLevel:
    def test_dense_by_default(self, data):
        series, _, bound = data
        level = _CoarseLevel(Grid.from_resolution(bound, 4), series)
        assert level.dense
        # 25 series over a <=16-cell vocabulary pack into one uint64 word.
        assert level.store.matrix.shape == (25, 1)

    def test_matrix_rows_match_sets(self, data):
        series, _, bound = data
        grid = Grid.from_resolution(bound, 5)
        level = _CoarseLevel(grid, series)
        assert level.store.verify_against([transform(s, grid) for s in series]) == []
        for i, s in enumerate(series):
            expected = transform(s, grid)
            # Unpack row i: set bit columns map back to vocabulary cells.
            row = level.store.matrix[i]
            cols = [
                w * 64 + b
                for w in range(row.size)
                for b in range(64)
                if (int(row[w]) >> b) & 1
            ]
            assert np.array_equal(level.store.vocab[cols], expected)

    def test_similarities_match_direct(self, data):
        from repro.core.jaccard import jaccard

        series, _, bound = data
        grid = Grid.from_resolution(bound, 4)
        level = _CoarseLevel(grid, series)
        query_rep = transform(series[7], grid)
        candidates = np.arange(len(series))
        sims = level.similarities(candidates, query_rep)
        for i in range(len(series)):
            assert sims[i] == pytest.approx(jaccard(transform(series[i], grid), query_rep))


class TestSparseFallback:
    def test_sparse_path_equals_dense(self, data, monkeypatch):
        """Force the sparse fallback and check identical answers."""
        series, sets, bound = data
        dense_searcher = ApproximateSearcher(series, sets, bound, max_scale=4)
        monkeypatch.setattr(approx_mod, "_DENSE_CELL_LIMIT", 0)
        sparse_searcher = ApproximateSearcher(series, sets, bound, max_scale=4)
        assert not sparse_searcher.levels[2].dense
        rng = np.random.default_rng(1)
        for _ in range(4):
            query = rng.normal(size=48)
            grid = Grid.from_cell_sizes(bound, 2, 0.4)
            query_set = transform(query, grid)
            a = dense_searcher.query(query, query_set, k=3)
            b = sparse_searcher.query(query, query_set, k=3)
            assert a.indices() == b.indices()
            assert a.similarities() == pytest.approx(b.similarities())


class TestRefinementSelection:
    """The O(n) top-k refinement must match an exhaustive reference.

    The refinement stage ranks filter survivors with
    ``selection.top_k_indices`` instead of a heap; parity here means the
    same neighbours in the same order under the repo-wide
    ``(similarity desc, database index asc)`` tie-break.
    """

    @pytest.mark.parametrize("k", [1, 3, 10, 50])
    def test_matches_exhaustive_reference(self, data, k):
        from repro.core.jaccard import jaccard

        series, sets, bound = data
        searcher = ApproximateSearcher(series, sets, bound, max_scale=4)
        grid = Grid.from_cell_sizes(bound, 2, 0.4)
        rng = np.random.default_rng(2)
        for trial in range(5):
            query = series[trial] if trial < 2 else rng.normal(size=48)
            query_set = transform(query, grid)
            result = searcher.query(query, query_set, k=k)
            # Reference: exhaustively rank the SAME survivors the filter
            # kept, with an explicit stable sort.
            survivors, _ = searcher.filter_candidates(query, k=k)
            ranked = sorted(
                ((jaccard(sets[i], query_set), int(i)) for i in survivors),
                key=lambda t: (-t[0], t[1]),
            )[: min(k, len(survivors))]
            got = [(n.similarity, n.index) for n in result.neighbors]
            assert got == ranked

    def test_duplicate_similarities_prefer_smaller_index(self, data):
        series, _, bound = data
        # Duplicate every series so exact ties are guaranteed.
        doubled = series + [s.copy() for s in series]
        grid = Grid.from_cell_sizes(Bound.of_database(doubled), 2, 0.4)
        doubled_sets = [transform(s, grid) for s in doubled]
        searcher = ApproximateSearcher(
            doubled, doubled_sets, Bound.of_database(doubled), max_scale=4
        )
        result = searcher.query(doubled[3], doubled_sets[3], k=2)
        sims = [n.similarity for n in result.neighbors]
        indices = [n.index for n in result.neighbors]
        assert sims[0] == 1.0
        # the twin pair (3, 28) ties at 1.0; smaller index first
        assert indices[0] == 3
        assert sims == sorted(sims, reverse=True)
