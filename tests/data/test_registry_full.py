"""Smoke tests: every registry entry builds and has the declared shape."""

import pytest

from repro.data.registry import _SPECS, dataset_names, load_dataset, paper_workload


@pytest.mark.parametrize("name", dataset_names())
def test_every_dataset_builds(name):
    spec = _SPECS[name]
    ds = load_dataset(name, scale=0.02, seed=0)
    assert ds.length == spec.length
    assert ds.n_classes <= spec.n_classes  # tiny scales may drop classes
    assert len(ds.train) >= 2
    assert len(ds.test) >= 2


@pytest.mark.parametrize("name", ["50words", "Computers", "Phoneme", "yoga"])
def test_new_rows_reach_searchers(name):
    """Each scenario family must survive a full search round-trip."""
    from repro import STS3Database

    wl = paper_workload(name, scale=0.01, seed=1)
    db = STS3Database(wl.database, sigma=3, epsilon=0.5)
    result = db.query(wl.queries[0], k=1, method="index")
    assert 0 <= result.best.index < len(wl.database)


def test_class_count_preserved_at_scale():
    """At reasonable scales the class structure must be intact."""
    ds = load_dataset("SwedishLeaf", scale=0.2, seed=0)
    assert ds.n_classes == 15
