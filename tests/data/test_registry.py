"""Tests for the named-dataset registry."""

import pytest

from repro.data.registry import dataset_names, load_dataset, paper_workload
from repro.exceptions import DatasetError, ParameterError


class TestRegistry:
    def test_known_names(self):
        names = dataset_names()
        for expected in ("CBF", "CET", "ED", "CC", "NIFE", "Device"):
            assert expected in names

    def test_unknown_name_raises(self):
        with pytest.raises(DatasetError):
            load_dataset("NoSuchDataset")

    def test_scale_must_be_positive(self):
        with pytest.raises(ParameterError):
            load_dataset("CBF", scale=0)

    def test_cbf_shape_at_small_scale(self):
        ds = load_dataset("CBF", scale=0.05, seed=0)
        assert ds.length == 128
        assert ds.n_classes == 3

    def test_scaling_changes_counts_not_length(self):
        small = load_dataset("CBF", scale=0.02, seed=0)
        large = load_dataset("CBF", scale=0.1, seed=0)
        assert small.length == large.length
        assert len(large.train) > len(small.train)

    def test_ed_has_seven_classes(self):
        ds = load_dataset("ED", scale=0.01, seed=0)
        assert ds.n_classes == 7
        assert ds.length == 96

    def test_cet_is_long(self):
        ds = load_dataset("CET", scale=0.005, seed=0)
        assert ds.length == 1639


class TestPaperWorkload:
    def test_smaller_part_is_query(self):
        wl = paper_workload("CBF", scale=0.05, seed=0)
        assert len(wl.queries) <= len(wl.database)
        assert wl.name == "CBF"

    def test_lengths_match(self):
        wl = paper_workload("CC", scale=0.02, seed=0)
        assert all(len(s) == wl.length for s in wl.database)
        assert all(len(q) == wl.length for q in wl.queries)
