"""Parameter determination for STS3 (paper Section 6.3, Table 5).

Three knobs need data-driven values:

- ``sigma`` / ``epsilon`` (cell sizes): chosen by grid search on a
  labeled training set, scored by 1-NN classification error.  The
  paper splits TRAIN in two class-balanced halves, classifies one half
  against the other for each parameter combination, and keeps the most
  accurate combination (Section 7.2.2).
- ``scale`` (pruning zones): "some queries are processed and the one
  returning maximal acceleration ratio is chosen", with candidate
  scales from 2 to √(series length).
- ``maxScale`` (approximate filtering): chosen to balance speed-up and
  approximation error; "a maxScale of 2 to 5 was usually enough".
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from ..exceptions import ParameterError
from ..types import LabeledDataset
from .database import STS3Database

__all__ = [
    "TuningResult",
    "default_sigma_grid",
    "default_epsilon_grid",
    "sts3_error_rate",
    "tune_sigma_epsilon",
    "tune_sigma_epsilon_unlabeled",
    "ScaleTuningResult",
    "tune_scale",
    "tune_max_scale",
]


def default_sigma_grid(series_length: int, max_points: int = 10) -> list[int]:
    """Candidate time-axis cell widths: 1 … 0.3·n (Table 5).

    The paper's step size of 1 over that range is exhaustive; by
    default we geometrically subsample to ``max_points`` values, which
    covers the same range at a fraction of the cost.  Callers wanting
    the paper's full grid pass ``max_points=None``.
    """
    upper = max(1, int(0.3 * series_length))
    if max_points is None or upper <= max_points:
        return list(range(1, upper + 1))
    geo = np.unique(
        np.round(np.geomspace(1, upper, max_points)).astype(int)
    )
    return geo.tolist()


def default_epsilon_grid(max_points: int = 10) -> list[float]:
    """Candidate value-axis cell heights: 0.02 … 1 (Table 5).

    Subsampled to ``max_points`` evenly spaced values by default; pass
    ``max_points=None`` for the paper's full 0.02-stepped grid.
    """
    if max_points is None:
        return [round(0.02 * i, 2) for i in range(1, 51)]
    return [round(v, 3) for v in np.linspace(0.02, 1.0, max_points)]


def sts3_error_rate(
    train: LabeledDataset,
    test: LabeledDataset,
    sigma: float,
    epsilon: float,
    method: str = "index",
) -> float:
    """1-NN classification error of STS3 with the given cell sizes.

    Each test series is classified by the label of its most
    Jaccard-similar training series (the paper's accuracy protocol,
    Section 7.2.2).
    """
    db = STS3Database(list(train.series), sigma=sigma, epsilon=epsilon)
    labels = train.labels
    wrong = 0
    for series, label in test:
        result = db.query(series, k=1, method=method)
        if int(labels[result.best.index]) != label:
            wrong += 1
    return wrong / len(test)


@dataclass
class TuningResult:
    """Outcome of a σ/ε grid search."""

    sigma: int
    epsilon: float
    error: float
    #: (sigma, epsilon) → validation error for every combination tried.
    table: dict[tuple[float, float], float] = field(default_factory=dict)

    def error_curve(self, vary: str) -> list[tuple[float, float]]:
        """Error as a function of one parameter, the other held at best.

        ``vary`` is ``"sigma"`` or ``"epsilon"``; used by the Figure 4
        benchmarks ("we fix the σ as the parameter bringing optimal
        accuracy and then vary ε", Section 7.3.1).
        """
        if vary == "sigma":
            pairs = [(s, e) for (s, e) in self.table if e == self.epsilon]
        elif vary == "epsilon":
            pairs = [(s, e) for (s, e) in self.table if s == self.sigma]
        else:
            raise ParameterError(f"vary must be 'sigma' or 'epsilon', got {vary!r}")
        axis = 0 if vary == "sigma" else 1
        return sorted((p[axis], self.table[p]) for p in pairs)


def tune_sigma_epsilon(
    train: LabeledDataset,
    sigma_grid: list[int] | None = None,
    epsilon_grid: list[float] | None = None,
    seed: int = 0,
) -> TuningResult:
    """Grid-search σ and ε on a class-balanced half-split of ``train``.

    Returns the combination minimizing validation error (ties broken
    toward smaller cells, i.e. the first minimum in grid order).
    """
    if len(train) < 2:
        raise ParameterError("need at least 2 training series to tune")
    reference, validation = train.split_half(seed=seed)
    if len(reference) == 0 or len(validation) == 0:
        raise ParameterError("training set too small for a half split")
    n = len(train.series[0])
    sigma_grid = sigma_grid or default_sigma_grid(n)
    epsilon_grid = epsilon_grid or default_epsilon_grid()

    best: tuple[float, int, float] | None = None
    table: dict[tuple[float, float], float] = {}
    for sigma in sigma_grid:
        for epsilon in epsilon_grid:
            error = sts3_error_rate(reference, validation, sigma, epsilon)
            table[(sigma, epsilon)] = error
            if best is None or error < best[0]:
                best = (error, sigma, epsilon)
    error, sigma, epsilon = best
    return TuningResult(sigma=sigma, epsilon=epsilon, error=error, table=table)


def tune_sigma_epsilon_unlabeled(
    series: list[np.ndarray],
    n_clusters: int,
    sigma_grid: list[int] | None = None,
    epsilon_grid: list[float] | None = None,
    seed: int = 0,
) -> TuningResult:
    """Tune σ/ε without labels, via clustering pseudo-labels.

    Section 6.3: when no manual labels exist, "time series clustering
    algorithms ... can be used to label the data".  The series are
    k-medoids-clustered under the Jaccard distance of a fine grid, the
    cluster assignments become labels, and the ordinary grid search
    runs on them.
    """
    from ..types import LabeledDataset
    from .clustering import cluster_series

    if len(series) < 4:
        raise ParameterError("need at least 4 series to cluster and tune")
    labels = cluster_series(series, n_clusters, seed=seed)
    train = LabeledDataset(series=list(series), labels=labels, name="clustered")
    return tune_sigma_epsilon(
        train, sigma_grid=sigma_grid, epsilon_grid=epsilon_grid, seed=seed
    )


@dataclass
class ScaleTuningResult:
    """Outcome of a scale/maxScale sweep on sample queries."""

    best: int
    speedup: float
    #: parameter value → speed-up over the naive scan.
    curve: dict[int, float] = field(default_factory=dict)


def _timed_queries(run, queries: list[np.ndarray], k: int) -> float:
    start = time.perf_counter()
    for q in queries:
        run(q, k)
    return time.perf_counter() - start


def tune_scale(
    db: STS3Database,
    queries: list[np.ndarray],
    scales: list[int] | None = None,
    k: int = 1,
) -> ScaleTuningResult:
    """Pick the pruning ``scale`` with maximal speed-up over naive.

    Candidate scales default to a spread of 2 … √(series length)
    (Section 6.3).  Speed-up is wall-clock naive time over pruned time
    on the provided sample queries.
    """
    if scales is None:
        upper = max(2, int(np.sqrt(len(db.series[0]))))
        scales = sorted(set(np.linspace(2, upper, num=min(6, upper - 1)).astype(int).tolist()))
    naive_time = _timed_queries(
        lambda q, kk: db.query(q, k=kk, method="naive"), queries, k
    )
    curve: dict[int, float] = {}
    for scale in scales:
        db.pruning_searcher(scale)  # build outside the timed region
        t = _timed_queries(
            lambda q, kk: db.query(q, k=kk, method="pruning", scale=scale),
            queries,
            k,
        )
        curve[scale] = naive_time / t if t > 0 else float("inf")
    best = max(curve, key=curve.get)
    return ScaleTuningResult(best=best, speedup=curve[best], curve=curve)


def tune_max_scale(
    db: STS3Database,
    queries: list[np.ndarray],
    max_scales: list[int] | None = None,
    k: int = 1,
) -> ScaleTuningResult:
    """Pick the approximate ``maxScale`` with maximal speed-up.

    The paper notes 2-5 usually suffices; the error-rate trade-off is
    reported separately by the Figure 5(e-f) benchmark.
    """
    max_scales = max_scales or [2, 3, 4, 5]
    naive_time = _timed_queries(
        lambda q, kk: db.query(q, k=kk, method="naive"), queries, k
    )
    curve: dict[int, float] = {}
    for max_scale in max_scales:
        db.approximate_searcher(max_scale)  # build offline, untimed
        t = _timed_queries(
            lambda q, kk: db.query(q, k=kk, method="approximate", max_scale=max_scale),
            queries,
            k,
        )
        curve[max_scale] = naive_time / t if t > 0 else float("inf")
    best = max(curve, key=curve.get)
    return ScaleTuningResult(best=best, speedup=curve[best], curve=curve)
