"""Cross-variant integration tests: the exact STS3 variants must agree.

The paper's index-based and pruning-based algorithms are exact — they
return the same k-NN answers as the naive scan — while the approximate
algorithm may miss but always returns valid, exactly-scored answers.
These tests hammer that contract on randomized workloads, including
k-NN (k > 1), ties, and degenerate inputs.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import STS3Database
from repro.core import NaiveSearcher
from repro.core.jaccard import jaccard


def _random_db(seed, n=30, length=48, **kwargs):
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=length) for _ in range(n)]
    defaults = dict(sigma=2, epsilon=0.5)
    defaults.update(kwargs)
    return STS3Database(series, **defaults), rng


class TestExactEquivalence:
    @given(seed=st.integers(0, 10_000), k=st.integers(1, 8))
    @settings(max_examples=15)
    def test_index_and_pruning_match_naive(self, seed, k):
        db, rng = _random_db(seed)
        query = rng.normal(size=48)
        naive = db.query(query, k=k, method="naive")
        index = db.query(query, k=k, method="index")
        pruning = db.query(query, k=k, method="pruning")
        assert index.indices() == naive.indices()
        assert pruning.indices() == naive.indices()
        assert np.allclose(index.similarities(), naive.similarities())
        assert np.allclose(pruning.similarities(), naive.similarities())

    @given(scale=st.integers(1, 12))
    @settings(max_examples=10)
    def test_pruning_exact_for_every_scale(self, scale):
        db, rng = _random_db(99)
        query = rng.normal(size=48)
        naive = db.query(query, k=3, method="naive")
        pruned = db.query(query, k=3, method="pruning", scale=scale)
        assert pruned.indices() == naive.indices()

    def test_equivalence_with_duplicated_series(self):
        """Exact duplicates create similarity ties; tie-breaking by
        index must make all exact variants agree."""
        rng = np.random.default_rng(5)
        base = [rng.normal(size=32) for _ in range(10)]
        series = base + [base[2].copy(), base[7].copy()]
        db = STS3Database(series, sigma=2, epsilon=0.5)
        query = base[2]
        results = [db.query(query, k=4, method=m) for m in ("naive", "index", "pruning")]
        for r in results[1:]:
            assert r.indices() == results[0].indices()
        assert results[0].best.index == 2  # smallest index among the tie

    def test_single_series_database(self):
        db = STS3Database([np.sin(np.linspace(0, 5, 32))], sigma=2, epsilon=0.5)
        query = np.cos(np.linspace(0, 5, 32))
        for method in ("naive", "index", "pruning", "approximate"):
            result = db.query(query, k=1, method=method)
            assert result.best.index == 0


class TestApproximateContract:
    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_approximate_never_beats_exact(self, seed):
        """The approximate answer's similarity is at most the true NN's."""
        db, rng = _random_db(seed)
        query = rng.normal(size=48)
        exact = db.query(query, k=1, method="naive")
        approx = db.query(query, k=1, method="approximate")
        assert approx.best.similarity <= exact.best.similarity + 1e-12

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=10)
    def test_approximate_scores_are_exact_jaccard(self, seed):
        db, rng = _random_db(seed)
        query = rng.normal(size=48)
        query_set = db.transform_query(query)
        approx = db.query(query, k=3, method="approximate")
        for n in approx.neighbors:
            assert n.similarity == pytest.approx(jaccard(db.sets[n.index], query_set))


class TestKnnSemantics:
    def test_knn_is_prefix_consistent(self):
        """The top-j of a k-NN answer equals the j-NN answer (j <= k)."""
        db, rng = _random_db(7, n=50)
        query = rng.normal(size=48)
        big = db.query(query, k=10, method="naive")
        for j in (1, 3, 7):
            small = db.query(query, k=j, method="naive")
            assert small.indices() == big.indices()[:j]

    def test_similarities_non_increasing(self):
        db, rng = _random_db(8, n=50)
        query = rng.normal(size=48)
        for method in ("naive", "index", "pruning", "approximate"):
            sims = db.query(query, k=10, method=method).similarities()
            assert all(a >= b for a, b in zip(sims, sims[1:]))

    def test_naive_searcher_order_independent(self):
        """Shuffling the database permutes indices but not the returned
        similarity multiset."""
        rng = np.random.default_rng(3)
        sets = [np.unique(rng.integers(0, 100, size=20)) for _ in range(25)]
        query = np.unique(rng.integers(0, 100, size=20))
        forward = NaiveSearcher(sets).query(query, k=5)
        perm = rng.permutation(25)
        shuffled = NaiveSearcher([sets[i] for i in perm]).query(query, k=5)
        assert sorted(forward.similarities()) == pytest.approx(
            sorted(shuffled.similarities())
        )
