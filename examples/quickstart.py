"""Quickstart: build an STS3 database and answer k-NN queries.

Run with::

    python examples/quickstart.py

Demonstrates the 60-second path through the library: synthesize a long
ECG-like stream, slice it into a database of z-normalized windows, and
answer k-NN queries with each STS3 variant, comparing their answers and
the amount of work they did.
"""

from __future__ import annotations

from repro import STS3Database
from repro.data import ecg_stream, make_workload


def main() -> None:
    # 1. A long source signal (stand-in for a real ECG recording).
    stream = ecg_stream(300 * 256, seed=42)

    # 2. The paper's workload protocol: consecutive z-normalized slices.
    workload = make_workload(stream, n_series=280, n_queries=5, length=256)

    # 3. Build the database.  sigma = time-axis cell width (samples),
    #    epsilon = value-axis cell height (z-units).
    db = STS3Database(workload.database, sigma=3, epsilon=0.5)

    # 4. Query with each variant.
    query = workload.queries[0]
    print(f"database: {len(db)} series of length {workload.length}\n")
    for method in ("naive", "index", "pruning", "approximate"):
        result = db.query(query, k=3, method=method)
        answers = ", ".join(
            f"#{n.index} (J={n.similarity:.3f})" for n in result.neighbors
        )
        print(
            f"{method:>12}: {answers}   "
            f"[exact Jaccard computations: {result.stats.exact_computations}, "
            f"pruned: {result.stats.pruned}]"
        )

    # 5. The 'auto' method picks a variant from the series length.
    result = db.query(query, k=1)
    print(f"\nauto-dispatched nearest neighbour: #{result.best.index}")


if __name__ == "__main__":
    main()
