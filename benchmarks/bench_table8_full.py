"""Table 8 (Appendix B.2) — the broad accuracy sweep.

The paper's Table 8 reports 1-NN error of ED, DTW, and STS3 across the
whole UCR archive.  This bench runs the same protocol over every
registry stand-in whose scenario family matches a Table 8 row, with
STS3's σ/ε tuned on a training half-split per dataset.  DTW is included
for short series only (its O(n·ω) cost at lengths ≥ 700 would dominate
the whole suite — the exact pathology the paper is about).

Shape to reproduce: STS3 tracks ED closely across the board, beats it
on device/shape scenarios, and trails DTW on noisy ones.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import error_rate, measures, sakoe_chiba_window
from repro.bench import render_table, repro_scale
from repro.core.tuning import sts3_error_rate, tune_sigma_epsilon
from repro.data.registry import load_dataset

DATASETS = [
    "50words",
    "Adiac",
    "Beef",
    "CBF",
    "Computers",
    "ECG200",
    "ECG5000",
    "FISH",
    "Herring",
    "LargeKitchenAppliances",
    "RefrigerationDevices",
    "ScreenType",
    "ShapesAll",
    "SmallKitchenAppliances",
    "SwedishLeaf",
    "synthetic_control",
    "Two_Patterns",
]

#: DTW is only evaluated below this length (cost control; see module doc).
DTW_LENGTH_CAP = 512

EPSILON_GRID = [0.1, 0.3, 0.6, 1.0]


def _sigma_grid(length: int) -> list[int]:
    upper = max(2, int(0.3 * length))
    return sorted({1, 2, max(2, upper // 8), max(3, upper // 3), upper})


@pytest.fixture(scope="module")
def experiment(report):
    scale = min(repro_scale(), 0.1)
    test_cap = max(8, round(150 * scale))
    rows = []
    wins = {"ed": 0, "sts3": 0, "tie": 0}
    for name in DATASETS:
        ds = load_dataset(name, scale=scale, seed=0)
        test = ds.test.subset(range(min(len(ds.test), test_cap)))
        ed_err = error_rate(ds.train, test, measures.ed())
        if ds.length <= DTW_LENGTH_CAP:
            window = sakoe_chiba_window(ds.length, 0.1)
            dtw_err = error_rate(ds.train, test, measures.dtw(window=window))
        else:
            dtw_err = float("nan")
        tuned = tune_sigma_epsilon(
            ds.train,
            sigma_grid=_sigma_grid(ds.length),
            epsilon_grid=EPSILON_GRID,
        )
        sts3_err = sts3_error_rate(ds.train, test, tuned.sigma, tuned.epsilon)
        rows.append(
            [name, ds.length, ds.n_classes, ed_err, dtw_err, sts3_err,
             tuned.sigma, tuned.epsilon]
        )
        if sts3_err < ed_err - 1e-12:
            wins["sts3"] += 1
        elif ed_err < sts3_err - 1e-12:
            wins["ed"] += 1
        else:
            wins["tie"] += 1
    report(
        "table8_full",
        render_table(
            ["Dataset", "len", "cls", "ED", "DTW", "STS3", "sigma*", "eps*"],
            rows,
            title=(
                f"Table 8 sweep (scale={scale}, test capped at {test_cap}; "
                f"STS3 vs ED: {wins['sts3']} wins / {wins['tie']} ties / "
                f"{wins['ed']} losses)"
            ),
        ),
    )
    # Paper's claim: "STS3 is as accurate as ED" — overall, STS3 should
    # win or tie at least as often as it loses.
    assert wins["sts3"] + wins["tie"] >= wins["ed"]
    return rows


def test_bench_sweep(benchmark, experiment):
    """pytest-benchmark hook: one dataset's tuned evaluation."""
    ds = load_dataset("ECG200", scale=0.2, seed=1)
    benchmark.pedantic(
        lambda: sts3_error_rate(ds.train, ds.test, 3, 0.58),
        rounds=1,
        iterations=1,
    )
