"""Segment lifecycle tests: seal/compact parity and O(buffer) flushes.

The heart of the segmented storage engine is a pair of equivalences:

- insert → flush → ``compact()`` is bit-identical to building the
  database from scratch over the same series (compaction re-derives the
  tight bound + padding and re-transforms everything, exactly like the
  constructor);
- a sealed segment answers queries bit-identically to the update buffer
  it was sealed from (it adopts the buffer's grid and sets verbatim).

Plus the cost contract: a flush performs O(buffer) transform work, not
O(database) — asserted through the ``sts3_transforms_total`` counter.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.segment import Segment
from repro.obs import MetricsRegistry, get_registry, set_registry

METHODS = ["naive", "index", "pruning", "approximate"]


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def _spiked(rng, length, spike):
    series = rng.normal(size=length)
    series[int(rng.integers(0, length))] = spike
    return series


def _workload(seed, n_base=30, n_extra=7, length=48):
    """Base series plus out-of-bound extras (each spike breaks the bound)."""
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=length) for _ in range(n_base)]
    extras = [_spiked(rng, length, 30.0 + 10.0 * i) for i in range(n_extra)]
    queries = [rng.normal(size=length) for _ in range(4)] + [extras[0], base[3]]
    return base, extras, queries


def _answers(db, queries, method, k=5):
    return [
        [(n.index, n.similarity) for n in db.query(q, k=k, method=method).neighbors]
        for q in queries
    ]


class TestCompactMatchesScratch:
    """Satellite: insert→flush→compact ≡ from-scratch rebuild, all methods."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("method", METHODS)
    def test_query_parity(self, seed, method):
        base, extras, queries = _workload(seed)
        db = STS3Database(
            base, sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3
        )
        for series in extras:
            db.insert(series)
        db.flush()
        assert len(db.catalog.segments) > 1
        db.compact()
        assert len(db.catalog.segments) == 1

        scratch = STS3Database(
            base + extras, sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3
        )
        assert _answers(db, queries, method) == _answers(scratch, queries, method)

    @pytest.mark.parametrize("seed", [0, 1])
    @pytest.mark.parametrize("workers", [None, 2])
    def test_query_batch_parity(self, seed, workers):
        base, extras, queries = _workload(seed)
        db = STS3Database(
            base, sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3
        )
        for series in extras:
            db.insert(series)
        db.flush()
        db.compact()
        scratch = STS3Database(
            base + extras, sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3
        )
        got = db.query_batch(queries, k=4, method="index", workers=workers)
        want = scratch.query_batch(queries, k=4, method="index", workers=workers)
        assert [
            [(n.index, n.similarity) for n in r.neighbors] for r in got
        ] == [[(n.index, n.similarity) for n in r.neighbors] for r in want]


class TestSealedMatchesBuffered:
    """A sealed segment answers exactly like the buffer it came from.

    This is the acceptance parity against the pre-refactor single-grid
    path: the buffered-query semantics (main grid + buffer grid,
    Section 5.3.2) are the seed behaviour, and sealing the buffer as a
    segment must not change a single bit of any answer.
    """

    @pytest.mark.parametrize("method", METHODS)
    def test_all_methods(self, method):
        base, extras, queries = _workload(3)
        kwargs = dict(sigma=2, epsilon=0.4, normalize=False, buffer_capacity=64)
        buffered = STS3Database(base, **kwargs)
        sealed = STS3Database(base, **kwargs)
        for series in extras:
            buffered.insert(series)
            sealed.insert(series)
        assert len(buffered.buffer) == len(extras)  # stays buffered
        sealed.flush()
        assert len(sealed.catalog.segments) == 2

        for k in (1, 3, 8):
            for query in queries:
                got = sealed.query(query, k=k, method=method).neighbors
                want = buffered.query(query, k=k, method=method).neighbors
                assert [(n.index, n.similarity) for n in got] == [
                    (n.index, n.similarity) for n in want
                ]

    def test_query_batch_matches_scalar_on_segments(self):
        base, extras, queries = _workload(4)
        db = STS3Database(
            base, sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3
        )
        for series in extras:
            db.insert(series)
        batch = db.query_batch(queries, k=4, method="index")
        scalar = [db.query(q, k=4, method="index") for q in queries]
        assert [(r.indices(), list(r.similarities())) for r in batch] == [
            (r.indices(), list(r.similarities())) for r in scalar
        ]
        for got, want in zip(batch, scalar):
            assert got.stats == want.stats


class TestFlushCost:
    """Acceptance: flushing b buffered series does O(b) transform work."""

    def test_flush_transform_work_is_buffer_sized(self, fresh_registry):
        rng = np.random.default_rng(7)
        n, b = 400, 5
        base = [rng.normal(size=32) for _ in range(n)]
        db = STS3Database(
            base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=b + 1
        )
        transforms = fresh_registry.counter("sts3_transforms_total")
        assert transforms.value(context="build") == n

        for i in range(b):
            db.insert(_spiked(rng, 32, 40.0 + 10.0 * i))
        buffered_work = transforms.value(context="buffer")
        # Each add transforms once; a bound growth re-transforms the
        # (small) buffer contents — all O(b²) ≪ n in the worst case.
        assert b <= buffered_work <= b + b * (b - 1) / 2

        before_total = sum(
            transforms.value(context=c)
            for c in ("build", "buffer", "extend", "compact", "load")
        )
        db.flush()
        after_total = sum(
            transforms.value(context=c)
            for c in ("build", "buffer", "extend", "compact", "load")
        )
        # Sealing adopts the buffer's sets: zero transforms, in
        # particular no O(n) rebuild.
        assert after_total == before_total
        assert transforms.value(context="compact") == 0

        db.compact()
        assert transforms.value(context="compact") == n + b

    def test_direct_insert_transforms_once(self, fresh_registry):
        rng = np.random.default_rng(8)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(50)],
            sigma=2, epsilon=0.5, value_padding=1.0,
        )
        transforms = fresh_registry.counter("sts3_transforms_total")
        db.insert(0.5 * rng.normal(size=32))
        assert transforms.value(context="extend") == 1.0


class TestCatalogLifecycle:
    def test_generation_bumps_on_structural_changes(self):
        rng = np.random.default_rng(9)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(20)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2,
        )
        g0 = db.catalog.generation
        db.insert(np.clip(rng.normal(size=32), -1, 1))  # direct extend
        assert db.catalog.generation > g0
        g1 = db.catalog.generation
        # Buffered: no structural change, but the generation still
        # advances (catalog.touch) so result-cache entries keyed on it
        # stop serving answers that predate the buffered series.  The
        # segment layout itself is untouched.
        offsets_before = db.catalog.offsets()
        db.insert(_spiked(rng, 32, 50.0))
        assert db.catalog.generation > g1
        assert db.catalog.offsets() == offsets_before
        g1 = db.catalog.generation
        db.insert(_spiked(rng, 32, 60.0))  # fills the buffer: seal
        assert db.catalog.generation > g1
        g2 = db.catalog.generation
        assert db.compact() >= 1
        assert db.catalog.generation > g2

    def test_compact_min_size_merges_consecutive_small_runs(self):
        rng = np.random.default_rng(10)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(40)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2,
        )
        for i in range(6):  # three seals of two series each
            db.insert(_spiked(rng, 32, 40.0 + 10.0 * i))
        assert len(db.catalog.segments) == 4
        sizes_before = [len(s) for s in db.catalog.segments]
        merged = db.compact(min_size=10)
        # The base segment (40 series) is untouched; the three
        # two-series deltas merge into one six-series segment.
        assert merged == 2
        assert [len(s) for s in db.catalog.segments] == [40, 6]
        assert sum(len(s) for s in db.catalog.segments) == sum(sizes_before)
        assert db.verify_integrity() == []

    def test_offsets_and_describe(self):
        rng = np.random.default_rng(11)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(10)],
            sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2,
        )
        for i in range(2):
            db.insert(_spiked(rng, 32, 40.0 + 10.0 * i))
        assert db.catalog.offsets() == [0, 10]
        rows = db.catalog.describe()
        assert [row["offset"] for row in rows] == [0, 10]
        assert [row["n_series"] for row in rows] == [10, 2]

    def test_segment_is_replaced_not_mutated_on_extend(self):
        rng = np.random.default_rng(12)
        db = STS3Database(
            [rng.normal(size=32) for _ in range(10)],
            sigma=2, epsilon=0.5, value_padding=1.0,
        )
        segment = db.catalog.segments[0]
        searcher = segment.indexed_searcher()
        db.insert(0.5 * rng.normal(size=32))
        replacement = db.catalog.segments[0]
        assert replacement is not segment
        assert len(segment) == 10  # the old segment is untouched
        assert len(replacement) == 11
        assert replacement.indexed_searcher() is not searcher

    def test_segment_build_roundtrip(self):
        rng = np.random.default_rng(13)
        series = [rng.normal(size=24) for _ in range(6)]
        segment = Segment.build(0, series, sigma=2, epsilon=0.5)
        assert len(segment) == 6
        assert segment.verify_integrity() == []
        stats = segment.stats()
        assert stats["n_series"] == 6
        assert stats["median_length"] == 24
