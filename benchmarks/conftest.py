"""Shared fixtures for the benchmark suite.

Every benchmark regenerates one table or figure of the paper.  Workload
sizes scale with ``$REPRO_SCALE`` (default 0.05 — see
:mod:`repro.bench.runner`); ``REPRO_SCALE=1`` reproduces paper-size
workloads.  Each module writes its paper-style text table through the
``report`` fixture, which prints it and archives it under
``benchmarks/results/`` so ``bench_output.txt`` plus that directory
together hold the full reproduction record.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def report():
    """Callable ``report(name, text)``: print + archive a result table."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _report
