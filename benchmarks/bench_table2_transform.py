"""Tables 1-2: set-transformation time vs query time.

Paper Section 7.1: on CBF, CinC_ECG_torso (CET), and ElectricDevices
(ED), the offline transformation of the database, the online
transformation of the queries, and the query processing itself are
timed separately, showing that "the transformation time of a query is
very small compared to the query time".
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, repro_scale
from repro.core import Bound, Grid, NaiveSearcher, transform, transform_query
from repro.data.registry import paper_workload

#: (dataset, paper's tuned (sigma, epsilon) from Table 1)
CASES = [("CBF", 21, 0.18), ("CET", 76, 0.82), ("ED", 4, 0.88)]


def _prepare(name: str, sigma: float, epsilon: float):
    workload = paper_workload(name, scale=repro_scale(), seed=0)
    bound = Bound.of_database(workload.database)
    grid = Grid.from_cell_sizes(bound, sigma, epsilon)
    return workload, grid


@pytest.fixture(scope="module")
def experiment(report):
    """Run the three-phase measurement per dataset and emit Table 2."""
    rows = []
    prepared = {}
    for name, sigma, epsilon in CASES:
        workload, grid = _prepare(name, sigma, epsilon)
        with Timer() as offline:
            sets = [transform(s, grid) for s in workload.database]
        with Timer() as online:
            query_sets = [transform_query(q, grid) for q in workload.queries]
        searcher = NaiveSearcher(sets)
        with Timer() as querying:
            for query_set in query_sets:
                searcher.query(query_set, k=1)
        rows.append([name, offline.millis, online.millis, querying.millis])
        prepared[name] = (workload, grid, sets, query_sets, searcher)
    report(
        "table2_transform",
        render_table(
            ["Dataset", "Offline ms", "Online ms", "Query ms"],
            rows,
            title=f"Table 2: series transformation time (scale={repro_scale()})",
        ),
    )
    return prepared


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_bench_offline_transform(benchmark, experiment, name):
    """pytest-benchmark row: database transformation throughput."""
    workload, grid, *_ = experiment[name]
    benchmark(lambda: [transform(s, grid) for s in workload.database])


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_bench_online_transform(benchmark, experiment, name):
    """pytest-benchmark row: query transformation (Algorithm 6 path)."""
    workload, grid, *_ = experiment[name]
    benchmark(lambda: [transform_query(q, grid) for q in workload.queries])


@pytest.mark.parametrize("name", [c[0] for c in CASES])
def test_bench_query_processing(benchmark, experiment, name):
    """pytest-benchmark row: naive STS3 query batch."""
    _, _, _, query_sets, searcher = experiment[name]
    benchmark(lambda: [searcher.query(q, k=1) for q in query_sets])
