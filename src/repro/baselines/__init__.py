"""Baselines the paper compares against (Section 7.2).

Euclidean distance, DTW (full / banded, plus the LB_Keogh /
LB_Improved cascade), FastDTW, LCSS, and the FTSE-style accelerated
LCSS evaluation — all exact reimplementations (FastDTW is approximate
by design), pluggable into the shared k-NN scan of
:mod:`repro.baselines.knn`.
"""

from .dtw import dtw, dtw_independent, dtw_with_path, sakoe_chiba_window
from .ed import euclidean, euclidean_early_abandon, squared_euclidean
from .edr import edr_distance, edr_similarity
from .erp import erp_distance
from .fastdtw import coarsen, expand_window, fastdtw
from .ftse import (
    ftse_lcss_distance,
    ftse_lcss_length,
    ftse_lcss_similarity,
    match_lists,
)
from .knn import Measure, error_rate, knn_classify, knn_search, measures, nn_classify
from .lb import DTWCascade, envelope, lb_improved, lb_keogh
from .lcss import lcss_distance, lcss_length, lcss_similarity
from .mbe import MBESearcher, query_mbe_rects, series_mbrs
from .rtree import Rect, RTree
from .paa import PAAFilter, paa_distance, paa_transform
from .sax import gaussian_breakpoints, sax_mindist, sax_transform
from .spectral import DFTFilter, dft_distance, dft_features

__all__ = [
    "DFTFilter",
    "DTWCascade",
    "MBESearcher",
    "Measure",
    "PAAFilter",
    "RTree",
    "Rect",
    "coarsen",
    "dft_distance",
    "dft_features",
    "dtw",
    "dtw_independent",
    "dtw_with_path",
    "edr_distance",
    "edr_similarity",
    "envelope",
    "erp_distance",
    "error_rate",
    "euclidean",
    "euclidean_early_abandon",
    "expand_window",
    "fastdtw",
    "gaussian_breakpoints",
    "knn_classify",
    "ftse_lcss_distance",
    "ftse_lcss_length",
    "ftse_lcss_similarity",
    "knn_search",
    "lb_improved",
    "lb_keogh",
    "lcss_distance",
    "lcss_length",
    "lcss_similarity",
    "match_lists",
    "measures",
    "nn_classify",
    "paa_distance",
    "paa_transform",
    "query_mbe_rects",
    "sakoe_chiba_window",
    "series_mbrs",
    "sax_mindist",
    "sax_transform",
    "squared_euclidean",
]
