"""Profiling hooks: StageTimes accumulator and cProfile wrappers."""

from __future__ import annotations

import pytest

from repro.obs import ProfiledBlock, StageTimes, profile_callable, profile_query


class TestStageTimes:
    def test_accumulates_across_reentry(self):
        times = StageTimes()
        for _ in range(3):
            with times.stage("filter"):
                pass
        with times.stage("refine"):
            pass
        assert times.counts() == {"filter": 3, "refine": 1}
        seconds = times.seconds()
        assert list(seconds) == ["filter", "refine"]
        assert all(v >= 0 for v in seconds.values())

    def test_add_ns_direct(self):
        times = StageTimes()
        times.add_ns("merge", 2_000_000)
        times.add_ns("merge", 1_000_000)
        assert times.seconds()["merge"] == pytest.approx(0.003)
        assert times.counts()["merge"] == 2

    def test_reset(self):
        times = StageTimes()
        with times.stage("filter"):
            pass
        times.reset()
        assert times.seconds() == {}
        assert times.counts() == {}

    def test_exception_still_recorded(self):
        times = StageTimes()
        with pytest.raises(ValueError):
            with times.stage("filter"):
                raise ValueError
        assert times.counts() == {"filter": 1}


class TestCProfileWrappers:
    def test_profiled_block_reports_functions(self):
        def busywork():
            return sum(i * i for i in range(1000))

        with ProfiledBlock() as prof:
            busywork()
        report = prof.text(limit=10)
        assert "busywork" in report
        assert "cumulative" in report or "cumtime" in report

    def test_profile_callable_returns_result_and_text(self):
        result, report = profile_callable(lambda: 41 + 1, sort="tottime", limit=5)
        assert result == 42
        assert "function calls" in report

    def test_profile_query_end_to_end(self, small_db, small_workload):
        result, report = profile_query(
            small_db, small_workload.queries[0], k=3, method="index"
        )
        assert len(result.neighbors) == 3
        assert "query" in report  # the profiled entry point shows up
