"""Named counters, gauges, and histograms with label support.

A :class:`MetricsRegistry` owns a flat namespace of metrics.  Each
metric is created (or fetched — creation is idempotent) through the
registry and updated with optional labels::

    from repro.obs import get_registry

    registry = get_registry()
    registry.counter("sts3_queries_total", "queries answered").inc(method="index")
    registry.histogram("sts3_query_seconds", "query latency").observe(0.0123)

Two export formats:

- :meth:`MetricsRegistry.snapshot` — a deterministic plain dict
  (sorted names, sorted label sets) ready for ``json.dumps``; what
  ``sts3 batch --metrics-json`` writes.
- :meth:`MetricsRegistry.to_prometheus` — Prometheus text exposition
  (``# HELP`` / ``# TYPE`` plus one sample line per label set), ready
  to serve from a ``/metrics`` endpoint.

The default process-wide registry (:func:`get_registry`) is enabled;
instrumentation sites record a handful of per-query / per-tile events,
so steady-state cost is a few dict operations per query.  Disable with
``get_registry().enabled = False`` to reduce every update to one
attribute check.  Updates are lock-guarded and therefore thread-safe;
label values are stringified so snapshots are stable.
"""

from __future__ import annotations

import threading

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "DEFAULT_BUCKETS",
]

#: Default histogram buckets (seconds): latency-oriented, log-spaced.
DEFAULT_BUCKETS = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)

_LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _label_suffix(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in key)
    return "{" + inner + "}"


class _Metric:
    """Shared plumbing: name, help text, per-label-set storage."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry", name: str, help: str):
        self._registry = registry
        self.name = name
        self.help = help
        self._values: dict[_LabelKey, object] = {}

    def _sorted_items(self) -> list[tuple[_LabelKey, object]]:
        return sorted(self._values.items())

    def remove(self, **labels) -> bool:
        """Drop the series with *exactly* these labels; True if it existed.

        Metric definitions are forever (a name means one thing), but
        labelled *series* are not: a gauge labelled per segment keeps
        exporting the last value long after the segment is merged away
        unless someone removes the series.  Removal is independent of
        ``registry.enabled`` — a disabled registry must still be able
        to shed stale series.
        """
        with self._registry._lock:
            return self._values.pop(_label_key(labels), None) is not None

    def discard_labels(self, **match) -> int:
        """Drop every series whose labels include ``match``; returns count.

        Subset semantics: ``discard_labels(segment="3")`` removes both
        ``{segment="3",state="resident"}`` and
        ``{segment="3",state="mapped"}``.  With no keywords this is a
        no-op (refusing to silently clear the whole metric).
        """
        if not match:
            return 0
        wanted = dict(_label_key(match))
        with self._registry._lock:
            doomed = [
                key for key in self._values
                if all(dict(key).get(k) == v for k, v in wanted.items())
            ]
            for key in doomed:
                del self._values[key]
        return len(doomed)


class Counter(_Metric):
    """Monotonically increasing count (resets only with the registry)."""

    kind = "counter"

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (default 1) to the labelled series."""
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (got {amount})")
        key = _label_key(labels)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current count of the labelled series (0.0 if never touched)."""
        return float(self._values.get(_label_key(labels), 0.0))


class Gauge(_Metric):
    """A value that can go up and down (e.g. buffer fill, bytes held)."""

    kind = "gauge"

    def set(self, value: float, **labels) -> None:
        """Set the labelled series to ``value``."""
        if not self._registry.enabled:
            return
        with self._registry._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels) -> None:
        """Add ``amount`` (may be negative) to the labelled series."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        """Current value of the labelled series (0.0 if never set)."""
        return float(self._values.get(_label_key(labels), 0.0))


class _HistogramSeries:
    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, n_buckets: int):
        self.bucket_counts = [0] * n_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Metric):
    """Cumulative-bucket distribution (Prometheus histogram semantics)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ):
        super().__init__(registry, name, help)
        self.buckets = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"histogram {name} needs at least one bucket")

    def observe(self, value: float, **labels) -> None:
        """Record one observation into the labelled series."""
        if not self._registry.enabled:
            return
        key = _label_key(labels)
        with self._registry._lock:
            series = self._values.get(key)
            if series is None:
                series = self._values[key] = _HistogramSeries(len(self.buckets))
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    series.bucket_counts[i] += 1
                    break
            series.total += value
            series.count += 1

    def series_snapshot(self, **labels) -> dict:
        """``{"count", "sum", "buckets"}`` for one labelled series."""
        series = self._values.get(_label_key(labels))
        if series is None:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        return self._series_dict(series)

    def _series_dict(self, series: _HistogramSeries) -> dict:
        cumulative = 0
        buckets = {}
        for bound, count in zip(self.buckets, series.bucket_counts):
            cumulative += count
            buckets[repr(bound)] = cumulative
        buckets["+Inf"] = series.count
        return {"count": series.count, "sum": series.total, "buckets": buckets}


class MetricsRegistry:
    """A namespace of metrics with deterministic export.

    Metric constructors are get-or-create: calling
    ``registry.counter(name, ...)`` twice returns the same object, and
    asking for an existing name with a different kind raises
    ``ValueError`` (a name means one thing, forever).
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    # -- construction ----------------------------------------------------

    def _get_or_create(self, cls, name: str, help: str, **kwargs) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            metric = cls(self, name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        """Get or create the counter called ``name``."""
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        """Get or create the gauge called ``name``."""
        return self._get_or_create(Gauge, name, help)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        return self._get_or_create(Histogram, name, help, buckets=buckets)

    # -- lifecycle -------------------------------------------------------

    def discard_labels(self, name_prefix: str = "", **match) -> int:
        """Registry-wide series hygiene: drop matching series everywhere.

        Sweeps every metric whose name starts with ``name_prefix`` (""
        = all) and applies :meth:`_Metric.discard_labels`'s subset
        semantics; returns the total series dropped.  This is what
        membership changes call — a shard failover or replica removal
        retires the whole ``sts3_shard_*{shard=…}`` /
        ``sts3_replication_*{replica=…}`` family in one sweep, instead
        of each site hunting down its own gauges (the PR 8 per-metric
        hygiene, lifted to the registry).  As with the per-metric form,
        ``match`` is required: an empty match would silently clear
        every series of every metric.
        """
        if not match:
            return 0
        with self._lock:
            swept = [
                metric
                for name, metric in self._metrics.items()
                if name.startswith(name_prefix)
            ]
        # The per-metric call takes the registry lock itself (it is a
        # plain Lock, not reentrant), so sweep outside the snapshot.
        return sum(metric.discard_labels(**match) for metric in swept)

    def reset(self) -> None:
        """Zero every metric (definitions and help text survive)."""
        with self._lock:
            for metric in self._metrics.values():
                metric._values.clear()

    # -- export ----------------------------------------------------------

    def snapshot(self) -> dict:
        """Deterministic plain-dict dump of every metric.

        Shape: ``{"counters": {...}, "gauges": {...}, "histograms":
        {...}}``, each mapping ``name{label="v"}`` keys to values
        (counters/gauges) or ``{"count", "sum", "buckets"}`` dicts
        (histograms).  Keys are sorted, so two registries that saw the
        same events in any order snapshot identically.
        """
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if isinstance(metric, Histogram):
                    bucket = out["histograms"]
                    for key, series in metric._sorted_items():
                        bucket[name + _label_suffix(key)] = metric._series_dict(series)
                else:
                    bucket = out["counters"] if metric.kind == "counter" else out["gauges"]
                    for key, value in metric._sorted_items():
                        bucket[name + _label_suffix(key)] = value
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        with self._lock:
            for name in sorted(self._metrics):
                metric = self._metrics[name]
                if metric.help:
                    lines.append(f"# HELP {name} {metric.help}")
                lines.append(f"# TYPE {name} {metric.kind}")
                if isinstance(metric, Histogram):
                    for key, series in metric._sorted_items():
                        cumulative = 0
                        for bound, count in zip(metric.buckets, series.bucket_counts):
                            cumulative += count
                            le = _label_suffix(key + (("le", repr(bound)),))
                            lines.append(f"{name}_bucket{le} {cumulative}")
                        le = _label_suffix(key + (("le", "+Inf"),))
                        lines.append(f"{name}_bucket{le} {series.count}")
                        lines.append(f"{name}_sum{_label_suffix(key)} {series.total}")
                        lines.append(f"{name}_count{_label_suffix(key)} {series.count}")
                else:
                    for key, value in metric._sorted_items():
                        lines.append(f"{name}{_label_suffix(key)} {value}")
        return "\n".join(lines) + "\n"


#: The process-wide default registry used by instrumentation sites.
_default = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _default


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the default registry; returns the previous one."""
    global _default
    previous = _default
    _default = registry
    return previous
