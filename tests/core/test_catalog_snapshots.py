"""Snapshot-isolated catalog: pins, reclamation, label hygiene, caches.

The read path pins an immutable :class:`CatalogSnapshot` per request,
so background merges swap the segment set atomically without blocking
readers (DESIGN.md §15).  These tests cover the refcount lifecycle
(pin → retire → drain → reclaim), the retirement side effects (hooks,
stale ``sts3_bitset_bytes_resident`` labels), and the generation-bump
contract the query caches rely on.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.core import STS3Database
from repro.core.jaccard import jaccard
from repro.core.setrep import transform_query
from repro.obs import MetricsRegistry, set_registry


def _make_db(n=12, seed=0, **kwargs):
    rng = np.random.default_rng(seed)
    kwargs.setdefault("buffer_capacity", 3)
    return STS3Database(
        [rng.normal(size=24) for _ in range(n)],
        sigma=2, epsilon=0.5, normalize=False, **kwargs,
    )


def _seal_extra(db, n, seed=99):
    """Insert ``n`` out-of-bound series so flush seals new segments."""
    rng = np.random.default_rng(seed)
    for i in range(n):
        series = rng.normal(size=24)
        series[i % 24] = 50.0 + 10.0 * i  # breaks any expanded bound
        db.insert(series)
    db.flush()
    assert len(db.catalog.segments) >= 2


class TestSnapshotLifecycle:
    def test_pin_sees_frozen_segment_set(self):
        db = _make_db()
        snap = db.catalog.pin()
        before = snap.segments
        _seal_extra(db, 4)
        db.compact()
        assert snap.segments == before  # pinned view never moves
        assert db.catalog.current() is not snap
        db.catalog.release(snap)

    def test_release_drains_and_reclaims(self):
        db = _make_db()
        _seal_extra(db, 4)
        snap = db.catalog.pin()
        db.compact()  # retires the pinned snapshot
        assert db.catalog.pinned_snapshots() == 1
        db.catalog.release(snap)
        assert db.catalog.pinned_snapshots() == 0

    def test_double_pin_needs_both_releases(self):
        db = _make_db()
        _seal_extra(db, 4)
        a = db.catalog.pin()
        b = db.catalog.pin()
        assert a is b
        db.compact()
        db.catalog.release(a)
        assert db.catalog.pinned_snapshots() == 1
        db.catalog.release(b)
        assert db.catalog.pinned_snapshots() == 0

    def test_pinned_contextmanager(self):
        db = _make_db()
        _seal_extra(db, 4)
        with db.catalog.pinned() as snap:
            assert snap is db.catalog.current()
            db.compact()
            assert db.catalog.pinned_snapshots() == 1
        assert db.catalog.pinned_snapshots() == 0

    def test_generation_monotonic_over_lifecycle(self):
        db = _make_db()
        seen = [db.catalog.generation]
        _seal_extra(db, 4)
        seen.append(db.catalog.generation)
        db.compact()
        seen.append(db.catalog.generation)
        assert seen == sorted(set(seen))

    def test_snapshot_offsets_and_n_series(self):
        db = _make_db()
        _seal_extra(db, 3)
        snap = db.catalog.current()
        assert list(snap.offsets()) == db.catalog.offsets()
        assert snap.n_series == db.catalog.n_series

    def test_writer_never_blocks_on_reader_pin(self):
        """A merge publishes while a reader still holds the old view."""
        db = _make_db()
        _seal_extra(db, 4)
        snap = db.catalog.pin()
        done = threading.Event()

        def writer():
            db.compact()
            done.set()

        thread = threading.Thread(target=writer)
        thread.start()
        thread.join(timeout=10)
        assert done.is_set(), "compact() blocked behind a reader pin"
        # the reader's world is intact: layout-aware answers still work
        query = np.random.default_rng(7).normal(size=24)
        for seg in snap.segments:
            q = transform_query(query, seg.grid)
            assert all(0.0 <= jaccard(s, q) <= 1.0 for s in seg.sets)
        db.catalog.release(snap)
        assert db.catalog.pinned_snapshots() == 0


class TestRetirement:
    def test_hook_fires_for_merged_away_ids(self):
        db = _make_db()
        _seal_extra(db, 4)
        old_ids = {seg.segment_id for seg in db.catalog.segments}
        retired = []
        db.catalog.add_retirement_hook(lambda seg: retired.append(seg.segment_id))
        db.compact()
        assert set(retired) == old_ids

    def test_hook_deferred_until_pins_drain(self):
        db = _make_db()
        _seal_extra(db, 4)
        retired = []
        db.catalog.add_retirement_hook(lambda seg: retired.append(seg.segment_id))
        snap = db.catalog.pin()
        db.compact()
        assert retired == []  # reader still holds the old segments
        db.catalog.release(snap)
        assert len(retired) == len(snap.segments)

    def test_extend_last_does_not_retire(self):
        """extend_last reuses the segment ID — no false retirement."""
        db = _make_db(n=6)
        db.flush()
        retired = []
        db.catalog.add_retirement_hook(lambda seg: retired.append(seg.segment_id))
        rng = np.random.default_rng(3)
        for _ in range(3):
            db.insert(0.1 * rng.normal(size=24))  # in-bound: extends last
        db.flush()
        assert retired == []

    def test_stale_bitset_labels_dropped_on_retirement(self):
        previous = set_registry(MetricsRegistry())
        try:
            db = _make_db()
            _seal_extra(db, 4)
            from repro.obs import get_registry

            gauge = get_registry().gauge(
                "sts3_bitset_bytes_resident", "resident bytes"
            )
            old_ids = [seg.segment_id for seg in db.catalog.segments]
            for sid in old_ids:
                gauge.set(1024, segment=str(sid))
            db.compact()
            for sid in old_ids:
                assert gauge.value(segment=str(sid)) == 0.0
            text = get_registry().to_prometheus()
            for sid in old_ids:
                assert f'segment="{sid}"' not in text
        finally:
            set_registry(previous)


class TestGenerationCacheContract:
    """compact() and background merges must invalidate cached answers."""

    @pytest.mark.parametrize("how", ["compact", "merge"])
    def test_structural_change_bumps_generation(self, how):
        db = _make_db(cache_bytes=1 << 20)
        _seal_extra(db, 4)
        generation = db.catalog.generation
        if how == "compact":
            db.compact()
        else:
            from repro.core import MaintenanceConfig, MaintenanceEngine

            engine = MaintenanceEngine(
                db, MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
            )
            assert engine.run_until_idle()["merges"] >= 1
        assert db.catalog.generation > generation

    @pytest.mark.parametrize("how", ["compact", "merge"])
    def test_cached_result_not_served_across_merge(self, how):
        db = _make_db(cache_bytes=1 << 20)
        _seal_extra(db, 4)
        query = np.random.default_rng(11).normal(size=24)
        db.query(query, k=3, method="index")  # prime the cache
        if how == "compact":
            db.compact()
        else:
            from repro.core import MaintenanceConfig, MaintenanceEngine

            MaintenanceEngine(
                db, MaintenanceConfig(max_segments=1, tier_base=10_000, fanout=2)
            ).run_until_idle()
        result = db.query(query, k=3, method="index")
        # post-merge answers must match a fresh layout-aware computation,
        # not the pre-merge cached entry
        sims = []
        for segment in db.catalog.segments:
            q = transform_query(query, segment.grid)
            sims += [jaccard(s, q) for s in segment.sets]
        buffer_q = transform_query(query, db.buffer.grid)
        sims += [jaccard(s, buffer_q) for s in db.buffer.sets]
        expected = sorted(
            ((sim, i) for i, sim in enumerate(sims)), key=lambda t: (-t[0], t[1])
        )[:3]
        got = [(round(n.similarity, 12), n.index) for n in result.neighbors]
        assert got == [(round(s, 12), i) for s, i in expected]
