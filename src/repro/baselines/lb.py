"""Lower bounds for banded DTW: LB_Keogh and LB_Improved (Lemire).

LB_Keogh wraps one series in its warping envelope — ``U[i]`` / ``L[i]``
are the max/min over ``b[i-w .. i+w]`` — and charges the other series
only where it escapes the envelope.  LB_Improved [Lemire 2009, the
paper's "LB_improved low boundary"] adds a second pass: project the
query onto the envelope, wrap the *projection* in its own envelope, and
charge the candidate's escapes from that.  Both are admissible
(never exceed the banded DTW distance), so a cascade of

    LB_Keogh → LB_Improved → exact DTW with early abandoning

returns exact nearest neighbours while computing full DTW only for the
candidates that survive both bounds.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .dtw import dtw

__all__ = ["envelope", "lb_keogh", "lb_improved", "DTWCascade"]


def envelope(series: np.ndarray, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Warping envelope ``(lower, upper)`` for band half-width ``window``.

    ``upper[i] = max(series[i-w .. i+w])`` and symmetrically for
    ``lower``; computed with a sliding-window view, O(n·w) worst case
    but fully vectorized.
    """
    if series.ndim != 1:
        raise ParameterError("envelopes are defined for 1-D series")
    if window < 0:
        raise ParameterError(f"window must be >= 0, got {window}")
    n = len(series)
    if window == 0:
        return series.copy(), series.copy()
    size = 2 * window + 1
    padded_max = np.concatenate(
        (np.full(window, -np.inf), series, np.full(window, -np.inf))
    )
    padded_min = np.concatenate(
        (np.full(window, np.inf), series, np.full(window, np.inf))
    )
    windows_max = np.lib.stride_tricks.sliding_window_view(padded_max, size)[:n]
    windows_min = np.lib.stride_tricks.sliding_window_view(padded_min, size)[:n]
    return windows_min.min(axis=1), windows_max.max(axis=1)


def _escape_cost_sq(series: np.ndarray, lower: np.ndarray, upper: np.ndarray) -> float:
    """Summed squared distance from ``series`` to the envelope band."""
    above = np.maximum(series - upper, 0.0)
    below = np.maximum(lower - series, 0.0)
    return float(np.dot(above, above) + np.dot(below, below))


def lb_keogh(
    query: np.ndarray,
    candidate_envelope: tuple[np.ndarray, np.ndarray],
) -> float:
    """LB_Keogh(query, candidate) from the candidate's envelope."""
    lower, upper = candidate_envelope
    if len(query) != len(lower):
        raise ParameterError("LB_Keogh requires equal-length series")
    return float(np.sqrt(_escape_cost_sq(query, lower, upper)))


def lb_improved(
    query: np.ndarray,
    candidate: np.ndarray,
    candidate_envelope: tuple[np.ndarray, np.ndarray],
    window: int,
) -> float:
    """LB_Improved(query, candidate): LB_Keogh plus the projection term.

    The projection clamps the query into the candidate's envelope; the
    candidate's escapes from the *projection's* envelope are warping
    cost no path can avoid either, and the two terms add (Lemire 2009,
    Theorem 2).
    """
    lower, upper = candidate_envelope
    if len(query) != len(candidate):
        raise ParameterError("LB_Improved requires equal-length series")
    first = _escape_cost_sq(query, lower, upper)
    projection = np.clip(query, lower, upper)
    proj_lower, proj_upper = envelope(projection, window)
    second = _escape_cost_sq(candidate, proj_lower, proj_upper)
    return float(np.sqrt(first + second))


class DTWCascade:
    """Exact banded-DTW NN search with the LB cascade of Section 7.2.1.

    Candidate envelopes are precomputed once (they depend only on the
    database); each query then runs LB_Keogh → LB_Improved → exact DTW
    with the best-so-far distance as the abandoning cutoff.
    """

    def __init__(self, database: list[np.ndarray], window: int):
        if not database:
            raise ParameterError("cannot search an empty database")
        if window < 0:
            raise ParameterError(f"window must be >= 0, got {window}")
        self.database = database
        self.window = window
        self.envelopes = [envelope(s, window) for s in database]
        #: counters for the pruning-power experiments
        self.stats = {"lb_keogh_pruned": 0, "lb_improved_pruned": 0, "dtw_computed": 0}

    def nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Index and DTW distance of the nearest database series."""
        best_index = -1
        best_distance = np.inf
        for index, candidate in enumerate(self.database):
            bound = lb_keogh(query, self.envelopes[index])
            if bound >= best_distance:
                self.stats["lb_keogh_pruned"] += 1
                continue
            bound = lb_improved(query, candidate, self.envelopes[index], self.window)
            if bound >= best_distance:
                self.stats["lb_improved_pruned"] += 1
                continue
            self.stats["dtw_computed"] += 1
            distance = dtw(query, candidate, window=self.window, cutoff=best_distance)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index, float(best_distance)
