"""Appendix A: buffered-update cost propositions.

Proposition 1: the amortized refresh cost of one insert is proportional
to the out-TS probability ``p`` and inversely proportional to the
buffer size ``B`` (larger buffers → fewer full rebuilds).
Proposition 2: the per-query cost is proportional to ``M + B`` (the
buffer is scanned linearly after the main search).

We stream inserts with a controlled out-of-bound fraction into
databases with different buffer capacities and measure rebuild counts,
insert throughput, and query latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

BUFFER_SIZES = [2, 8, 32]
OUT_FRACTION = 0.3


def _insert_stream(rng, length, count):
    """Inserts where ~OUT_FRACTION of series break the value bound.

    Spike magnitudes grow along the stream so each out-TS exceeds even
    a bound already expanded by earlier rebuilds — otherwise a single
    rebuild would absorb all later spikes and the 1/B scaling of
    Proposition 1 could not be observed.
    """
    out = []
    for i in range(count):
        series = rng.normal(size=length)
        if rng.random() < OUT_FRACTION:
            series[rng.integers(0, length)] = 50.0 + 10.0 * i
        out.append(series)
    return out


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(5000, minimum=100)
    n_inserts = scaled(600, minimum=30)
    length = 128
    workload = ecg_workload(n_series, 5, length=length, seed=8)
    rng = np.random.default_rng(8)
    inserts = _insert_stream(rng, length, n_inserts)

    rows = []
    rebuilds = {}
    for capacity in BUFFER_SIZES:
        db = STS3Database(
            workload.database,
            sigma=3,
            epsilon=0.58,
            normalize=False,
            buffer_capacity=capacity,
        )
        with Timer() as insert_t:
            for series in inserts:
                db.insert(series)
        with Timer() as query_t:
            for q in workload.queries:
                db.query(q, k=1, method="naive")
        rows.append(
            [
                capacity,
                db.rebuild_count,
                insert_t.millis / n_inserts,
                query_t.millis / len(workload.queries),
                len(db.buffer),
            ]
        )
        rebuilds[capacity] = db.rebuild_count
    report(
        "appendix_buffer",
        render_table(
            ["buffer B", "rebuilds", "insert ms/op", "query ms/op", "buffered"],
            rows,
            title=(
                f"Appendix A: lazy buffered updates "
                f"(M={n_series}, inserts={n_inserts}, p≈{OUT_FRACTION})"
            ),
        ),
    )
    # Proposition 1 shape: rebuild count scales ~1/B.
    assert rebuilds[BUFFER_SIZES[0]] > rebuilds[BUFFER_SIZES[-1]]
    return workload, inserts


def test_bench_insert_stream(benchmark, experiment):
    workload, inserts = experiment
    def run():
        db = STS3Database(
            workload.database, sigma=3, epsilon=0.58,
            normalize=False, buffer_capacity=8,
        )
        for series in inserts[:50]:
            db.insert(series)
    benchmark.pedantic(run, rounds=1, iterations=1)
