"""Hypothesis stateful test of the durability layer against an oracle.

The rule machine drives a WAL-attached database through interleaved
inserts (in- and out-of-bound), flushes, compactions, checkpoints, and
**hard crashes** (the process image is abandoned mid-flight and the
database is rebuilt from the archive + WAL), checking after every step
that nothing acknowledged is lost and queries still match a naive
model.  With ``fsync_batch=1`` every applied insert is acknowledged,
so the durability contract reduces to: the recovered database contains
exactly the model's series, in order, answering bit-identically.

This hunts for the bugs example-based crash tests can't reach: replay
interleavings (insert → auto-flush → compact → crash → recover →
insert → crash again), checkpoint/rotation races, sequence accounting
across recoveries.
"""

import shutil
import tempfile
from pathlib import Path

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import STS3Database
from repro.core import WriteAheadLog, default_wal_dir, recover_database, save_database
from repro.core.jaccard import jaccard

LENGTH = 24


def _series(rng_seed: int, spike: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    out = rng.normal(size=LENGTH)
    if spike:
        out[int(rng.integers(0, LENGTH))] = spike
    return out


class DurabilityMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**20))
    def build(self, seed):
        self.seed = seed
        self.next_spike = 50.0
        self.tmp = Path(tempfile.mkdtemp(prefix="sts3-durability-"))
        self.path = self.tmp / "db.sts3"
        base = [_series(seed + i) for i in range(4)]
        # normalize=False so out-of-bound inserts are actually possible
        # cache_bytes on: every oracle query doubles as a cache-staleness
        # probe — if invalidation misses a structural change, the cached
        # answer diverges from the model and a rule fails.
        self.db = STS3Database(
            base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=3,
            cache_bytes=1 << 20,
        )
        # fsync_batch=1: every applied insert is acknowledged durable
        self.db.attach_wal(WriteAheadLog(default_wal_dir(self.path), fsync_batch=1))
        save_database(self.db, self.path)
        self.model = list(self.db.series)

    def teardown(self):
        if getattr(self, "db", None) is not None:
            self.db.close()
        shutil.rmtree(self.tmp, ignore_errors=True)

    # -- mutations ------------------------------------------------------

    @rule(offset=st.integers(0, 1000))
    def insert_in_bound(self, offset):
        series = 0.5 * _series(self.seed + 10_000 + offset)
        series = np.clip(
            series, self.db.grid.bound.x_min[0], self.db.grid.bound.x_max[0]
        )
        generation = self.db.catalog.generation
        self.db.insert(series)
        self.model.append(series)
        # every insert — direct or buffered — must invalidate the cache
        assert self.db.catalog.generation > generation

    @rule(offset=st.integers(0, 1000))
    def insert_out_of_bound(self, offset):
        self.next_spike += 10.0  # always breaks even an expanded bound
        series = _series(self.seed + 20_000 + offset, spike=self.next_spike)
        generation = self.db.catalog.generation
        self.db.insert(series)
        self.model.append(series)
        assert self.db.catalog.generation > generation

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact(self):
        self.db.compact()

    @rule()
    def checkpoint(self):
        """A successful save retires the WAL; recovery must still work."""
        save_database(self.db, self.path)

    @rule()
    def crash_and_recover(self):
        """Abandon the live process image; rebuild from archive + WAL."""
        abandoned = self.db
        self.db = None
        # no close(), no final sync — the "process" just died.  Only the
        # file handle is dropped so the machine doesn't leak fds.
        if abandoned.wal is not None and abandoned.wal._file is not None:
            abandoned.wal._file.close()
            abandoned.wal._file = None
        self.db = recover_database(self.path, fsync_batch=1,
                                   cache_bytes=1 << 20)

    # -- invariants -----------------------------------------------------

    @invariant()
    def nothing_acknowledged_is_lost(self):
        assert len(self.db) == len(self.model)

    @invariant()
    def internals_consistent(self):
        assert self.db.verify_integrity() == []

    @invariant()
    def wal_attached_and_monotonic(self):
        assert self.db.wal is not None
        assert self.db.wal.last_seq >= self.db.wal_seq

    @invariant()
    def cache_attached_and_recovered_cold(self):
        assert self.db.result_cache is not None
        assert self.db.result_cache.capacity_bytes == 1 << 20

    # -- oracle queries -------------------------------------------------

    @rule(offset=st.integers(0, 1000), k=st.integers(1, 4))
    def query_matches_model(self, offset, k):
        """Exact answers over recovered state match the naive model."""
        from repro.core.setrep import transform_query

        query = _series(self.seed + 30_000 + offset)
        result = self.db.query(query, k=k, method="index")
        sims = []
        for segment in self.db.catalog.segments:
            segment_q = transform_query(query, segment.grid)
            sims += [jaccard(s, segment_q) for s in segment.sets]
        buffer_q = transform_query(query, self.db.buffer.grid)
        sims += [jaccard(s, buffer_q) for s in self.db.buffer.sets]
        expected = sorted(
            ((sim, i) for i, sim in enumerate(sims)), key=lambda t: (-t[0], t[1])
        )[: min(k, len(sims))]
        got = [(n.similarity, n.index) for n in result.neighbors]
        assert [round(s, 12) for s, _ in got] == [round(s, 12) for s, _ in expected]
        assert [i for _, i in got] == [i for _, i in expected]
        # The query again: the second run may be served from the result
        # cache and must be bit-identical to the fresh computation above.
        again = self.db.query(query, k=k, method="index")
        assert [(n.similarity, n.index) for n in again.neighbors] == got

    @rule(offset=st.integers(0, 1000))
    def query_self_found(self, offset):
        """Every series ever acknowledged is still its own best match."""
        index = offset % len(self.model)
        result = self.db.query(self.model[index], k=1, method="naive")
        assert result.best.similarity == 1.0


TestDurabilityStateful = DurabilityMachine.TestCase
TestDurabilityStateful.settings = settings(
    max_examples=20, stateful_step_count=10, deadline=None
)
