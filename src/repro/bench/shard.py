"""The shard lever: scatter-gather throughput vs the in-process engine.

One phase, three verdicts (docs/sharding.md):

- **throughput** — batch k-NN queries/second of an N-shard
  :class:`~repro.core.shard.ShardedDatabase` against the same batch on
  the single-process engine run serially.  Shards are whole processes,
  so unlike the thread-pool parallel lever the speedup survives the
  GIL; the CI gate asserts ≥2x at 4 shards on the 4-vCPU runner.
- **bit-identity** — every sharded answer must equal the
  single-process answer bit for bit (similarities compared by
  ``float.hex``, never a tolerance), the scatter-gather correctness
  contract.
- **fault recovery** — an acked insert must survive its worker being
  SIGKILLed: the next query degrades (names the dead shard in
  ``skipped_shards``) while the engine restarts the worker, and the
  query after that is complete again and finds the inserted series.

Wired into ``sts3 shard-bench`` and ``benchmarks/bench_shard.py`` (the
CI gate).  Like the parallel lever, the record carries
``available_cores`` so a ~1.0x run on a one-core machine reads as the
hardware ceiling it is, not a regression.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path

import numpy as np

from ..core import STS3Database
from ..core.executor import available_cpu_count
from ..core.shard import ShardedDatabase
from .levers import _best_of

__all__ = ["run_shard_phase"]


def _hex_answers(results) -> list:
    """Neighbor lists with similarities as exact hex — bitwise compare."""
    return [
        [(n.index, float(n.similarity).hex()) for n in r.neighbors]
        for r in results
    ]


def run_shard_phase(
    n_series: int = 4000,
    n_queries: int = 64,
    length: int = 128,
    sigma: float = 3,
    epsilon: float = 0.58,
    k: int = 10,
    seed: int = 42,
    repeats: int = 3,
    shards: int = 4,
    directory: str | Path | None = None,
    check_faults: bool = True,
) -> dict:
    """Benchmark and verify the sharded engine; returns the phase record.

    ``directory`` hosts the sharded archive (a temporary one by
    default).  ``check_faults=False`` skips the worker-kill drill
    (useful when timing repeatedly on one archive).
    """
    rng = np.random.default_rng(seed)
    base = [rng.normal(size=length) for _ in range(n_series)]
    queries = [rng.normal(size=length) for _ in range(n_queries)]

    single = STS3Database(base, sigma=sigma, epsilon=epsilon, normalize=False)
    single.query_batch(queries[:4], k=k, method="index")  # warm caches
    single_results = single.query_batch(queries, k=k, method="index")
    single_seconds = _best_of(
        lambda: single.query_batch(queries, k=k, method="index"), repeats
    )

    tmp = None
    if directory is None:
        tmp = tempfile.TemporaryDirectory(prefix="sts3-shard-bench-")
        directory = Path(tmp.name) / "shards"
    try:
        sharded = ShardedDatabase.from_database(single, shards, directory)
        single.close()
        try:
            sharded.query_batch(queries[:4], k=k, method="index")  # warm workers
            sharded_results = sharded.query_batch(queries, k=k, method="index")
            sharded_seconds = _best_of(
                lambda: sharded.query_batch(queries, k=k, method="index"),
                repeats,
            )
            identical = _hex_answers(single_results) == _hex_answers(
                sharded_results
            )
            complete = all(r.complete for r in sharded_results)
            record = {
                "phase": "shard",
                "n_series": n_series,
                "n_queries": n_queries,
                "k": k,
                "shards": shards,
                "available_cores": available_cpu_count(),
                "single_seconds": round(single_seconds, 6),
                "sharded_seconds": round(sharded_seconds, 6),
                "shard_speedup": round(single_seconds / sharded_seconds, 3),
                "single_queries_per_second": round(
                    n_queries / single_seconds, 2
                ),
                "sharded_queries_per_second": round(
                    n_queries / sharded_seconds, 2
                ),
                "identical_neighbor_lists": identical,
                "all_complete": complete,
            }
            if check_faults:
                record.update(_fault_drill(sharded, rng, length, k))
            return record
        finally:
            sharded.close()
    finally:
        if tmp is not None:
            tmp.cleanup()


def _fault_drill(sharded: ShardedDatabase, rng, length: int, k: int) -> dict:
    """Kill the worker owning a fresh acked insert; verify the contract.

    Expected sequence: the post-kill query is degraded and names the
    dead shard; the worker restarts behind it (replaying its WAL); the
    follow-up query is complete and finds the inserted series at
    exactly similarity 1.0 under its acked id.
    """
    probe = rng.normal(size=length) * 8.0  # out-of-bound: exercises the buffer
    report = sharded.insert(probe)
    victim = report["shard"]
    sharded.kill_worker(victim)
    started = time.perf_counter()
    degraded = sharded.query(probe, k=k, method="index")
    recovered = sharded.query(probe, k=k, method="index")
    recovery_seconds = time.perf_counter() - started
    found = any(
        n.index == report["id"] and n.similarity == 1.0
        for n in recovered.neighbors
    )
    return {
        "fault_insert_id": report["id"],
        "fault_killed_shard": victim,
        "fault_degraded_first": not degraded.complete
        and f"shard-{victim}" in degraded.skipped_shards,
        "fault_recovered_complete": recovered.complete,
        "fault_acked_write_found": found,
        "fault_recovery_seconds": round(recovery_seconds, 6),
        "fault_ok": (
            not degraded.complete
            and f"shard-{victim}" in degraded.skipped_shards
            and recovered.complete
            and found
        ),
    }
