"""Hypothesis property tests for core STS3 invariants.

These complement the example-based tests with randomized checks of the
mathematical claims the algorithms rest on: bound admissibility, grid
determinism, coarse/fine consistency, and robustness guarantees.
"""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import Bound, Grid, PruningSearcher, transform, transform_query
from repro.core.jaccard import jaccard
from repro.core.pruning import zone_histogram
from repro.core.setrep import CompressedSet

series_strategy = arrays(
    np.float64,
    st.integers(min_value=4, max_value=80),
    elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
)

cell_params = st.tuples(
    st.integers(min_value=1, max_value=9),         # sigma
    st.floats(min_value=0.05, max_value=3.0),      # epsilon
)


def _array_of(n: int):
    return arrays(
        np.float64,
        n,
        elements=st.floats(min_value=-10, max_value=10, allow_nan=False),
    )


#: two series of one shared random length.
series_pair = st.integers(min_value=4, max_value=60).flatmap(
    lambda n: st.tuples(_array_of(n), _array_of(n))
)


@given(series_strategy, cell_params)
def test_transform_deterministic(series, params):
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    a = transform(series, grid)
    b = transform(series, grid)
    assert np.array_equal(a, b)


@given(series_strategy, cell_params)
def test_transform_ids_in_range(series, params):
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    cell_set = transform(series, grid)
    assert len(cell_set) >= 1
    assert cell_set.min() >= 0
    assert cell_set.max() < grid.n_cells


@given(series_pair, cell_params, st.integers(1, 6))
def test_zone_bound_admissible(pair, params, scale):
    """Σ_i min(|S_i|, |Q_i|) >= |S ∩ Q| for any zone scale."""
    a, b = pair
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_database([a, b]), sigma, epsilon)
    set_a, set_b = transform(a, grid), transform(b, grid)
    hist_a = zone_histogram(set_a, grid, scale)
    hist_b = zone_histogram(set_b, grid, scale)
    bound = np.minimum(hist_a, hist_b).sum()
    true_inter = np.intersect1d(set_a, set_b, assume_unique=True).size
    assert bound >= true_inter


@given(series_strategy, cell_params, st.integers(1, 6))
def test_zone_histogram_partitions_set(series, params, scale):
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    cell_set = transform(series, grid)
    hist = zone_histogram(cell_set, grid, scale)
    assert hist.sum() == len(cell_set)
    assert (hist >= 0).all()


@given(series_pair, cell_params)
def test_pruning_bound_dominates_similarity(pair, params):
    a, b = pair
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_database([a, b]), sigma, epsilon)
    sets = [transform(a, grid)]
    searcher = PruningSearcher(sets, grid, scale=3)
    query_set = transform(b, grid)
    (bound,) = searcher.upper_bounds(query_set)
    assert jaccard(sets[0], query_set) <= bound + 1e-12


@given(series_strategy)
def test_transform_query_set_size_bounded(series):
    """|Q'| never exceeds the point count, even with out-points."""
    half = series[: len(series) // 2]
    assume(len(half) >= 2)
    grid = Grid.from_cell_sizes(Bound.of_series(half), 2, 0.5)
    query_set = transform_query(series, grid)
    assert 1 <= len(query_set) <= len(series)


@given(series_strategy)
def test_out_point_ids_disjoint_from_grid(series):
    half = series[: len(series) // 2]
    assume(len(half) >= 2)
    grid = Grid.from_cell_sizes(Bound.of_series(half), 2, 0.5)
    query_set = transform_query(series, grid)
    in_bound_ids = query_set[query_set < grid.n_cells]
    out_ids = query_set[query_set >= grid.n_cells]
    assert len(np.intersect1d(in_bound_ids, out_ids)) == 0


@given(
    st.lists(st.integers(min_value=0, max_value=10**7), min_size=0, max_size=200)
)
def test_compressed_set_roundtrip(values):
    ids = np.unique(np.asarray(values, dtype=np.int64))
    assert np.array_equal(CompressedSet.encode(ids).decode(), ids)


@given(series_strategy, st.integers(2, 6))
def test_coarse_sets_smaller_than_fine(series, scale):
    """A coarser grid can only merge cells, never split them."""
    bound = Bound.of_series(series)
    fine = Grid.from_cell_sizes(bound, 1, 0.05)
    coarse = Grid.from_resolution(bound, scale)
    fine_set = transform(series, fine)
    coarse_set = transform(series, coarse)
    assert len(coarse_set) <= max(len(fine_set), scale * scale)
    assert len(coarse_set) <= scale * scale


@given(series_strategy, cell_params)
def test_jaccard_of_shifted_window_reasonable(series, params):
    """Sanity: similarity of a series with itself is 1 under any grid."""
    sigma, epsilon = params
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    cell_set = transform(series, grid)
    assert jaccard(cell_set, cell_set) == 1.0
