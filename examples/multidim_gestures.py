"""Multi-dimensional gesture search (Section 5.1).

A gesture is recorded as three synchronized accelerometer axes — the
cricket-umpire dataset family of the paper.  STS3 extends to
d-dimensional series by gridding the (t, x, y, z) space into cells with
a mixed-radix ID; all four search variants then run unchanged.

This example compares 1-NN classification on the full 3-D series
against the best single-axis projection, illustrating the paper's
observation that the time shift is shared across dimensions (so one
σ works for all axes).

Run with::

    python examples/multidim_gestures.py
"""

from __future__ import annotations

from repro import STS3Database
from repro.core.tuning import sts3_error_rate
from repro.data.ucr_like import gesture3d


def main() -> None:
    full, projections = gesture3d(
        n_classes=6,
        n_train_per_class=15,
        n_test_per_class=15,
        length=150,
        seed=4,
    )
    print(f"gestures: {full.n_classes} classes, series shape "
          f"{full.train.series[0].shape}\n")

    sigma, epsilon = 4, 0.5
    print(f"1-NN error with sigma={sigma}, epsilon={epsilon}:")
    for name, ds in projections.items():
        err = sts3_error_rate(ds.train, ds.test, sigma, epsilon)
        print(f"  {name:>10}: {err:.3f}")
    err_3d = sts3_error_rate(full.train, full.test, sigma, epsilon)
    print(f"  {'3-D full':>10}: {err_3d:.3f}")

    # k-NN search on the full 3-D series through every variant.
    db = STS3Database(list(full.train.series), sigma=sigma, epsilon=epsilon)
    query = full.test.series[0]
    print("\n3-NN of the first test gesture:")
    for method in ("naive", "index", "pruning", "approximate"):
        result = db.query(query, k=3, method=method)
        labels = [int(full.train.labels[n.index]) for n in result.neighbors]
        print(f"  {method:>12}: indices {result.indices()} labels {labels}")
    print(f"\ntrue label: {int(full.test.labels[0])}")


if __name__ == "__main__":
    main()
