"""Euclidean distance (ED) — the fastest classical baseline.

ED compares equal-length series position by position.  The k-NN scan
uses *early abandoning* (the paper's "early-stopping strategy"): the
running partial sum of squares is compared against the best-so-far
distance and the computation stops as soon as it is exceeded.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["euclidean", "squared_euclidean", "euclidean_early_abandon"]


def _check_equal_length(a: np.ndarray, b: np.ndarray) -> None:
    if a.shape != b.shape:
        raise ParameterError(
            f"ED requires equal shapes, got {a.shape} vs {b.shape}"
        )


def squared_euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Sum of squared point-wise differences."""
    _check_equal_length(a, b)
    diff = a - b
    return float(np.dot(diff.ravel(), diff.ravel()))


def euclidean(a: np.ndarray, b: np.ndarray) -> float:
    """Euclidean distance between equal-length series."""
    return float(np.sqrt(squared_euclidean(a, b)))


def euclidean_early_abandon(
    a: np.ndarray, b: np.ndarray, cutoff: float, block: int = 64
) -> float:
    """ED with early abandoning against ``cutoff``.

    Accumulates squared differences in blocks; once the partial sum
    exceeds ``cutoff**2`` the true distance cannot beat ``cutoff`` and
    ``inf`` is returned.  Block accumulation keeps the inner work
    vectorized while still abandoning early on clear non-matches.
    """
    _check_equal_length(a, b)
    if cutoff == float("inf"):
        return euclidean(a, b)
    limit = cutoff * cutoff
    total = 0.0
    flat_a = a.ravel()
    flat_b = b.ravel()
    for start in range(0, len(flat_a), block):
        chunk = flat_a[start : start + block] - flat_b[start : start + block]
        total += float(np.dot(chunk, chunk))
        if total > limit:
            return float("inf")
    return float(np.sqrt(total))
