"""Experiment-harness support: timers, text tables, workload scaling.

Used by the ``benchmarks/`` suite to regenerate every table and figure
of the paper's evaluation section with consistent formatting and a
single ``REPRO_SCALE`` knob controlling workload sizes.
"""

from .levers import (
    run_cache_phase,
    run_combined_phase,
    run_lever_phases,
    run_mmap_phase,
    run_parallel_phase,
)
from .replication import run_replication_phase
from .runner import repro_scale, run_traced, scaled
from .shard import run_shard_phase
from .tables import render_table
from .timer import Timer, time_callable

__all__ = [
    "Timer",
    "render_table",
    "repro_scale",
    "run_cache_phase",
    "run_combined_phase",
    "run_lever_phases",
    "run_mmap_phase",
    "run_parallel_phase",
    "run_replication_phase",
    "run_shard_phase",
    "run_traced",
    "scaled",
    "time_callable",
]
