"""Set representation of time series (Algorithms 1 and 6).

A set representation is a **sorted array of unique int64 cell IDs**.
Sorted arrays make the Jaccard intersection a linear merge (the paper's
"order list for the convenience of linear-time intersection") and let
numpy do the heavy lifting.

:func:`transform` is Algorithm 1 (all points assumed in-bound);
:func:`transform_query` is Algorithm 6, which handles query points
falling outside the database bound by giving them cell IDs from a
separate ID space offset by ``maxNumber`` — out-points can then only
match other out-points, never a database cell.

The module also houses :class:`CompressedSet`, the delta-encoded set
storage suggested by the paper's future work ("developing a compression
strategy for time series").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .grid import Bound, Grid

__all__ = ["transform", "transform_query", "CompressedSet"]


def transform(series: np.ndarray, grid: Grid) -> np.ndarray:
    """Algorithm 1: convert a series to its sorted unique cell-ID set.

    Every point is assigned a cell (points on/outside the bound edge
    are clamped to border cells); duplicate IDs collapse because the
    representation is a set.
    """
    ids = grid.cell_ids_per_point(series)
    return np.unique(ids)


def transform_query(series: np.ndarray, grid: Grid) -> np.ndarray:
    """Algorithm 6: transform a query that may leave the database bound.

    In-bound points get ordinary cell IDs so they can match database
    cells.  Out-points are gridded against their *own* bound (with the
    same cell sizes) and shifted past ``maxNumber`` — the maximal cell
    ID of the database grid — so their IDs are disjoint from every
    database cell.  This preserves ``|Q|`` (the union term of Jaccard)
    without letting out-points create spurious matches.
    """
    mask = grid.bound.contains(series)
    if mask.all():
        return transform(series, grid)

    points = series if series.ndim > 1 else series[:, None]
    parts: list[np.ndarray] = []
    if mask.any():
        inside = grid.cell_ids_per_point(series)[mask]
        parts.append(inside)

    out_points = points[~mask]
    out_series = out_points if series.ndim > 1 else out_points[:, 0]
    out_bound = Bound.of_series(out_series)
    out_grid = Grid(out_bound, grid.col_width, grid.row_heights)
    outside = out_grid.cell_ids_per_point(out_series) + grid.n_cells
    parts.append(outside)
    return np.unique(np.concatenate(parts))


@dataclass
class CompressedSet:
    """Delta-encoded storage for a sorted cell-ID set.

    Sorted IDs are stored as a first value plus successive differences
    in the narrowest unsigned integer dtype that fits, typically
    shrinking memory by 4-8x for dense representations.  This is the
    compression extension flagged as future work in the paper's
    conclusion; an ablation bench measures the size/decode trade-off.
    """

    first: int
    deltas: np.ndarray
    length: int

    @staticmethod
    def encode(cell_set: np.ndarray) -> "CompressedSet":
        ids = np.asarray(cell_set, dtype=np.int64)
        if ids.size == 0:
            return CompressedSet(first=0, deltas=np.empty(0, dtype=np.uint8), length=0)
        deltas = np.diff(ids)
        if deltas.size and deltas.min() <= 0:
            raise ValueError("cell set must be strictly increasing")
        max_delta = int(deltas.max()) if deltas.size else 0
        for dtype in (np.uint8, np.uint16, np.uint32):
            if max_delta <= np.iinfo(dtype).max:
                packed = deltas.astype(dtype)
                break
        else:
            packed = deltas.astype(np.uint64)
        return CompressedSet(first=int(ids[0]), deltas=packed, length=int(ids.size))

    def decode(self) -> np.ndarray:
        """Recover the original sorted int64 cell-ID array."""
        if self.length == 0:
            return np.empty(0, dtype=np.int64)
        out = np.empty(self.length, dtype=np.int64)
        out[0] = self.first
        if self.length > 1:
            out[1:] = self.first + np.cumsum(self.deltas.astype(np.int64))
        return out

    @property
    def nbytes(self) -> int:
        """Approximate storage footprint of the encoded form."""
        return 8 + self.deltas.nbytes
