"""The query path emits the documented spans and counters.

Pins the span vocabulary of docs/observability.md against the real
instrumentation: every searcher, the batch engine, buffered updates,
and persistence.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import STS3Database
from repro.core.persistence import load_database, save_database
from repro.obs import MetricsRegistry, Tracer, get_registry, set_registry, use_tracer

METHODS = ["naive", "index", "pruning", "approximate"]


@pytest.fixture(autouse=True)
def fresh_registry():
    previous = set_registry(MetricsRegistry())
    try:
        yield get_registry()
    finally:
        set_registry(previous)


def traced(fn):
    with use_tracer(Tracer()) as tracer:
        result = fn()
    return result, tracer


class TestQuerySpans:
    @pytest.mark.parametrize("method", METHODS)
    def test_query_emits_stage_spans(self, small_db, small_workload, method):
        q = small_workload.queries[0]
        result, tracer = traced(lambda: small_db.query(q, k=3, method=method))
        assert len(result.neighbors) == 3
        counts = tracer.stage_counts()
        assert counts["query"] == 1
        assert counts["transform"] == 1
        assert counts["refine"] >= 1
        assert counts["select_topk"] == 1
        if method != "naive":  # the naive scan has no filter phase
            assert counts["filter"] >= 1

    @pytest.mark.parametrize("method", METHODS)
    def test_stage_spans_nest_under_query(self, small_db, small_workload, method):
        q = small_workload.queries[0]
        _, tracer = traced(lambda: small_db.query(q, k=3, method=method))
        forest = tracer.to_dicts()
        roots = [n["name"] for n in forest]
        assert roots.count("query") == 1
        query_node = next(n for n in forest if n["name"] == "query")
        assert query_node["attrs"]["method"] == method

        def names(node):
            out = {node["name"]}
            for child in node["children"]:
                out |= names(child)
            return out

        assert {"transform", "refine", "select_topk"} <= names(query_node)

    def test_query_counter_by_method(self, small_db, small_workload, fresh_registry):
        q = small_workload.queries[0]
        small_db.query(q, k=3, method="index")
        small_db.query(q, k=3, method="index")
        small_db.query(q, k=3, method="naive")
        counter = fresh_registry.counter("sts3_queries_total")
        assert counter.value(method="index") == 2.0
        assert counter.value(method="naive") == 1.0


class TestBatchSpans:
    def test_batch_emits_tiles_and_kernel_counter(self, small_db, small_workload,
                                                  fresh_registry):
        queries = small_workload.queries[:6]
        results, tracer = traced(
            lambda: small_db.query_batch(queries, k=3, method="index")
        )
        assert len(results) == 6
        counts = tracer.stage_counts()
        assert counts["query_batch"] == 1
        assert counts["tile"] >= 1
        assert counts["filter"] >= 2  # locate_postings + plan_tiles + per tile
        assert counts["refine"] >= 1
        assert counts["select_topk"] >= 1

        tiles = fresh_registry.counter("sts3_batch_tiles_total")
        kernel_total = sum(
            tiles.value(kernel=name) for name in ("sparse", "dense", "bitset")
        )
        assert kernel_total == counts["tile"]
        selected = fresh_registry.counter("sts3_kernel_selected_total")
        assert sum(
            selected.value(kernel=name) for name in ("sparse", "dense", "bitset")
        ) == 1.0
        batch_counter = fresh_registry.counter("sts3_batch_queries_total")
        assert batch_counter.value(method="index") == 6.0

    def test_tile_children_account_for_stage_time(self, small_db, small_workload):
        _, tracer = traced(
            lambda: small_db.query_batch(small_workload.queries[:6], k=3,
                                         method="index")
        )
        forest = tracer.to_dicts()

        def find(nodes, name):
            for node in nodes:
                if node["name"] == name:
                    return node
                found = find(node["children"], name)
                if found:
                    return found
            return None

        tile = find(forest, "tile")
        assert tile is not None
        child_names = {c["name"] for c in tile["children"]}
        assert {"filter", "refine", "select_topk"} <= child_names
        child_ns = sum(c["duration_ns"] for c in tile["children"])
        assert child_ns <= tile["duration_ns"]

    def test_non_index_batch_still_traces(self, small_db, small_workload):
        results, tracer = traced(
            lambda: small_db.query_batch(small_workload.queries[:3], k=3,
                                         method="pruning")
        )
        assert len(results) == 3
        counts = tracer.stage_counts()
        assert counts["query_batch"] == 1
        assert counts.get("tile") is None  # scalar fallback: no engine tiles
        assert counts["refine"] >= 3


class TestUpdateSpans:
    @pytest.fixture
    def tiny_db(self, rng):
        series = [rng.normal(size=32) for _ in range(20)]
        return STS3Database(series, sigma=3, epsilon=0.5)

    @pytest.fixture
    def out_of_bound_series(self, rng):
        return np.concatenate([rng.normal(size=31), [50.0]])

    def test_insert_counter_paths(self, tiny_db, rng, out_of_bound_series,
                                  fresh_registry):
        tiny_db.insert(np.array(tiny_db.series[0]))  # in-bound: direct
        tiny_db.insert(out_of_bound_series)          # out-of-bound: buffered
        inserts = fresh_registry.counter("sts3_inserts_total")
        assert inserts.value(path="direct") == 1.0
        assert inserts.value(path="buffered") == 1.0

    def test_buffered_query_emits_merge(self, tiny_db, rng, out_of_bound_series,
                                        fresh_registry):
        tiny_db.insert(out_of_bound_series)
        assert len(tiny_db.buffer) == 1
        _, tracer = traced(
            lambda: tiny_db.query(rng.normal(size=32), k=3, method="index")
        )
        assert tracer.stage_counts()["merge"] == 1
        merges = fresh_registry.counter("sts3_buffer_merges_total")
        assert merges.value() == 1.0

    def test_flush_emits_seal_span_and_counter(self, tiny_db,
                                               out_of_bound_series,
                                               fresh_registry):
        tiny_db.insert(out_of_bound_series)
        _, tracer = traced(tiny_db.flush)
        counts = tracer.stage_counts()
        assert counts["flush"] == 1
        assert counts["segment.seal"] == 1
        assert len(tiny_db.buffer) == 0
        sealed = fresh_registry.counter("sts3_segments_sealed_total")
        assert sealed.value() == 1.0
        # Sealing is not a rebuild: the rebuild counter moved to compact().
        assert fresh_registry.counter("sts3_rebuilds_total").value() == 0.0

    def test_compact_emits_span_and_rebuild_counter(self, tiny_db,
                                                    out_of_bound_series,
                                                    fresh_registry):
        tiny_db.insert(out_of_bound_series)
        tiny_db.flush()
        _, tracer = traced(tiny_db.compact)
        assert tracer.stage_counts()["segment.compact"] == 1
        assert len(tiny_db.catalog.segments) == 1
        rebuilds = fresh_registry.counter("sts3_rebuilds_total")
        assert rebuilds.value() == 1.0

    def test_multi_segment_query_emits_plan_and_merge(self, tiny_db, rng,
                                                      out_of_bound_series):
        tiny_db.insert(out_of_bound_series)
        tiny_db.flush()
        _, tracer = traced(
            lambda: tiny_db.query(rng.normal(size=32), k=3, method="index")
        )
        counts = tracer.stage_counts()
        assert counts["plan"] == 1
        assert counts["merge"] == 1
        assert counts["transform"] == 2  # one per segment


class TestPersistenceSpans:
    def test_save_load_round_trip_spans(self, small_db, small_workload, tmp_path,
                                        fresh_registry):
        path = tmp_path / "db.npz"

        _, tracer = traced(lambda: save_database(small_db, path))
        assert tracer.stage_counts()["persist.save"] == 1

        loaded, tracer = traced(lambda: load_database(path))
        assert tracer.stage_counts()["persist.load"] == 1

        persist = fresh_registry.counter("sts3_persist_total")
        assert persist.value(op="save") == 1.0
        assert persist.value(op="load") == 1.0

        q = small_workload.queries[0]
        original = small_db.query(q, k=3, method="index")
        restored = loaded.query(q, k=3, method="index")
        assert [n.index for n in original.neighbors] == [
            n.index for n in restored.neighbors
        ]


class TestDisabledCost:
    def test_untraced_query_records_no_spans(self, small_db, small_workload):
        tracer = Tracer()  # never installed
        small_db.query(small_workload.queries[0], k=3, method="index")
        assert tracer.finished() == []

    def test_tracing_does_not_change_results(self, small_db, small_workload):
        q = small_workload.queries[0]
        plain = small_db.query(q, k=5, method="index")
        traced_result, _ = traced(lambda: small_db.query(q, k=5, method="index"))
        assert [(n.index, n.similarity) for n in plain.neighbors] == [
            (n.index, n.similarity) for n in traced_result.neighbors
        ]
