"""Wire protocol of the STS3 query service (docs/serving.md).

One framing, two layers:

- **Frame** — a 4-byte big-endian unsigned payload length, then the
  payload.  Length-prefixing makes message boundaries explicit, so a
  reader never scans for delimiters and a torn connection is detected
  as a short read, not a hang.
- **Payload** — a 4-byte big-endian header length, a UTF-8 JSON
  *header*, then the raw bytes of zero or more numpy arrays,
  concatenated in header order.  The header's ``arrays`` key describes
  each blob (``dtype`` as a numpy dtype string, ``shape``); everything
  else in the header is message-specific (see the request/response
  schemas in docs/serving.md).

Series travel as raw ``float64`` bytes, not JSON numbers, for two
reasons: a 256-sample series is 2 KiB of binary vs ~5 KiB of decimal
text, and — more importantly — the bytes *are* the array, so what the
server searches is bit-for-bit what the client sent.  Similarities in
responses are JSON floats; Python's ``json`` emits ``repr`` (shortest
round-trip) form, so they too survive the wire exactly.

Everything here is transport-agnostic pure functions plus a pair of
asyncio stream helpers; the sync client (:mod:`repro.serve.client`)
reuses :func:`pack_message` / :func:`unpack_payload` over a plain
socket.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Sequence

import numpy as np

from ..exceptions import ReproError
from ..core.result import Neighbor, QueryResult, SearchStats

__all__ = [
    "DEFAULT_PORT",
    "MAX_FRAME_BYTES",
    "OP_PROMOTE",
    "OP_SHIP",
    "OP_SUBSCRIBE",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServeError",
    "ERROR_CODES",
    "HTTP_STATUS",
    "pack_message",
    "unpack_payload",
    "read_message",
    "write_message",
    "result_to_wire",
    "result_from_wire",
]

#: default TCP port of the binary protocol (the HTTP adapter defaults
#: to the next port up).  No IANA meaning — 0x5753 is "SW" reversed.
DEFAULT_PORT = 21335

#: protocol revision, echoed in every ``ping`` response; a server
#: rejects frames whose header carries a different ``v``.
PROTOCOL_VERSION = 1

#: refuse frames larger than this (64 MiB) — a corrupt or hostile
#: length prefix must not translate into an unbounded allocation.
MAX_FRAME_BYTES = 64 << 20

#: replication stream ops (docs/replication.md), spoken over the same
#: frame format on the shard pipes.  ``subscribe`` opens (or probes) a
#: follower's stream and returns its apply watermark; ``ship`` carries
#: a contiguous run of raw WAL frames as a uint8 blob plus
#: ``first_seq``/``last_seq``/``count`` in the header; ``promote``
#: carries the new fencing ``epoch`` and flips the follower into a
#: journaling primary.  Every replication reply echoes the sender's
#: current epoch, which is what makes zombie-primary fencing work.
OP_SUBSCRIBE = "subscribe"
OP_SHIP = "ship"
OP_PROMOTE = "promote"

_LEN = struct.Struct(">I")

#: error codes a request can fail with, and what they mean.  The HTTP
#: adapter maps them through :data:`HTTP_STATUS`; binary responses
#: carry the code verbatim in ``{"status": "error", "code": ...}``.
ERROR_CODES = (
    "BAD_REQUEST",   # malformed header, unknown op, invalid parameters
    "BUSY",          # admission queue full — shed, retry with backoff
    "RATE_LIMITED",  # this client exceeded its token bucket
    "DRAINING",      # server is shutting down; no new work accepted
    "INTERNAL",      # unexpected server-side failure
)

#: HTTP status per error code (the adapter's contract).
HTTP_STATUS = {
    "BAD_REQUEST": 400,
    "BUSY": 429,
    "RATE_LIMITED": 429,
    "DRAINING": 503,
    "INTERNAL": 500,
}


class ProtocolError(ReproError):
    """A frame violated the wire format (bad length, header, or blob)."""


class ServeError(ReproError):
    """A request the service refused or failed, with a wire code.

    ``code`` is one of :data:`ERROR_CODES`; the server serializes it
    into the error response and the client re-raises it on its side,
    so the exception crosses the wire without losing its meaning.
    """

    def __init__(self, code: str, message: str):
        if code not in ERROR_CODES:
            raise ValueError(f"unknown serve error code {code!r}")
        super().__init__(message)
        self.code = code


# -- payload packing ----------------------------------------------------


def pack_message(header: dict, arrays: Sequence[np.ndarray] = ()) -> bytes:
    """One wire frame: length prefix + header JSON + array blobs."""
    blobs = [np.ascontiguousarray(a) for a in arrays]
    head = dict(header)
    head["arrays"] = [
        {"dtype": b.dtype.str, "shape": list(b.shape)} for b in blobs
    ]
    head_bytes = json.dumps(head, separators=(",", ":")).encode("utf-8")
    payload_len = _LEN.size + len(head_bytes) + sum(b.nbytes for b in blobs)
    if payload_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"message of {payload_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte frame limit"
        )
    parts = [
        _LEN.pack(payload_len),
        _LEN.pack(len(head_bytes)),
        head_bytes,
    ]
    parts.extend(b.tobytes() for b in blobs)
    return b"".join(parts)


def unpack_payload(payload: bytes) -> tuple[dict, list[np.ndarray]]:
    """Parse a frame payload back into ``(header, arrays)``.

    Arrays are fresh writable copies (not views into ``payload``), so
    callers may hold or mutate them after the receive buffer is gone.
    """
    if len(payload) < _LEN.size:
        raise ProtocolError("truncated payload: missing header length")
    (head_len,) = _LEN.unpack_from(payload, 0)
    head_end = _LEN.size + head_len
    if head_end > len(payload):
        raise ProtocolError(
            f"truncated payload: header claims {head_len} bytes, "
            f"{len(payload) - _LEN.size} available"
        )
    try:
        header = json.loads(payload[_LEN.size:head_end].decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"header is not valid JSON: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError("header must be a JSON object")
    arrays: list[np.ndarray] = []
    offset = head_end
    for meta in header.get("arrays", ()):
        try:
            dtype = np.dtype(meta["dtype"])
            shape = tuple(int(n) for n in meta["shape"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ProtocolError(f"bad array descriptor {meta!r}") from exc
        nbytes = dtype.itemsize * int(np.prod(shape, dtype=np.int64))
        if offset + nbytes > len(payload):
            raise ProtocolError(
                f"truncated payload: array needs {nbytes} bytes at "
                f"offset {offset}, payload is {len(payload)}"
            )
        flat = np.frombuffer(payload, dtype=dtype, count=int(np.prod(shape, dtype=np.int64)), offset=offset)
        arrays.append(flat.reshape(shape).copy())
        offset += nbytes
    if offset != len(payload):
        raise ProtocolError(
            f"{len(payload) - offset} trailing bytes after the last array"
        )
    return header, arrays


# -- asyncio stream helpers ---------------------------------------------


async def read_message(
    reader: asyncio.StreamReader,
    max_bytes: int = MAX_FRAME_BYTES,
) -> tuple[dict, list[np.ndarray]] | None:
    """Read one frame; ``None`` on clean EOF before any byte."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError("connection torn mid length prefix") from exc
    (length,) = _LEN.unpack(prefix)
    if length > max_bytes:
        raise ProtocolError(
            f"frame of {length} bytes exceeds the {max_bytes}-byte limit"
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            f"connection torn mid frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return unpack_payload(payload)


async def write_message(
    writer: asyncio.StreamWriter,
    header: dict,
    arrays: Sequence[np.ndarray] = (),
) -> None:
    """Write one frame and drain the transport."""
    writer.write(pack_message(header, arrays))
    await writer.drain()


# -- result serialization -----------------------------------------------


def result_to_wire(result: QueryResult) -> dict:
    """A :class:`QueryResult` as a JSON-ready dict (lossless)."""
    stats = result.stats
    return {
        "neighbors": [[n.index, n.similarity] for n in result.neighbors],
        "stats": {
            "candidates": stats.candidates,
            "exact_computations": stats.exact_computations,
            "pruned": stats.pruned,
            "filter_rounds": stats.filter_rounds,
            "final_candidates": stats.final_candidates,
        },
        "complete": result.complete,
        "skipped_segments": list(result.skipped_segments),
        "degraded_reason": result.degraded_reason,
        "skipped_shards": list(result.skipped_shards),
    }


def result_from_wire(payload: dict) -> QueryResult:
    """Invert :func:`result_to_wire` (bit-identical round-trip)."""
    try:
        neighbors = [
            Neighbor(similarity=float(sim), index=int(idx))
            for idx, sim in payload["neighbors"]
        ]
        stats = SearchStats(**payload["stats"])
        return QueryResult(
            neighbors=neighbors,
            stats=stats,
            complete=bool(payload["complete"]),
            skipped_segments=list(payload["skipped_segments"]),
            degraded_reason=payload["degraded_reason"],
            # pre-shard peers omit the key; absent means none skipped
            skipped_shards=list(payload.get("skipped_shards", ())),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(f"malformed result payload: {exc}") from exc
