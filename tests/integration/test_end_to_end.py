"""End-to-end integration tests exercising the full public API.

These walk the same paths the benchmarks do — build a workload, tune
parameters, run every search variant, classify — at miniature sizes,
so a regression anywhere in the stack fails here before it corrupts
benchmark output.
"""

import numpy as np
import pytest

from repro import STS3Database, tune_scale, tune_sigma_epsilon
from repro.baselines import DTWCascade, error_rate, measures, sakoe_chiba_window
from repro.core.tuning import sts3_error_rate
from repro.data import ecg_stream, make_workload
from repro.data.registry import load_dataset, paper_workload
from repro.data.ucr_like import device_profiles, gesture3d, noisy_templates


class TestSearchPipeline:
    def test_ecg_workload_end_to_end(self):
        stream = ecg_stream(80 * 128, seed=3)
        wl = make_workload(stream, n_series=70, n_queries=10, length=128)
        db = STS3Database(wl.database, sigma=3, epsilon=0.5)
        for query in wl.queries:
            naive = db.query(query, k=3, method="naive")
            index = db.query(query, k=3, method="index")
            pruning = db.query(query, k=3, method="pruning")
            assert naive.indices() == index.indices() == pruning.indices()

    def test_registry_workload_end_to_end(self):
        wl = paper_workload("CBF", scale=0.05, seed=1)
        db = STS3Database(wl.database, sigma=21, epsilon=0.18)
        result = db.query(wl.queries[0], k=1, method="index")
        assert 0 <= result.best.index < len(wl.database)

    def test_insert_then_query_pipeline(self):
        stream = ecg_stream(40 * 96, seed=4)
        wl = make_workload(stream, n_series=30, n_queries=5, length=96)
        db = STS3Database(wl.database, sigma=3, epsilon=0.5, buffer_capacity=3)
        for q in wl.queries[:3]:
            db.insert(q)
        result = db.query(wl.queries[0], k=1, method="naive")
        assert result.best.similarity == pytest.approx(1.0)


class TestClassificationPipeline:
    def test_sts3_competitive_on_device_data(self):
        """The paper's suitable scenario: STS3 should do well on device
        profiles (Section 6.2 / Table 4 CP/RD/ST rows)."""
        ds = device_profiles(
            n_classes=3, n_train_per_class=10, n_test_per_class=10,
            length=128, seed=6,
        )
        sts3_err = sts3_error_rate(ds.train, ds.test, sigma=24, epsilon=0.6)
        assert sts3_err <= 0.35

    def test_dtw_beats_sts3_on_noisy_data(self):
        """The unsuitable scenario (phoneme-like): DTW should be at
        least as accurate as STS3 (Section 7.2.2)."""
        ds = noisy_templates(
            n_classes=4, n_train_per_class=8, n_test_per_class=8,
            length=96, seed=6, noise_std=1.5,
        )
        window = sakoe_chiba_window(ds.length, 0.1)
        dtw_err = error_rate(ds.train, ds.test, measures.dtw(window=window))
        sts3_err = sts3_error_rate(ds.train, ds.test, sigma=3, epsilon=0.3)
        assert dtw_err <= sts3_err + 0.15  # DTW at least comparable

    def test_tuning_pipeline(self):
        ds = device_profiles(
            n_classes=2, n_train_per_class=8, n_test_per_class=4,
            length=96, seed=7,
        )
        result = tune_sigma_epsilon(
            ds.train, sigma_grid=[2, 8, 16], epsilon_grid=[0.2, 0.6]
        )
        test_err = sts3_error_rate(
            ds.train, ds.test, result.sigma, result.epsilon
        )
        assert 0.0 <= test_err <= 1.0


class TestMultiDimensional:
    def test_3d_gesture_search(self):
        """Section 5.1: the same algorithms run on (n, 3) series."""
        full, _ = gesture3d(
            n_classes=3, n_train_per_class=4, n_test_per_class=2,
            length=64, seed=8,
        )
        db = STS3Database(list(full.train.series), sigma=4, epsilon=0.5)
        query = full.test.series[0]
        for method in ("naive", "index", "pruning", "approximate"):
            result = db.query(query, k=2, method=method)
            assert len(result.neighbors) == 2

    def test_3d_classification(self):
        full, _ = gesture3d(
            n_classes=3, n_train_per_class=6, n_test_per_class=4,
            length=64, seed=9,
        )
        err = sts3_error_rate(full.train, full.test, sigma=4, epsilon=0.5)
        assert err < 0.7  # clearly better than the 2/3 random baseline


class TestBaselineIntegration:
    def test_dtw_cascade_on_workload(self):
        stream = ecg_stream(30 * 64, seed=10)
        wl = make_workload(stream, n_series=25, n_queries=2, length=64)
        cascade = DTWCascade(wl.database, window=6)
        idx, dist = cascade.nearest(wl.queries[0])
        assert 0 <= idx < 25
        assert np.isfinite(dist)

    def test_all_measures_agree_on_exact_duplicate(self):
        rng = np.random.default_rng(11)
        database = [rng.normal(size=48) for _ in range(15)]
        query = database[6].copy()
        from repro.baselines import knn_search

        for factory in (measures.ed(), measures.dtw(window=4), measures.lcss(0.5)):
            (best,) = knn_search(database, query, factory, k=1)
            assert best[0] == 6
