"""Synthetic ECG stream — substitute for the paper's private ECG dataset.

The paper's efficiency experiments (Section 7.3 onward) slice a
20,140,000-point ECG recording from Rakthanmanon et al. into
equal-length, z-normalized windows.  That recording is not available
offline, so this module synthesizes a quasi-periodic ECG-like stream:
each heartbeat is a PQRST complex built from Gaussian bumps, with
beat-to-beat jitter in period and amplitude, slow baseline wander, and
additive measurement noise.

Why the substitution preserves the relevant behaviour: the efficiency
experiments only need a long, locally self-similar 1-D stream whose
windows contain *many near but few exact* neighbours — that is what
makes inverted-list selection, zone pruning, and coarse-scale filtering
interesting.  A jittered periodic signal has exactly that neighbour
structure (windows one beat apart are similar but never identical).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from .generators import ensure_rng, gaussian_bump

__all__ = ["ECGConfig", "ecg_stream"]


#: The PQRST complex as (center offset, width, height), all as fractions
#: of the beat period (offsets/widths) or in millivolt-like units
#: (heights).  Values chosen to give a visually plausible ECG shape;
#: only the *structure* (sharp R spike, smaller P/T waves) matters.
_PQRST = (
    (0.20, 0.025, 0.12),   # P wave
    (0.34, 0.010, -0.14),  # Q dip
    (0.36, 0.012, 1.00),   # R spike
    (0.39, 0.012, -0.25),  # S dip
    (0.58, 0.045, 0.28),   # T wave
)


@dataclass(frozen=True)
class ECGConfig:
    """Parameters of the synthetic ECG stream.

    ``beat_period`` is the mean beat length in samples;
    ``period_jitter`` and ``amplitude_jitter`` are relative standard
    deviations of the per-beat period and per-wave amplitude;
    ``wander_std``/``wander_period`` shape the slow baseline drift;
    ``noise_std`` is the white measurement noise level.
    """

    beat_period: int = 96
    period_jitter: float = 0.06
    amplitude_jitter: float = 0.08
    wander_std: float = 0.08
    wander_period: int = 1500
    noise_std: float = 0.03

    def __post_init__(self) -> None:
        if self.beat_period < 8:
            raise ParameterError(f"beat_period must be >= 8, got {self.beat_period}")
        for name in ("period_jitter", "amplitude_jitter", "wander_std", "noise_std"):
            if getattr(self, name) < 0:
                raise ParameterError(f"{name} must be non-negative")
        if self.wander_period <= 0:
            raise ParameterError("wander_period must be positive")


def ecg_stream(
    n_points: int,
    seed: int | np.random.Generator | None = 0,
    config: ECGConfig = ECGConfig(),
) -> np.ndarray:
    """Generate ``n_points`` samples of a synthetic ECG recording.

    The stream is *not* z-normalized; the workload builder normalizes
    each sliced window, matching the paper's protocol.
    """
    if n_points <= 0:
        raise ParameterError(f"n_points must be positive, got {n_points}")
    rng = ensure_rng(seed)
    out = np.zeros(n_points, dtype=np.float64)

    # Lay PQRST complexes beat by beat until the stream is covered.
    cursor = 0
    while cursor < n_points:
        period = max(
            8,
            int(round(config.beat_period * (1.0 + rng.normal(0.0, config.period_jitter)))),
        )
        beat_len = min(period, n_points - cursor)
        beat = np.zeros(period, dtype=np.float64)
        for offset, width, height in _PQRST:
            jittered = height * (1.0 + rng.normal(0.0, config.amplitude_jitter))
            beat += gaussian_bump(
                period,
                center=offset * period,
                width=max(1.0, width * period),
                height=jittered,
            )
        out[cursor : cursor + beat_len] += beat[:beat_len]
        cursor += period

    # Slow baseline wander: a low-frequency random phase sinusoid pair.
    t = np.arange(n_points, dtype=np.float64)
    for harmonic in (1.0, 2.3):
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out += (config.wander_std / harmonic) * np.sin(
            2.0 * np.pi * harmonic * t / config.wander_period + phase
        )

    if config.noise_std > 0:
        out += rng.normal(0.0, config.noise_std, size=n_points)
    return out
