"""Extension bench: all-pairs similarity join over set representations.

Prefix-filtered exact join (``core/join.py``) against the brute-force
O(N²) scan, swept over the similarity threshold: the filter's prefixes
shorten as the threshold rises, so the join's advantage grows from
"break-even" at permissive thresholds to an order of magnitude at
strict ones — the standard prefix-filter trade-off, now available for
time-series near-duplicate detection through STS3's representation.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database, jaccard, similarity_join
from repro.data.workloads import ecg_workload

THRESHOLDS = [0.5, 0.7, 0.9]


def _brute_force(sets, threshold):
    pairs = 0
    for i in range(len(sets)):
        for j in range(i + 1, len(sets)):
            if jaccard(sets[i], sets[j]) >= threshold - 1e-12:
                pairs += 1
    return pairs


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(8000, minimum=250)
    workload = ecg_workload(n_series, 1, length=96, seed=14)
    db = STS3Database(workload.database, sigma=3, epsilon=0.4)

    with Timer() as t_brute:
        brute_counts = {t: _brute_force(db.sets, t) for t in THRESHOLDS}
    brute_per_threshold = t_brute.millis / len(THRESHOLDS)

    rows = []
    for threshold in THRESHOLDS:
        with Timer() as t_join:
            pairs = similarity_join(db.sets, threshold)
        assert len(pairs) == brute_counts[threshold]  # exactness
        rows.append(
            [
                threshold,
                t_join.millis,
                brute_per_threshold,
                brute_per_threshold / max(t_join.millis, 1e-9),
                len(pairs),
            ]
        )
    report(
        "extension_join",
        render_table(
            ["threshold", "join ms", "brute ms", "speed-up", "pairs"],
            rows,
            title=f"Extension: similarity self-join (N={n_series} ECG windows)",
        ),
    )
    # Shape: the join's advantage grows with the threshold.
    assert rows[-1][3] >= rows[0][3]
    return db


def test_bench_join_strict(benchmark, experiment):
    db = experiment
    benchmark.pedantic(
        lambda: similarity_join(db.sets, 0.9), rounds=3, iterations=1
    )
