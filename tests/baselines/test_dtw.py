"""Tests for DTW: recurrence correctness, banding, early abandoning."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dtw import dtw, dtw_independent, dtw_with_path, sakoe_chiba_window
from repro.baselines.ed import euclidean
from repro.exceptions import ParameterError

short_series = arrays(
    np.float64,
    st.integers(min_value=1, max_value=24),
    elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
)


def _reference_dtw(a, b, window=None):
    """Straightforward O(n·m) scalar DP, the ground truth."""
    n, m = len(a), len(b)
    dp = np.full((n + 1, m + 1), np.inf)
    dp[0, 0] = 0.0
    for i in range(1, n + 1):
        for j in range(1, m + 1):
            if window is not None and abs(i - j) > window:
                continue
            cost = (a[i - 1] - b[j - 1]) ** 2
            dp[i, j] = cost + min(dp[i - 1, j], dp[i, j - 1], dp[i - 1, j - 1])
    return float(np.sqrt(dp[n, m]))


class TestDTW:
    def test_identical_series_zero(self):
        a = np.sin(np.linspace(0, 5, 30))
        assert dtw(a, a) == 0.0

    def test_known_small_case(self):
        a = np.array([0.0, 1.0, 2.0])
        b = np.array([0.0, 2.0])
        # optimal path: (0,0) (1,1)?? verify against reference
        assert dtw(a, b) == pytest.approx(_reference_dtw(a, b))

    def test_warping_absorbs_shift(self):
        """DTW of a shifted bump is far below its ED."""
        t = np.arange(64, dtype=float)
        a = np.exp(-0.5 * ((t - 30) / 3) ** 2)
        b = np.exp(-0.5 * ((t - 34) / 3) ** 2)
        assert dtw(a, b) < 0.25 * euclidean(a, b)

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            dtw(np.array([]), np.array([1.0]))

    def test_negative_window_raises(self):
        with pytest.raises(ParameterError):
            dtw(np.zeros(3), np.zeros(3), window=-1)

    def test_band_narrower_than_length_gap(self):
        assert dtw(np.zeros(10), np.zeros(3), window=2) == float("inf")

    def test_multidim(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=(12, 2))
        assert dtw(a, a) == 0.0
        b = rng.normal(size=(12, 2))
        assert dtw(a, b) > 0

    @given(short_series, short_series)
    @settings(max_examples=30)
    def test_matches_reference(self, a, b):
        assert dtw(a, b) == pytest.approx(_reference_dtw(a, b), abs=1e-9)

    @given(short_series, short_series, st.integers(0, 10))
    @settings(max_examples=30)
    def test_matches_reference_banded(self, a, b, window):
        got = dtw(a, b, window=window)
        expected = _reference_dtw(a, b, window=window)
        if expected == float("inf"):
            assert got == float("inf")
        else:
            assert got == pytest.approx(expected, abs=1e-9)

    @given(short_series, short_series)
    @settings(max_examples=30)
    def test_symmetry(self, a, b):
        assert dtw(a, b) == pytest.approx(dtw(b, a), abs=1e-9)

    def test_dtw_at_most_ed_for_equal_length(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            a, b = rng.normal(size=32), rng.normal(size=32)
            assert dtw(a, b) <= euclidean(a, b) + 1e-9

    def test_band_zero_equals_ed(self):
        rng = np.random.default_rng(2)
        a, b = rng.normal(size=20), rng.normal(size=20)
        assert dtw(a, b, window=0) == pytest.approx(euclidean(a, b))

    def test_wider_band_never_increases_distance(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=30), rng.normal(size=30)
        distances = [dtw(a, b, window=w) for w in (0, 2, 5, 10, None)]
        assert all(x >= y - 1e-9 for x, y in zip(distances, distances[1:]))


class TestEarlyAbandon:
    def test_abandons(self):
        a = np.zeros(50)
        b = np.full(50, 5.0)
        assert dtw(a, b, cutoff=1.0) == float("inf")

    def test_exact_when_below_cutoff(self):
        rng = np.random.default_rng(4)
        a, b = rng.normal(size=40), rng.normal(size=40)
        exact = dtw(a, b)
        assert dtw(a, b, cutoff=exact * 2) == pytest.approx(exact)

    @given(short_series, short_series, st.floats(0.5, 20))
    @settings(max_examples=30)
    def test_never_underestimates(self, a, b, cutoff):
        exact = _reference_dtw(a, b)
        got = dtw(a, b, cutoff=cutoff)
        if got == float("inf"):
            assert exact > cutoff - 1e-9
        else:
            assert got == pytest.approx(exact, abs=1e-9)


class TestDTWIndependent:
    def test_1d_equals_dtw(self):
        rng = np.random.default_rng(10)
        a, b = rng.normal(size=16), rng.normal(size=16)
        assert dtw_independent(a, b, window=4) == pytest.approx(dtw(a, b, window=4))

    def test_identical_zero(self):
        rng = np.random.default_rng(11)
        a = rng.normal(size=(12, 3))
        assert dtw_independent(a, a) == 0.0

    def test_independent_at_most_dependent(self):
        """Per-dimension warping has more freedom, so the independent
        distance never exceeds the dependent one."""
        rng = np.random.default_rng(12)
        for _ in range(8):
            a = rng.normal(size=(14, 2))
            b = rng.normal(size=(14, 2))
            assert dtw_independent(a, b) <= dtw(a, b) + 1e-9

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ParameterError):
            dtw_independent(np.zeros((5, 2)), np.zeros((5, 3)))

    def test_band_propagates(self):
        a = np.zeros((10, 2))
        b = np.zeros((3, 2))
        assert dtw_independent(a, b, window=2) == float("inf")


class TestSakoeChibaWindow:
    def test_fraction(self):
        assert sakoe_chiba_window(100, 0.1) == 10

    def test_zero(self):
        assert sakoe_chiba_window(100, 0.0) == 0

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            sakoe_chiba_window(100, 1.5)


class TestDTWWithPath:
    def test_distance_matches_dtw(self):
        rng = np.random.default_rng(5)
        a, b = rng.normal(size=15), rng.normal(size=12)
        distance, path = dtw_with_path(a, b)
        assert distance == pytest.approx(dtw(a, b), abs=1e-9)

    def test_path_is_monotone_and_connected(self):
        rng = np.random.default_rng(6)
        a, b = rng.normal(size=10), rng.normal(size=14)
        _, path = dtw_with_path(a, b)
        assert path[0] == (0, 0)
        assert path[-1] == (9, 13)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert (i2 - i1, j2 - j1) in {(1, 0), (0, 1), (1, 1)}

    def test_window_must_contain_endpoints(self):
        with pytest.raises(ParameterError):
            dtw_with_path(np.zeros(3), np.zeros(3), window_cells={(1, 1)})

    def test_disconnected_window_raises(self):
        cells = {(0, 0), (2, 2)}
        with pytest.raises(ParameterError):
            dtw_with_path(np.zeros(3), np.zeros(3), window_cells=cells)

    def test_restricted_window_at_least_full_distance(self):
        rng = np.random.default_rng(7)
        a, b = rng.normal(size=8), rng.normal(size=8)
        full, _ = dtw_with_path(a, b)
        band = {(i, j) for i in range(8) for j in range(8) if abs(i - j) <= 1}
        banded, _ = dtw_with_path(a, b, window_cells=band)
        assert banded >= full - 1e-9
