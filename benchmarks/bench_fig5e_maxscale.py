"""Figure 5(e-f): approximate STS3 — speed-up, compression, error rate.

Paper Section 7.4.5.  ``compression rate`` is the surviving share of
the search set after coarse filtering; ``error rate`` is the paper's
relative-distance regret ``(approxDist − optimalDist) / optimalDist``
with distance ``1 − Jaccard``.  Expected shapes: speed-up peaks at a
small maxScale then decays; compression drops fast then flattens; the
error rate stays modest (paper: "generally smaller than 20%").
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

MAX_SCALES = [2, 3, 4, 6, 8, 10]


def _relative_error(optimal_sim: float, approx_sim: float) -> float:
    """Paper's ErrorRate = (approxDist − optimalDist) / optimalDist."""
    optimal_dist = 1.0 - optimal_sim
    approx_dist = 1.0 - approx_sim
    if optimal_dist <= 1e-12:
        return 0.0 if approx_dist <= 1e-12 else float("inf")
    return (approx_dist - optimal_dist) / optimal_dist


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=300)
    n_queries = scaled(150, minimum=5)
    workload = ecg_workload(n_series, n_queries, length=500, seed=5)
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)

    optimal = {}
    with Timer() as naive_t:
        for i, q in enumerate(workload.queries):
            optimal[i] = db.query(q, k=1, method="naive").best.similarity

    rows = []
    for max_scale in MAX_SCALES:
        db.approximate_searcher(max_scale)  # offline build
        compression_sum = 0.0
        error_sum = 0.0
        with Timer() as t:
            results = [
                db.query(q, k=1, method="approximate", max_scale=max_scale)
                for q in workload.queries
            ]
        for i, result in enumerate(results):
            compression_sum += result.stats.compression_rate
            error_sum += _relative_error(optimal[i], result.best.similarity)
        n = len(workload.queries)
        rows.append(
            [
                max_scale,
                naive_t.seconds / max(t.seconds, 1e-9),
                compression_sum / n,
                error_sum / n,
            ]
        )
    report(
        "fig5ef_maxscale",
        render_table(
            ["maxScale", "speed-up", "compression rate", "error rate"],
            rows,
            title=(
                f"Figure 5(e-f): approximate STS3 vs maxScale "
                f"(#series={n_series}, naive={naive_t.millis:.0f} ms)"
            ),
        ),
    )
    # Shape: compression rate is (weakly) decreasing in maxScale.
    compressions = [r[2] for r in rows]
    assert compressions[-1] <= compressions[0] + 1e-9
    return db, workload


@pytest.mark.parametrize("max_scale", [2, 4, 10])
def test_bench_approximate(benchmark, experiment, max_scale):
    db, workload = experiment
    query = workload.queries[0]
    db.approximate_searcher(max_scale)
    benchmark(lambda: db.query(query, k=1, method="approximate", max_scale=max_scale))
