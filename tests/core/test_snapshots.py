"""Snapshot regression tests: frozen outputs of the core semantics.

These pin the *exact* numerical behaviour of the grid transformation,
Jaccard scoring, and the synthetic ECG generator.  A failure here means
a semantic change (cell-assignment rounding, ID layout, RNG usage) that
silently alters every experiment — the kind of drift ordinary
property tests cannot catch because the new behaviour may be equally
"valid".  If a change is intentional, re-freeze the constants and note
it in CHANGELOG.md.
"""

import numpy as np
import pytest

from repro.core import Bound, Grid, jaccard, transform
from repro.data import ecg_stream


@pytest.fixture(scope="module")
def sine_series():
    return np.round(np.sin(np.arange(20) * 0.7), 6)


class TestGridSnapshot:
    def test_shape(self, sine_series):
        grid = Grid.from_cell_sizes(Bound.of_series(sine_series), 3, 0.5)
        assert grid.n_columns == 7
        assert grid.n_rows == (4,)

    def test_cell_set(self, sine_series):
        grid = Grid.from_cell_sizes(Bound.of_series(sine_series), 3, 0.5)
        expected = [2, 5, 7, 8, 10, 11, 15, 18, 20, 21, 22, 24, 25, 27]
        assert transform(sine_series, grid).tolist() == expected


class TestJaccardSnapshot:
    def test_sine_cosine_similarity(self, sine_series):
        other = np.round(np.cos(np.arange(20) * 0.7), 6)
        grid = Grid.from_cell_sizes(
            Bound.of_database([sine_series, other]), 3, 0.5
        )
        sim = jaccard(transform(sine_series, grid), transform(other, grid))
        assert sim == pytest.approx(0.17391304347826086)


class TestEcgSnapshot:
    def test_first_samples(self):
        stream = ecg_stream(100, seed=0)
        expected = [-0.092556, -0.07661, -0.070432, -0.063055, -0.040679]
        assert np.round(stream[:5], 6).tolist() == expected

    def test_checksum(self):
        stream = ecg_stream(5000, seed=42)
        assert float(np.round(stream.sum(), 4)) == pytest.approx(
            float(np.round(ecg_stream(5000, seed=42).sum(), 4))
        )
        # frozen statistical fingerprint (loose enough for platform
        # float variation, tight enough to catch generator changes)
        assert 0.1 < stream.std() < 1.0
        assert stream.max() > 0.8
