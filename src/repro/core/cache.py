"""Byte-budgeted LRU caches for the query path (DESIGN.md §13).

Two caches share one implementation:

- :class:`QueryResultCache` — full ``query()`` answers keyed on
  ``(set-fingerprint, k, method, scale, max_scale, epsilon, catalog
  generation)``.  The generation component is the invalidation wire:
  every structural change (insert, flush, compact, recover) bumps the
  catalog generation, so stale entries simply stop being addressable
  and age out of the LRU.  Only *complete* results are cached —
  degraded/deadline answers depend on wall-clock and must never be
  replayed.
- :class:`CandidateCache` — coarse-level survivor sets inside
  :class:`~repro.core.approximate.ApproximateSearcher`.  Keyed on the
  exact coarse representations of the query plus ``k``; since a
  searcher is built over an immutable segment, entries can never go
  stale and the cache needs no generation component.

Both report ``sts3_cache_{hits,misses,evictions}_total{cache=...}``.
Instances hold a lock and therefore implement ``__getstate__`` /
``__setstate__`` so a database travels through ``pickle`` (the
process-based ``query_batch(workers=N)`` path): cached entries are
dropped in transit — workers start cold rather than shipping the
parent's cache bytes.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict

from ..obs import get_registry

__all__ = ["LRUBytesCache", "QueryResultCache", "CandidateCache", "fingerprint"]


def fingerprint(*parts: bytes) -> bytes:
    """A short stable digest of binary parts (query-set fingerprints)."""
    digest = hashlib.blake2b(digest_size=16)
    for part in parts:
        digest.update(part)
        digest.update(b"\x00")
    return digest.digest()


class LRUBytesCache:
    """An LRU mapping bounded by an approximate byte budget.

    ``capacity_bytes <= 0`` disables the cache entirely: ``get`` always
    misses and ``put`` is a no-op (metrics still count the misses, so a
    disabled cache is visible rather than silent).  Entry sizes are
    caller-supplied estimates; the budget is advisory, not an
    allocator.
    """

    def __init__(self, capacity_bytes: int, name: str = "generic"):
        self.capacity_bytes = int(capacity_bytes)
        self.name = name
        self._entries: OrderedDict[object, tuple[object, int]] = OrderedDict()
        self._bytes = 0
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    # -- pickling: drop entries and rebuild the lock ---------------------

    def __getstate__(self) -> dict:
        return {"capacity_bytes": self.capacity_bytes, "name": self.name}

    def __setstate__(self, state: dict) -> None:
        # Explicit base-class init: subclasses take capacity only.
        LRUBytesCache.__init__(self, state["capacity_bytes"], state["name"])

    # -- core ------------------------------------------------------------

    def get(self, key):
        """The cached value, or ``None`` on a miss (counted either way)."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                get_registry().counter("sts3_cache_misses_total").inc(cache=self.name)
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            get_registry().counter("sts3_cache_hits_total").inc(cache=self.name)
            return entry[0]

    def put(self, key, value, nbytes: int) -> None:
        """Insert/replace ``key``; evict LRU entries past the budget."""
        if self.capacity_bytes <= 0:
            return
        nbytes = max(int(nbytes), 1)
        if nbytes > self.capacity_bytes:
            return  # would evict everything and still not fit
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._bytes -= old[1]
            self._entries[key] = (value, nbytes)
            self._bytes += nbytes
            while self._bytes > self.capacity_bytes and self._entries:
                _, (_, dropped) = self._entries.popitem(last=False)
                self._bytes -= dropped
                self.evictions += 1
                get_registry().counter("sts3_cache_evictions_total").inc(
                    cache=self.name
                )

    def clear(self) -> None:
        """Drop every entry (budget and counters are kept)."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    @property
    def nbytes(self) -> int:
        """Approximate bytes currently held."""
        with self._lock:
            return self._bytes

    def stats(self) -> dict:
        """Hit/miss/eviction counters plus occupancy, for CLI surfaces."""
        with self._lock:
            return {
                "name": self.name,
                "capacity_bytes": self.capacity_bytes,
                "bytes": self._bytes,
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


class QueryResultCache(LRUBytesCache):
    """LRU over complete ``query()`` answers (see module docstring)."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes, name="result")

    @staticmethod
    def key(
        prepared_bytes: bytes,
        k: int,
        method: str,
        scale: int,
        max_scale: int,
        epsilon,
        generation: int,
    ) -> tuple:
        """The full cache key; ``generation`` carries invalidation."""
        return (
            fingerprint(prepared_bytes),
            int(k),
            method,
            int(scale),
            int(max_scale),
            epsilon,  # float or per-axis tuple — hashable either way
            int(generation),
        )


class CandidateCache(LRUBytesCache):
    """LRU over coarse-filter survivor sets (approximate path)."""

    def __init__(self, capacity_bytes: int):
        super().__init__(capacity_bytes, name="candidate")
