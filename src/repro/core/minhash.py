"""MinHash signatures and LSH banding for the Jaccard search.

The paper's conclusion names "scaling our approach on large datasets"
as future work.  Since STS3 reduces time-series similarity to Jaccard
similarity of cell-ID sets, the canonical scaling tool applies
directly: **MinHash** (Broder) compresses each set to a fixed-length
signature whose per-row collision probability equals the Jaccard
similarity, and **LSH banding** turns those signatures into a
sub-linear candidate generator whose hit probability follows the
classic S-curve ``1 − (1 − s^r)^b``.

:class:`MinHashSearcher` drops into the same role as the other STS3
variants: approximate k-NN with exact re-ranking of the candidates the
LSH index surfaces.  An ablation bench compares it against the
inverted-list searcher on recall and speed.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from .heap import KnnHeap
from .jaccard import jaccard
from .result import QueryResult, SearchStats

__all__ = ["MinHasher", "estimate_jaccard", "LSHIndex", "MinHashSearcher"]

#: sentinel signature value for empty sets (nothing hashes to max).
_EMPTY = np.uint64(0xFFFFFFFFFFFFFFFF)


class MinHasher:
    """A family of ``num_perm`` hash functions over int64 cell IDs.

    Each "permutation" is the wrapping multiply-shift hash
    ``h(x) = (a·x + b) mod 2^64`` with odd ``a`` — the standard
    practical MinHash family (a fixed random bijection on the 64-bit
    ring, vectorizing to one fused multiply-add per row).  The
    signature of a set is the per-function minimum over its elements;
    for two sets, ``P[sig_i(A) = sig_i(B)] ≈ J(A, B)`` per row, which
    the statistical tests verify empirically.
    """

    def __init__(self, num_perm: int = 128, seed: int = 0):
        if num_perm < 1:
            raise ParameterError(f"num_perm must be >= 1, got {num_perm}")
        self.num_perm = int(num_perm)
        rng = np.random.default_rng(seed)
        a = rng.integers(1, 2**63, size=self.num_perm, dtype=np.uint64)
        self._a = a | np.uint64(1)  # odd multipliers are bijections mod 2^64
        self._b = rng.integers(0, 2**63, size=self.num_perm, dtype=np.uint64)

    def signature(self, cell_set: np.ndarray) -> np.ndarray:
        """MinHash signature of a sorted unique cell-ID set.

        Empty sets get the all-max signature (matching nothing but
        other empty sets).
        """
        if len(cell_set) == 0:
            return np.full(self.num_perm, _EMPTY, dtype=np.uint64)
        x = cell_set.astype(np.uint64)
        with np.errstate(over="ignore"):
            hashes = self._a[:, None] * x[None, :] + self._b[:, None]
        return hashes.min(axis=1)


def estimate_jaccard(sig_a: np.ndarray, sig_b: np.ndarray) -> float:
    """Unbiased Jaccard estimate: the fraction of agreeing rows."""
    if sig_a.shape != sig_b.shape:
        raise ParameterError("signatures must come from the same MinHasher")
    return float(np.mean(sig_a == sig_b))


class LSHIndex:
    """Banded LSH over MinHash signatures.

    ``num_perm`` rows are split into ``bands`` bands of ``r`` rows;
    two sets become candidates when any band hashes identically, which
    happens with probability ``1 − (1 − s^r)^bands`` for Jaccard
    similarity ``s``.
    """

    def __init__(self, num_perm: int, bands: int):
        if bands < 1:
            raise ParameterError(f"bands must be >= 1, got {bands}")
        if num_perm % bands != 0:
            raise ParameterError(
                f"bands ({bands}) must divide num_perm ({num_perm})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self._tables: list[dict[bytes, list[int]]] = [dict() for _ in range(bands)]

    def _band_keys(self, signature: np.ndarray):
        for band in range(self.bands):
            chunk = signature[band * self.rows : (band + 1) * self.rows]
            yield band, chunk.tobytes()

    def insert(self, item: int, signature: np.ndarray) -> None:
        """Register ``item`` under each of its band buckets."""
        for band, key in self._band_keys(signature):
            self._tables[band].setdefault(key, []).append(item)

    def candidates(self, signature: np.ndarray) -> np.ndarray:
        """All items sharing at least one band bucket, sorted unique."""
        found: set[int] = set()
        for band, key in self._band_keys(signature):
            found.update(self._tables[band].get(key, ()))
        return np.fromiter(sorted(found), dtype=np.int64, count=len(found))


class MinHashSearcher:
    """Approximate Jaccard k-NN: LSH candidates + exact re-ranking.

    Signatures and the banded index are built offline; a query hashes
    once, collects its LSH candidates, and ranks them by *exact*
    Jaccard similarity (so returned similarities are never estimates).
    Recall is governed by the band S-curve; misses are candidates whose
    similarity fell below the curve's knee.
    """

    def __init__(
        self,
        sets: list[np.ndarray],
        num_perm: int = 128,
        bands: int = 32,
        seed: int = 0,
    ):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        self.sets = sets
        self.hasher = MinHasher(num_perm, seed=seed)
        self.index = LSHIndex(num_perm, bands)
        self.signatures = [self.hasher.signature(s) for s in sets]
        for item, signature in enumerate(self.signatures):
            self.index.insert(item, signature)

    def __len__(self) -> int:
        return len(self.sets)

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        """Approximate k-NN of ``query_set`` among the indexed sets.

        If the LSH tables surface fewer than ``k`` candidates the
        answer is padded from the remaining sets in index order (their
        exact similarities are still computed), so the result always
        carries ``min(k, N)`` neighbours.
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        signature = self.hasher.signature(query_set)
        candidates = self.index.candidates(signature)
        stats = SearchStats(
            candidates=len(self.sets),
            final_candidates=len(candidates),
            pruned=len(self.sets) - len(candidates),
        )
        heap = KnnHeap(k)
        seen = set(candidates.tolist())
        for index in candidates.tolist():
            heap.consider(jaccard(self.sets[index], query_set), index)
            stats.exact_computations += 1
        if len(heap) < k:  # pad when LSH under-delivers
            for index in range(len(self.sets)):
                if index in seen:
                    continue
                heap.consider(jaccard(self.sets[index], query_set), index)
                stats.exact_computations += 1
                if len(heap) >= k:
                    break
        return QueryResult(neighbors=heap.neighbors(), stats=stats)
