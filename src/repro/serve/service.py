"""Transport-agnostic query service: coalescing, admission, drain.

:class:`QueryService` sits between any front end (the binary protocol
and HTTP adapter in :mod:`repro.serve.server`, or an embedding
application) and one :class:`~repro.core.database.STS3Database`.  It
owns three serving-side behaviours the engine itself should not know
about (DESIGN.md §14):

- **Request coalescing.**  Concurrent single queries that share every
  answer-affecting parameter are gathered for up to
  ``coalesce_window_ms`` and executed as *one*
  ``STS3Database.query_batch`` call — one pass of the vectorized
  batch kernel instead of N scalar searches.  The batch engine is
  bit-identical to the scalar path by contract, so coalescing is
  invisible in the answers and only visible in the throughput (and in
  ``sts3_server_window_queries``).  Deadline-bounded requests bypass
  the window: their budget is personal and already ticking.
- **Admission control.**  A bounded in-flight count sheds load with
  ``BUSY`` *before* work is queued (the client can back off; a queue
  that accepts everything just converts overload into latency), and an
  optional per-client token bucket turns one chatty client away with
  ``RATE_LIMITED`` before it starves the rest.
- **Graceful drain.**  ``drain()`` stops admitting, flushes any open
  coalescing window immediately, and waits for in-flight work — so a
  deploy never answers a request with a torn connection.

All engine work runs on a single dedicated executor thread: the
engine's mutable surfaces (workspace scratch, update buffer, caches)
are not thread-safe, and one thread serializes them by construction
while numpy kernels still release the GIL under it.  Intra-query
parallelism is the engine's own ``max_workers`` lever (DESIGN.md §13),
which composes with this design unchanged.

Deadlines are anchored at *arrival*: the service stamps each request
with ``db.planner.clock()`` on admission and passes the stamp through
``deadline_start``, so time a request spends waiting behind the
executor counts against its budget exactly like search time does —
a queued request that blows its deadline degrades instead of returning
late and complete (the Lernaean-Hydra serving stance).
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass

import numpy as np

from ..core.database import STS3Database
from ..obs import get_registry, span
from .protocol import ServeError

__all__ = ["ServiceConfig", "QueryService"]

#: histogram buckets for coalescing-window occupancy (queries, not
#: seconds) and request latency respectively.
_WINDOW_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256)


@dataclass
class ServiceConfig:
    """Knobs of the serving layer (``sts3 serve`` flags map 1:1).

    ``coalesce_window_ms=0`` disables micro-batching entirely — every
    request dispatches on its own (the serial baseline the serving
    benchmark compares against).  ``rate_limit=None`` disables
    per-client rate limiting; otherwise each client identity earns
    ``rate_limit`` request tokens per second up to a burst ceiling of
    ``rate_burst`` (a batch of N queries costs N tokens).
    """

    #: how long the first query of a window waits for company (ms).
    coalesce_window_ms: float = 2.0
    #: flush a window early once it holds this many queries.
    max_coalesce: int = 64
    #: refuse new requests past this many in flight (queued + running).
    max_pending: int = 256
    #: per-client sustained request rate (tokens/second), None = off.
    rate_limit: float | None = None
    #: per-client burst ceiling (bucket capacity).
    rate_burst: int = 20
    #: seconds ``drain`` waits for in-flight work before giving up.
    drain_grace_s: float = 10.0


class _TokenBucket:
    """Classic token bucket; time injected for deterministic tests."""

    __slots__ = ("tokens", "stamp")

    def __init__(self, burst: float, now: float):
        self.tokens = float(burst)
        self.stamp = now

    def admit(self, cost: float, rate: float, burst: float, now: float) -> bool:
        self.tokens = min(float(burst), self.tokens + (now - self.stamp) * rate)
        self.stamp = now
        if self.tokens < cost:
            return False
        self.tokens -= cost
        return True


class _Window:
    """One open coalescing window: queries awaiting a shared batch."""

    __slots__ = ("signature", "items", "handle", "closed", "opened_at")

    def __init__(self, signature: tuple, opened_at: float):
        self.signature = signature
        self.items: list[tuple[np.ndarray, asyncio.Future]] = []
        self.handle: asyncio.TimerHandle | None = None
        self.closed = False
        self.opened_at = opened_at


class QueryService:
    """The engine-facing core of the query server (see module docs)."""

    def __init__(self, db: STS3Database, config: ServiceConfig | None = None):
        self.db = db
        self.config = config or ServiceConfig()
        #: wall clock for rate limiting and window ages — injectable so
        #: admission tests advance time deterministically.  Distinct
        #: from ``db.planner.clock`` (the deadline ladder's clock).
        self.clock = time.monotonic
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="sts3-engine"
        )
        self._windows: dict[tuple, _Window] = {}
        self._buckets: dict[str, _TokenBucket] = {}
        self._pending = 0
        self._draining = False
        self._tasks: set[asyncio.Task] = set()

    # -- admission -------------------------------------------------------

    @property
    def draining(self) -> bool:
        """True once :meth:`drain` has started; no new work is admitted."""
        return self._draining

    @property
    def pending(self) -> int:
        """Requests currently admitted and not yet answered."""
        return self._pending

    def _reject(self, reason: str, code: str, message: str) -> ServeError:
        get_registry().counter(
            "sts3_server_rejected_total", "requests shed at admission, by reason"
        ).inc(reason=reason)
        return ServeError(code, message)

    def _admit(self, op: str, client: str, cost: int = 1) -> None:
        """Admission control; raises :class:`ServeError` to shed load."""
        config = self.config
        if self._draining:
            raise self._reject(
                "draining", "DRAINING", "server is draining; retry elsewhere"
            )
        if self._pending >= config.max_pending:
            raise self._reject(
                "queue_full", "BUSY",
                f"admission queue full ({config.max_pending} in flight); "
                "back off and retry",
            )
        if config.rate_limit is not None:
            now = self.clock()
            bucket = self._buckets.get(client)
            if bucket is None:
                bucket = self._buckets[client] = _TokenBucket(
                    config.rate_burst, now
                )
            if not bucket.admit(
                cost, config.rate_limit, config.rate_burst, now
            ):
                raise self._reject(
                    "rate_limited", "RATE_LIMITED",
                    f"client {client} over {config.rate_limit:g} req/s "
                    f"(burst {config.rate_burst})",
                )

    # -- bookkeeping -----------------------------------------------------

    def _begin(self, op: str) -> float:
        self._pending += 1
        get_registry().gauge(
            "sts3_server_inflight", "admitted requests not yet answered"
        ).set(self._pending)
        return time.perf_counter()

    def _finish(self, op: str, started: float, status: str) -> None:
        self._pending -= 1
        registry = get_registry()
        registry.gauge(
            "sts3_server_inflight", "admitted requests not yet answered"
        ).set(self._pending)
        registry.counter(
            "sts3_server_requests_total", "requests answered, by op and status"
        ).inc(op=op, status=status)
        registry.histogram(
            "sts3_server_request_seconds", "request latency from admission"
        ).observe(time.perf_counter() - started, op=op)

    async def _run_engine(self, fn, *args, **kwargs):
        """Run blocking engine work on the dedicated engine thread."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(
            self._executor, lambda: fn(*args, **kwargs)
        )

    def _track(self, coro) -> asyncio.Task:
        task = asyncio.get_running_loop().create_task(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    # -- operations ------------------------------------------------------

    async def query(
        self,
        series: np.ndarray,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        client: str = "local",
    ):
        """One k-NN query; coalesces with concurrent compatible ones.

        Bit-identical to ``db.query(...)`` with the same arguments —
        the coalescing path runs through ``db.query_batch``, whose
        parity with scalar calls the engine already guarantees.
        """
        self._admit("query", client)
        started = self._begin("query")
        status = "ok"
        try:
            if deadline_ms is not None:
                # Personal budget, already ticking: bypass the window
                # and anchor the ladder at arrival so executor queue
                # wait burns budget too.
                arrival = self.db.planner.clock()
                return await self._run_engine(
                    self.db.query, series, k=k, method=method, scale=scale,
                    max_scale=max_scale, deadline_ms=deadline_ms,
                    deadline_start=arrival,
                )
            if self.config.coalesce_window_ms <= 0:
                return await self._run_engine(
                    self.db.query, series, k=k, method=method, scale=scale,
                    max_scale=max_scale,
                )
            return await self._coalesce(series, (k, method, scale, max_scale))
        except ServeError as exc:
            status = exc.code
            raise
        except Exception:
            status = "INTERNAL"
            raise
        finally:
            self._finish("query", started, status)

    async def query_batch(
        self,
        queries: list[np.ndarray],
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        client: str = "local",
    ):
        """An explicit batch — already coalesced by the client.

        Counts as one admission slot but ``len(queries)`` rate-limit
        tokens (it is that many queries' worth of work).
        """
        self._admit("batch", client, cost=max(1, len(queries)))
        started = self._begin("batch")
        status = "ok"
        try:
            arrival = (
                self.db.planner.clock() if deadline_ms is not None else None
            )
            return await self._run_engine(
                self.db.query_batch, queries, k=k, method=method, scale=scale,
                max_scale=max_scale, deadline_ms=deadline_ms,
                deadline_start=arrival,
            )
        except ServeError as exc:
            status = exc.code
            raise
        except Exception:
            status = "INTERNAL"
            raise
        finally:
            self._finish("batch", started, status)

    async def insert(self, series: np.ndarray, client: str = "local") -> dict:
        """Insert one series; serialized with queries on the engine thread.

        The reply reports where the series landed: ``path`` is
        ``"direct"`` (in-bound, extended the newest segment) or
        ``"buffered"`` (out-of-bound, via the lazy buffer), and
        ``sealed_segment`` flags an insert whose buffer fill sealed a
        new segment.  A sharded engine classifies its own inserts (the
        shard worker observed the path) and its reply adds ``id`` and
        ``shard``; the single-process path keeps the before/after
        observation below.
        """
        self._admit("insert", client)
        started = self._begin("insert")
        status = "ok"
        try:
            if not hasattr(self.db, "catalog"):
                report = await self._run_engine(self.db.insert, series)
                return report
            segments_before = len(self.db.catalog.segments)
            buffered_before = len(self.db.buffer)
            await self._run_engine(self.db.insert, series)
            sealed = len(self.db.catalog.segments) > segments_before
            return {
                "n_series": len(self.db),
                "buffered": len(self.db.buffer),
                "path": (
                    "buffered"
                    if sealed or len(self.db.buffer) > buffered_before
                    else "direct"
                ),
                "sealed_segment": sealed,
            }
        except ServeError as exc:
            status = exc.code
            raise
        except Exception:
            status = "INTERNAL"
            raise
        finally:
            self._finish("insert", started, status)

    async def verify(self, client: str = "local") -> list[str]:
        """Run ``db.verify_integrity`` off the event loop."""
        self._admit("verify", client)
        started = self._begin("verify")
        status = "ok"
        try:
            return await self._run_engine(self.db.verify_integrity)
        except Exception:
            status = "INTERNAL"
            raise
        finally:
            self._finish("verify", started, status)

    # -- coalescing ------------------------------------------------------

    async def _coalesce(self, series: np.ndarray, signature: tuple):
        """Join (or open) the window for ``signature``; await its batch."""
        loop = asyncio.get_running_loop()
        window = self._windows.get(signature)
        if window is None or window.closed:
            window = _Window(signature, self.clock())
            self._windows[signature] = window
            window.handle = loop.call_later(
                self.config.coalesce_window_ms / 1000.0,
                self._flush_window,
                window,
            )
        future: asyncio.Future = loop.create_future()
        window.items.append((series, future))
        if len(window.items) >= self.config.max_coalesce:
            self._flush_window(window)
        return await future

    def _flush_window(self, window: _Window) -> None:
        """Close a window and hand its queries to the engine as one batch."""
        if window.closed:
            return
        window.closed = True
        if window.handle is not None:
            window.handle.cancel()
        if self._windows.get(window.signature) is window:
            del self._windows[window.signature]
        get_registry().histogram(
            "sts3_server_window_queries",
            "single queries coalesced per micro-batching window",
            buckets=_WINDOW_BUCKETS,
        ).observe(len(window.items))
        self._track(self._run_window(window))

    async def _run_window(self, window: _Window) -> None:
        queries = [series for series, _ in window.items]
        k, method, scale, max_scale = window.signature
        try:
            with span("server.window", queries=len(queries), method=method):
                if len(queries) == 1:
                    # A lonely window: the scalar path answers it with
                    # less fixed cost than a one-query batch pass.
                    results = [
                        await self._run_engine(
                            self.db.query, queries[0], k=k, method=method,
                            scale=scale, max_scale=max_scale,
                        )
                    ]
                else:
                    results = await self._run_engine(
                        self.db.query_batch, queries, k=k, method=method,
                        scale=scale, max_scale=max_scale,
                    )
        except BaseException as exc:  # noqa: BLE001 — fan the failure out
            for _, future in window.items:
                if not future.done():
                    future.set_exception(exc)
            return
        for (_, future), result in zip(window.items, results):
            if not future.done():
                future.set_result(result)

    # -- lifecycle -------------------------------------------------------

    async def drain(self, grace_s: float | None = None) -> bool:
        """Stop admitting, flush open windows, wait for in-flight work.

        Returns True when everything in flight completed inside the
        grace period (config ``drain_grace_s`` unless overridden).
        Idempotent; the service stays drained afterwards.  A background
        maintenance engine attached to the database is paused first, so
        shutdown never races a merge publishing mid-drain.
        """
        self._draining = True
        engine = getattr(self.db, "maintenance", None)
        if engine is not None:
            engine.pause()
        with span("server.drain", pending=self._pending):
            for window in list(self._windows.values()):
                self._flush_window(window)
            deadline = self.clock() + (
                self.config.drain_grace_s if grace_s is None else grace_s
            )
            while (self._pending or self._tasks) and self.clock() < deadline:
                await asyncio.sleep(0.005)
        return not self._pending and not self._tasks

    def close(self) -> None:
        """Release the engine thread (call after :meth:`drain`)."""
        self._executor.shutdown(wait=True)
