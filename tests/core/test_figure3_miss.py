"""Demonstration of the paper's Figure 3: the approximate STS3 can miss.

"As the cost of high efficiency, the computation in the coarse scale
may miss the time series that are most similar ... Fortunately, this
situation is rare."  These tests pin down both halves of that claim on
concrete instances: a reproducible miss exists (the phenomenon is
real), and across many random workloads the miss *rate* stays small.
"""

import numpy as np
import pytest

from repro.core import STS3Database


def _workload(seed: int):
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=64) for _ in range(40)]
    db = STS3Database(series, sigma=4, epsilon=0.8)
    query = series[rng.integers(0, 40)] + rng.normal(0, 0.6, size=64)
    return db, query


class TestFigure3:
    def test_a_miss_exists(self):
        """Seed 1 is a frozen instance where maxScale=3 filtering drops
        the true nearest neighbour (found by randomized search; kept as
        a regression anchor for the filtering semantics)."""
        db, query = _workload(seed=1)
        exact = db.query(query, k=1, method="naive")
        approx = db.query(query, k=1, method="approximate", max_scale=3)
        assert approx.best.index != exact.best.index
        assert approx.best.similarity < exact.best.similarity

    def test_missed_answer_is_still_valid(self):
        """Even when it misses, the answer's similarity is the exact
        Jaccard of a real database member (never an estimate)."""
        from repro.core.jaccard import jaccard

        db, query = _workload(seed=1)
        approx = db.query(query, k=1, method="approximate", max_scale=3)
        query_set = db.transform_query(query)
        assert approx.best.similarity == pytest.approx(
            jaccard(db.sets[approx.best.index], query_set)
        )

    def test_misses_are_bounded_and_shallow(self):
        """Paper: "this situation is rare".  On i.i.d.-noise workloads
        (a hard case — many near-ties) the maxScale=3 miss rate stays
        bounded and, crucially, missed answers are *close*: the mean
        similarity regret stays under 25%."""
        misses = 0
        regrets = []
        for seed in range(40):
            db, query = _workload(seed)
            exact = db.query(query, k=1, method="naive")
            approx = db.query(query, k=1, method="approximate", max_scale=3)
            if approx.best.similarity < exact.best.similarity - 1e-12:
                misses += 1
                regrets.append(
                    (exact.best.similarity - approx.best.similarity)
                    / max(exact.best.similarity, 1e-12)
                )
        assert misses <= 20
        if regrets:
            assert float(np.mean(regrets)) < 0.25

    def test_larger_max_scale_filters_more_aggressively(self):
        """Figure 5(e-f)'s trade-off: a larger maxScale runs more
        filtering rounds, keeps fewer candidates, and therefore misses
        at least as often as a smaller one — speed bought with error."""
        misses = {2: 0, 5: 0}
        survivors = {2: 0, 5: 0}
        for seed in range(25):
            db, query = _workload(seed + 100)
            exact = db.query(query, k=1, method="naive")
            for max_scale in misses:
                approx = db.query(
                    query, k=1, method="approximate", max_scale=max_scale
                )
                survivors[max_scale] += approx.stats.final_candidates
                if approx.best.similarity < exact.best.similarity - 1e-12:
                    misses[max_scale] += 1
        assert survivors[5] <= survivors[2]
        assert misses[5] >= misses[2]
