"""Data substrates: normalization, synthetic generators, and loaders.

The paper evaluates on the UCR Time Series Classification Archive and a
private 20.14M-point ECG stream; neither is available offline, so this
subpackage provides synthetic equivalents that exercise the same code
paths (see DESIGN.md §4 for the substitution rationale), plus a loader
for the real UCR file format for users who have the archive.
"""

from .normalize import z_normalize, z_normalize_all, is_z_normalized
from .ecg import ECGConfig, ecg_stream
from .workloads import make_workload, slice_stream
from .registry import dataset_names, load_dataset
from .loader import load_ucr_dataset, load_ucr_file

__all__ = [
    "z_normalize",
    "z_normalize_all",
    "is_z_normalized",
    "ECGConfig",
    "ecg_stream",
    "make_workload",
    "slice_stream",
    "dataset_names",
    "load_dataset",
    "load_ucr_dataset",
    "load_ucr_file",
]
