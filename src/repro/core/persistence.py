"""Save/load an :class:`~repro.core.database.STS3Database` to disk.

A database is a function of its series, parameters, and *segment
layout*, so the on-disk format stores exactly those: one ``.npz``
holding the raw series (padded into a matrix with a length vector, so
unequal lengths survive) plus a JSON header embedded in the same
archive.  Format version 2 records the per-segment sizes and grid
geometry — a sealed segment's grid is the update buffer's grid at seal
time and cannot be re-derived from the series alone (re-deriving would
tighten the bound and change Jaccard similarities), so each segment's
``(bound, col_width, row_heights)`` is archived and adopted verbatim on
load.  Set representations and searchers are *rebuilt* — they are
derived state, and rebuilding guarantees a loaded database is
byte-for-byte equivalent (a property the tests assert via
:meth:`verify_integrity` and query equivalence).

Version-1 archives (pre-segmentation) still load: they carry no segment
table and restore as a single-segment catalog, which is exactly what
the monolithic engine was.

Format version 3 adds *optional* packed bitmaps
(``save_database(..., pack_bitsets=True)``): each segment's
:class:`~repro.core.bitset.BitsetStore` vocabulary and uint64 matrix
are archived and re-attached verbatim on load, skipping the pack step
for the popcount kernels.  The bitmaps are still derived state — a v3
archive without them (the default) differs from v2 only in the version
number, and v1/v2 archives load unchanged.

Buffered (not yet flushed) series are stored too and re-buffered on
load, preserving provisional neighbour indices across a round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from ..obs import get_registry, span
from .bitset import BitsetStore
from .database import STS3Database
from .grid import Bound, Grid

__all__ = ["save_database", "load_database"]

#: bumped on any incompatible change to the archive layout.
FORMAT_VERSION = 3

#: versions this loader understands.
SUPPORTED_VERSIONS = (1, 2, 3)


def _pack(series_list: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, int]:
    """Pad series into one matrix + a lengths vector.

    Multi-dimensional series are flattened per time step; the number of
    dims travels in the header so unpacking can restore the shape.
    """
    if not series_list:
        return np.zeros((0, 0)), np.zeros(0, dtype=np.int64), 1
    n_dims = 1 if series_list[0].ndim == 1 else series_list[0].shape[1]
    lengths = np.asarray([len(s) for s in series_list], dtype=np.int64)
    width = int(lengths.max()) * n_dims
    matrix = np.zeros((len(series_list), width), dtype=np.float64)
    for row, series in zip(matrix, series_list):
        flat = series.reshape(-1)
        row[: flat.size] = flat
    return matrix, lengths, n_dims


def _unpack(matrix: np.ndarray, lengths: np.ndarray, n_dims: int) -> list[np.ndarray]:
    out = []
    for row, length in zip(matrix, lengths.tolist()):
        flat = row[: length * n_dims]
        out.append(flat.copy() if n_dims == 1 else flat.reshape(length, n_dims))
    return out


def _segment_entry(segment) -> dict:
    grid = segment.grid
    return {
        "size": len(segment),
        "bound": {
            "t_min": grid.bound.t_min,
            "t_max": grid.bound.t_max,
            "x_min": list(grid.bound.x_min),
            "x_max": list(grid.bound.x_max),
        },
        "col_width": grid.col_width,
        "row_heights": list(grid.row_heights),
    }


def _segment_grid(entry: dict) -> Grid:
    bound = Bound(
        entry["bound"]["t_min"],
        entry["bound"]["t_max"],
        tuple(entry["bound"]["x_min"]),
        tuple(entry["bound"]["x_max"]),
    )
    return Grid(bound, entry["col_width"], tuple(entry["row_heights"]))


def save_database(
    db: STS3Database, path: str | Path, pack_bitsets: bool = False
) -> None:
    """Write ``db`` to ``path`` (a single ``.npz`` archive).

    With ``pack_bitsets=True`` every segment's packed bitset (built on
    demand; segments whose memory gate declines are skipped) is
    archived alongside the series, so a loaded database answers its
    first popcount-kernel query without re-packing.
    """
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "sigma": db.sigma,
        "epsilon": list(db.epsilon) if isinstance(db.epsilon, tuple) else db.epsilon,
        "epsilon_is_tuple": isinstance(db.epsilon, tuple),
        "normalize": db.normalize,
        "value_padding": db.value_padding,
        "buffer_capacity": db.buffer.capacity,
        "default_scale": db.default_scale,
        "default_max_scale": db.default_max_scale,
        "rebuild_count": db.rebuild_count,
        "segments": [_segment_entry(seg) for seg in db.catalog.segments],
    }
    bitset_arrays: dict[str, np.ndarray] = {}
    if pack_bitsets:
        packed_positions = []
        for position, segment in enumerate(db.catalog.segments):
            store = segment.bitset_store()
            if store is None:
                continue
            packed_positions.append(position)
            bitset_arrays[f"bitset_vocab_{position}"] = store.vocab
            bitset_arrays[f"bitset_matrix_{position}"] = store.matrix
        header["bitset_segments"] = packed_positions
    all_series = db.catalog.all_series()
    with span(
        "persist.save",
        series=len(all_series),
        segments=len(db.catalog.segments),
        buffered=len(db.buffer.series),
    ):
        matrix, lengths, n_dims = _pack(all_series)
        buf_matrix, buf_lengths, _ = _pack(db.buffer.series)
        np.savez_compressed(
            path,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
            n_dims=np.int64(n_dims),
            series=matrix,
            lengths=lengths,
            buffer_series=buf_matrix,
            buffer_lengths=buf_lengths,
            **bitset_arrays,
        )
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="save")


def load_database(path: str | Path) -> STS3Database:
    """Rebuild a database previously written by :func:`save_database`."""
    with span("persist.load"):
        db = _load_database(path)
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="load")
    return db


def _load_database(path: str | Path) -> STS3Database:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no database archive at {path}")
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode())
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatasetError(f"{path} is not an STS3 database archive") from exc
        if header.get("format_version") not in SUPPORTED_VERSIONS:
            raise DatasetError(
                f"{path}: unsupported format version "
                f"{header.get('format_version')!r} (expected one of "
                f"{SUPPORTED_VERSIONS})"
            )
        n_dims = int(archive["n_dims"])
        series = _unpack(archive["series"], archive["lengths"], n_dims)
        buffered = _unpack(archive["buffer_series"], archive["buffer_lengths"], n_dims)
        bitsets: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        for position in header.get("bitset_segments", []):
            try:
                bitsets[int(position)] = (
                    archive[f"bitset_vocab_{position}"],
                    archive[f"bitset_matrix_{position}"],
                )
            except KeyError as exc:
                raise DatasetError(
                    f"{path}: header names a packed bitset for segment "
                    f"{position} but the arrays are missing"
                ) from exc

    epsilon = header["epsilon"]
    if header["epsilon_is_tuple"]:
        epsilon = tuple(epsilon)

    if header["format_version"] == 1 or "segments" not in header:
        # Legacy single-grid archive: constructing fresh reproduces the
        # pre-segmentation engine exactly (one bootstrap segment with a
        # tight bound + padding).  Stored series are already normalized;
        # construct raw then restore the flag.
        db = STS3Database(
            series,
            sigma=header["sigma"],
            epsilon=epsilon,
            normalize=False,
            value_padding=header["value_padding"],
            buffer_capacity=header["buffer_capacity"],
            default_scale=header["default_scale"],
            default_max_scale=header["default_max_scale"],
        )
        db.normalize = header["normalize"]
    else:
        payloads = []
        cursor = 0
        for entry in header["segments"]:
            size = int(entry["size"])
            payloads.append((series[cursor : cursor + size], _segment_grid(entry)))
            cursor += size
        if cursor != len(series):
            raise DatasetError(
                f"{path}: segment table covers {cursor} series, archive "
                f"holds {len(series)}"
            )
        db = STS3Database.from_segments(
            payloads,
            sigma=header["sigma"],
            epsilon=epsilon,
            normalize=header["normalize"],
            value_padding=header["value_padding"],
            buffer_capacity=header["buffer_capacity"],
            default_scale=header["default_scale"],
            default_max_scale=header["default_max_scale"],
        )
    db.rebuild_count = header["rebuild_count"]
    for position, (vocab, matrix) in bitsets.items():
        if not 0 <= position < len(db.catalog.segments):
            raise DatasetError(
                f"{path}: packed bitset refers to segment {position}, "
                f"archive restored {len(db.catalog.segments)} segments"
            )
        segment = db.catalog.segments[position]
        lengths = np.asarray([len(s) for s in segment.sets], dtype=np.int64)
        # from_parts validates the matrix shape against the rebuilt
        # sets, so a truncated archive fails here instead of miscounting.
        segment._bitset = BitsetStore.from_parts(vocab, matrix, lengths)
        segment._bitset_decided = True
        get_registry().gauge(
            "sts3_bitset_bytes_resident",
            "packed bitset bytes resident, by segment",
        ).set(segment._bitset.nbytes, segment=str(segment.segment_id))
    for series_item in buffered:
        db.buffer.add(series_item)
    return db
