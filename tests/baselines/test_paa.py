"""Tests for the PAA representation and its lower-bounding filter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.ed import euclidean
from repro.baselines.paa import PAAFilter, paa_distance, paa_transform
from repro.exceptions import ParameterError

pair_and_segments = st.integers(min_value=4, max_value=48).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, n, elements=st.floats(-5, 5, allow_nan=False)),
        arrays(np.float64, n, elements=st.floats(-5, 5, allow_nan=False)),
        st.integers(min_value=1, max_value=n),
    )
)


class TestPAATransform:
    def test_divisible_length(self):
        series = np.array([1.0, 3.0, 5.0, 7.0])
        assert np.allclose(paa_transform(series, 2), [2.0, 6.0])

    def test_segments_equal_length_is_identity(self):
        series = np.arange(6.0)
        assert np.array_equal(paa_transform(series, 6), series)

    def test_more_segments_than_points_is_identity(self):
        series = np.arange(4.0)
        assert np.array_equal(paa_transform(series, 9), series)

    def test_single_segment_is_mean(self):
        series = np.array([2.0, 4.0, 9.0])
        assert paa_transform(series, 1) == pytest.approx(np.array([5.0]))

    def test_fractional_frames_preserve_mean(self):
        """The weighted PAA of any series preserves the global mean."""
        rng = np.random.default_rng(0)
        series = rng.normal(size=10)
        means = paa_transform(series, 3)
        # frames have equal width, so their means average to the mean
        assert means.mean() == pytest.approx(series.mean())

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            paa_transform(np.arange(4.0), 0)
        with pytest.raises(ParameterError):
            paa_transform(np.zeros((3, 2)), 2)
        with pytest.raises(ParameterError):
            paa_transform(np.array([]), 2)


class TestPAADistance:
    @given(pair_and_segments)
    @settings(max_examples=40)
    def test_lower_bounds_ed(self, abs_):
        a, b, segments = abs_
        bound = paa_distance(
            paa_transform(a, segments), paa_transform(b, segments), len(a)
        )
        assert bound <= euclidean(a, b) + 1e-9

    def test_resolution_mismatch_raises(self):
        with pytest.raises(ParameterError):
            paa_distance(np.zeros(3), np.zeros(4), 10)

    def test_exact_at_full_resolution(self):
        rng = np.random.default_rng(1)
        a, b = rng.normal(size=16), rng.normal(size=16)
        bound = paa_distance(paa_transform(a, 16), paa_transform(b, 16), 16)
        assert bound == pytest.approx(euclidean(a, b))


class TestPAAFilter:
    def test_exactness(self):
        rng = np.random.default_rng(2)
        database = [rng.normal(size=64) for _ in range(40)]
        filt = PAAFilter(database, segments=8)
        for _ in range(5):
            query = rng.normal(size=64)
            idx, dist = filt.nearest(query)
            brute = min(
                ((euclidean(query, s), i) for i, s in enumerate(database))
            )
            assert idx == brute[1]
            assert dist == pytest.approx(brute[0])

    def test_prunes_on_structured_data(self):
        t = np.linspace(0, 6, 64)
        database = [np.sin(t + phase) for phase in np.linspace(0, 3, 60)]
        filt = PAAFilter(database, segments=8)
        filt.nearest(np.sin(t + 0.02))
        assert filt.stats["pruned"] > 0

    def test_rejects_mixed_lengths(self):
        with pytest.raises(ParameterError):
            PAAFilter([np.zeros(8), np.zeros(9)])

    def test_rejects_empty_database(self):
        with pytest.raises(ParameterError):
            PAAFilter([])

    def test_rejects_wrong_query_length(self):
        filt = PAAFilter([np.zeros(8)])
        with pytest.raises(ParameterError):
            filt.nearest(np.zeros(9))
