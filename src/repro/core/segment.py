"""Immutable storage segments (the LSM-flavoured half of DESIGN.md §10).

A :class:`Segment` owns one slice of the database: its series, the grid
those series were digitized under, their set representations, and
lazily-built per-segment searchers (naive / inverted-index / pruning /
approximate) plus a batch engine.  Segments are *immutable*: sealing a
flushed update buffer creates a new segment in O(buffer) work, a direct
in-bound insert produces a replacement segment sharing the grid, and
:meth:`~repro.core.catalog.SegmentCatalog.compact` merges segments by
building a fresh one.  Queries never observe a half-updated segment.

Because Jaccard similarity is a function of the grid, every segment
keeps the grid its sets were computed under.  A sealed segment inherits
the update buffer's grid *and* its already-computed sets, which is what
makes a flush O(buffer): no series outside the buffer is re-transformed
(the seed implementation re-transformed the whole database).  The
``sts3_transforms_total`` counter (labelled by ``context``) makes that
cost observable and is asserted in the tests.
"""

from __future__ import annotations

import itertools
import threading

import numpy as np

from ..exceptions import ParameterError
from ..obs import get_registry, span
from .approximate import ApproximateSearcher
from .batch import BatchQueryEngine, QueryWorkspace
from .bitset import BitsetStore
from .grid import Bound, Grid
from .indexed import IndexedSearcher
from .minhash import MinHashSearcher
from .naive import NaiveSearcher
from .pruning import PruningSearcher
from .setrep import transform

__all__ = ["Segment", "count_transforms", "grid_for_bound"]

#: A segment only packs its sets into a bitset when the matrix costs at
#: most this multiple of the sorted-array footprint.  Packing always
#: helps speed, but on near-disjoint vocabularies (n_series ≫ 64 rows
#: over columns each row barely touches) the matrix would dwarf the
#: sets it mirrors; those segments keep the merge path.
_BITSET_BYTE_RATIO = 4

#: Process-wide monotonic use stamps (``Segment.mark_used``); ordering
#: is all the hot/cold eviction policy needs, so a shared counter —
#: atomic enough under CPython — beats per-segment clocks.
_use_counter = itertools.count(1)


def count_transforms(amount: int, context: str) -> None:
    """Record ``amount`` series-to-set transforms on the shared registry.

    ``context`` labels who paid: ``build`` (initial construction),
    ``extend`` (direct insert), ``buffer`` (update-buffer adds and
    bound-growth re-transforms), ``compact`` (segment merges), or
    ``load`` (persistence).  The O(buffer)-flush acceptance test asserts
    that sealing a buffer adds *no* ``build``/``compact`` transforms.
    """
    if amount:
        get_registry().counter(
            "sts3_transforms_total", "series set-representation transforms, by cause"
        ).inc(amount, context=context)


def grid_for_bound(bound: Bound, sigma: float, epsilon) -> Grid:
    """The σ/ε grid over ``bound`` (per-axis heights when ``epsilon`` is a tuple)."""
    if isinstance(epsilon, tuple):
        return Grid.from_axis_cell_sizes(bound, sigma, epsilon)
    return Grid.from_cell_sizes(bound, sigma, epsilon)


class Segment:
    """One immutable slice of the database: series + grid + set reps.

    ``Neighbor.index`` values returned by the per-segment searchers are
    *segment-local*; the query planner offsets them into global
    positions when merging.  Searchers are built lazily and cached for
    the segment's lifetime — there is no invalidation protocol, because
    a segment's contents never change (mutation produces a new segment).
    """

    def __init__(
        self,
        segment_id: int,
        series: list[np.ndarray],
        grid: Grid,
        sets: list[np.ndarray],
    ):
        if not series:
            raise ParameterError("a segment must own at least one series")
        if len(series) != len(sets):
            raise ParameterError(
                f"segment got {len(series)} series but {len(sets)} set reps"
            )
        self.segment_id = int(segment_id)
        self.grid = grid
        self._series: list[np.ndarray] | None = list(series)
        self._sets: list[np.ndarray] | None = list(sets)
        self._size = len(self._series)
        #: zero-arg payload loader for mmap-backed segments (see
        #: :meth:`lazy`); retained across materialization so
        #: :meth:`release_payload` can drop the payload and re-fault.
        self._loader = None
        self._payload_bytes = 0
        self._init_caches()

    def _init_caches(self) -> None:
        self._naive: NaiveSearcher | None = None
        self._indexed: IndexedSearcher | None = None
        self._pruning: dict[int, PruningSearcher] = {}
        self._approximate: dict[int, ApproximateSearcher] = {}
        self._batch_engine: BatchQueryEngine | None = None
        self._minhash: dict[tuple[int, int], MinHashSearcher] = {}
        self._bitset: BitsetStore | None = None
        self._bitset_decided = False
        #: monotonic use stamp (maintenance LRU ordering); 0 = never
        #: queried.  Stamped by the planner on every segment execution.
        self.last_used = 0
        #: CRC32 of the archive payload this segment was restored from
        #: (format v4 loads only); None for segments built in memory.
        self.payload_crc32: int | None = None
        # Guards lazy materialization and searcher construction when
        # the planner fans segment plans out across threads.  Reentrant
        # because building a searcher touches sets/bitset under the
        # same lock.
        self._lock = threading.RLock()

    # -- pickling (process-based query_batch workers) --------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_lock"]  # locks don't travel; workers get a fresh one
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.RLock()

    @classmethod
    def build(
        cls,
        segment_id: int,
        series: list[np.ndarray],
        sigma: float,
        epsilon,
        value_padding: float = 0.0,
        context: str = "build",
    ) -> "Segment":
        """Build a segment from raw series: bound → grid → transforms.

        This is the O(n) constructor — one transform per series — used
        for initial construction and compaction.  Sealing a buffer uses
        :class:`Segment` directly with the buffer's grid and sets.
        """
        bound = Bound.of_database(series, value_padding=value_padding)
        grid = grid_for_bound(bound, sigma, epsilon)
        sets = [transform(s, grid) for s in series]
        count_transforms(len(series), context)
        return cls(segment_id, series, grid, sets)

    @classmethod
    def lazy(
        cls,
        segment_id: int,
        grid: Grid,
        size: int,
        loader,
        payload_bytes: int = 0,
    ) -> "Segment":
        """A segment whose payload stays on disk until first touch.

        ``loader`` is a zero-arg callable returning ``{"series": [...],
        "bitset": {"vocab", "matrix"} | absent}`` — persistence passes a
        checksum-verifying view over the mapped v4 archive.  Until the
        first query (or any series/sets access) materializes it, the
        segment costs only its grid and manifest row: ``len`` and
        :meth:`memory_stats` never trigger the load.
        """
        if size < 1:
            raise ParameterError("a segment must own at least one series")
        self = cls.__new__(cls)
        self.segment_id = int(segment_id)
        self.grid = grid
        self._series = None
        self._sets = None
        self._size = int(size)
        self._loader = loader
        self._payload_bytes = int(payload_bytes)
        self._init_caches()
        return self

    @property
    def is_lazy(self) -> bool:
        """True while the payload is not materialized (never, or evicted)."""
        return self._series is None

    @property
    def series(self) -> list[np.ndarray]:
        """The segment's series (materializes a lazy payload)."""
        current = self._series
        while current is None:  # re-check: eviction can race the fault
            self._materialize()
            current = self._series
        return current

    @property
    def sets(self) -> list[np.ndarray]:
        """The segment's set representations (materializes if lazy)."""
        current = self._sets
        while current is None:
            self._materialize()
            current = self._sets
        return current

    @sets.setter
    def sets(self, value: list[np.ndarray]) -> None:
        self._sets = list(value)

    def _materialize(self) -> None:
        """First touch of a lazy payload: load, verify, transform.

        Runs under the segment lock so concurrent segment plans load a
        payload exactly once.  The loader verifies the payload checksum
        on this first touch and raises
        :class:`~repro.exceptions.DatasetError` on a mismatch — by the
        time a mapped archive is queried there is no catalog-load phase
        left to quarantine into.
        """
        with self._lock:
            if self._series is not None:
                return
            with span("segment.materialize", segment=self.segment_id,
                      series=self._size):
                payload = self._loader()
                series = payload["series"]
                self._sets = [transform(s, self.grid) for s in series]
                count_transforms(len(series), "load")
                bitset = payload.get("bitset")
                if bitset is not None and not self._bitset_decided:
                    lengths = np.asarray(
                        [s.size for s in self._sets], dtype=np.int64
                    )
                    self._bitset = BitsetStore.from_parts(
                        bitset["vocab"], bitset["matrix"], lengths
                    )
                    get_registry().gauge(
                        "sts3_bitset_bytes_resident",
                        "packed bitset bytes, by segment and residency",
                    ).set(
                        self._bitset.nbytes,
                        segment=str(self.segment_id),
                        state="mapped",
                    )
                    self._bitset_decided = True
                self._series = list(series)  # last: publishes the load

    def extend(self, series_item: np.ndarray) -> "Segment":
        """Replacement segment with one more (in-bound) series appended.

        Shares the grid and every existing set representation, so only
        the new series is transformed; fresh searcher caches preserve
        the seed's invalidate-on-insert semantics.
        """
        cell_set = transform(series_item, self.grid)
        count_transforms(1, "extend")
        return Segment(
            self.segment_id,
            self.series + [series_item],
            self.grid,
            self.sets + [cell_set],
        )

    def __len__(self) -> int:
        return self._size  # known from the manifest; never materializes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Segment(id={self.segment_id}, series={self._size}, "
            f"cells={self.grid.n_cells})"
        )

    # -- searcher access ------------------------------------------------

    def bitset_store(self) -> BitsetStore | None:
        """The segment's packed bitset, built lazily (None when gated).

        Built at most once per segment; because segments are immutable,
        :meth:`extend` and compaction produce replacement segments with
        fresh (empty) caches, which is the whole invalidation protocol.
        Returns ``None`` when packing would cost more than
        ``_BITSET_BYTE_RATIO`` times the sorted arrays it mirrors.
        """
        if not self._bitset_decided:
            with self._lock:
                if not self._bitset_decided:
                    sorted_bytes = sum(s.nbytes for s in self.sets)
                    vocab = np.unique(
                        np.concatenate(self.sets)
                        if sorted_bytes
                        else np.empty(0, dtype=np.int64)
                    )
                    n_words = (vocab.size + 63) // 64
                    packed_bytes = len(self.sets) * n_words * 8
                    if packed_bytes <= max(
                        _BITSET_BYTE_RATIO * sorted_bytes, 4096
                    ):
                        self._bitset = BitsetStore(self.sets)
                        get_registry().gauge(
                            "sts3_bitset_bytes_resident",
                            "packed bitset bytes, by segment and residency",
                        ).set(
                            self._bitset.nbytes,
                            segment=str(self.segment_id),
                            state="resident",
                        )
                    self._bitset_decided = True
        return self._bitset

    def naive_searcher(self) -> NaiveSearcher:
        """The segment's cached linear-scan searcher."""
        searcher = self._naive
        if searcher is None:
            with self._lock:
                searcher = self._naive
                if searcher is None:
                    searcher = self._naive = NaiveSearcher(
                        self.sets, bitset=self.bitset_store()
                    )
        return searcher

    def indexed_searcher(self) -> IndexedSearcher:
        """The segment's cached inverted-index searcher."""
        searcher = self._indexed
        if searcher is None:
            with self._lock:
                searcher = self._indexed
                if searcher is None:
                    searcher = self._indexed = IndexedSearcher(self.sets)
        return searcher

    def pruning_searcher(self, scale: int) -> PruningSearcher:
        """The segment's cached zone-pruning searcher for ``scale``."""
        scale = int(scale)
        searcher = self._pruning.get(scale)
        if searcher is None:
            with self._lock:
                searcher = self._pruning.get(scale)
                if searcher is None:
                    searcher = self._pruning[scale] = PruningSearcher(
                        self.sets, self.grid, scale, bitset=self.bitset_store()
                    )
        return searcher

    def approximate_searcher(self, max_scale: int) -> ApproximateSearcher:
        """The segment's cached multi-scale approximate searcher."""
        max_scale = int(max_scale)
        searcher = self._approximate.get(max_scale)
        if searcher is None:
            with self._lock:
                searcher = self._approximate.get(max_scale)
                if searcher is None:
                    searcher = self._approximate[max_scale] = ApproximateSearcher(
                        self.series, self.sets, self.grid.bound, max_scale
                    )
        return searcher

    def minhash_searcher(
        self, num_perm: int = 128, bands: int = 32
    ) -> MinHashSearcher:
        """The segment's cached MinHash/LSH searcher."""
        key = (int(num_perm), int(bands))
        searcher = self._minhash.get(key)
        if searcher is None:
            with self._lock:
                searcher = self._minhash.get(key)
                if searcher is None:
                    searcher = self._minhash[key] = MinHashSearcher(
                        self.sets, num_perm=key[0], bands=key[1]
                    )
        return searcher

    def batch_engine(self, workspace: QueryWorkspace | None = None) -> BatchQueryEngine:
        """The segment's cached vectorized batch kernel.

        The engine receives :meth:`bitset_store` as a supplier, so the
        segment and its batch kernel share one packed matrix — built
        only if the auto-selection (or another searcher) wants it.
        """
        engine = self._batch_engine
        if engine is None:
            with self._lock:
                engine = self._batch_engine
                if engine is None:
                    engine = self._batch_engine = BatchQueryEngine(
                        self.indexed_searcher(),
                        workspace=workspace or QueryWorkspace(),
                        bitset_store=self.bitset_store,
                    )
        return engine

    # -- maintenance hooks (DESIGN.md §15) ------------------------------

    def mark_used(self) -> None:
        """Stamp the segment as just-queried (hot/cold eviction order)."""
        self.last_used = next(_use_counter)

    @property
    def resident_state(self) -> str:
        """``"mapped"`` while the payload lives on disk, else ``"resident"``."""
        return "mapped" if self._series is None else "resident"

    @property
    def evictable(self) -> bool:
        """True when :meth:`release_payload` could free payload bytes.

        Mapped segments (retained loader) can drop everything and
        re-fault; in-memory segments can only shed derived structures
        (bitset, searchers), so they count as evictable only once any
        of those have been built.
        """
        if self._loader is not None and self._series is not None:
            return True
        return self._bitset is not None or bool(self._approximate)

    def resident_bytes(self) -> int:
        """Bytes :meth:`release_payload` accounts against the budget."""
        mem = self.memory_stats()
        return (
            mem["series_bytes"]
            + mem["sorted_sets_bytes"]
            + mem["packed_bitset_bytes"]
            + mem["coarse_levels_bytes"]
        )

    def release_payload(self) -> int:
        """Drop resident state; returns bytes freed (0 when nothing to drop).

        Loader-backed (mapped) segments revert fully to the lazy state —
        series, sets, searchers, and bitset all go; the next touch
        re-faults the payload from the archive and rebuilds derived
        structures bit-identically (``Segment.build``-style determinism:
        the grid is retained, transforms are pure).  In-memory segments
        have no way back to disk, so only derived caches (bitset,
        searchers, coarse levels) are dropped.  In-flight queries that
        already grabbed ``series``/``sets``/searcher references keep
        them alive — eviction never invalidates data under a reader,
        it only unhooks the segment's own references.
        """
        with self._lock:
            mem = self.memory_stats()
            freed = mem["packed_bitset_bytes"] + mem["coarse_levels_bytes"]
            if self._loader is not None and self._series is not None:
                freed += mem["series_bytes"] + mem["sorted_sets_bytes"]
                self._series = None
                self._sets = None
            self._naive = None
            self._indexed = None
            self._pruning = {}
            self._approximate = {}
            self._batch_engine = None
            self._minhash = {}
            self._bitset = None
            self._bitset_decided = False
            if freed:
                get_registry().gauge(
                    "sts3_bitset_bytes_resident",
                    "packed bitset bytes, by segment and residency",
                ).discard_labels(segment=str(self.segment_id))
        return freed

    # -- diagnostics ----------------------------------------------------

    @property
    def median_length(self) -> int:
        """Median series length (drives the planner's auto heuristic)."""
        return int(np.median([len(s) for s in self.series]))

    def stats(self) -> dict:
        """Per-segment statistics for catalogs, the CLI, and dashboards."""
        state = self.resident_state  # captured before series materializes
        lengths = [len(s) for s in self.series]
        return {
            "segment_id": self.segment_id,
            "payload_crc32": self.payload_crc32,
            "state": state,
            "last_used": self.last_used,
            "n_series": len(self.series),
            "n_cells": self.grid.n_cells,
            "n_columns": self.grid.n_columns,
            "n_rows": self.grid.n_rows,
            "min_length": min(lengths),
            "median_length": self.median_length,
            "max_length": max(lengths),
            "searchers": sorted(
                (["naive"] if self._naive is not None else [])
                + (["index"] if self._indexed is not None else [])
                + [f"pruning[{s}]" for s in self._pruning]
                + [f"approximate[{s}]" for s in self._approximate]
                + (["batch"] if self._batch_engine is not None else [])
                + [f"minhash[{p}/{b}]" for p, b in self._minhash]
                + (["bitset"] if self._bitset is not None else [])
            ),
            "memory": self.memory_stats(),
        }

    def memory_stats(self) -> dict:
        """Resident bytes per set representation (DESIGN.md §11).

        Only representations that have actually been built are
        non-zero; lazily-gated structures report 0 until first use.
        A still-mapped (never touched) segment reports zero resident
        bytes and its archive payload size under
        ``mapped_payload_bytes`` — this accessor never materializes.
        """
        coarse = sum(
            level.nbytes
            for searcher in self._approximate.values()
            for level in searcher.levels.values()
        )
        return {
            "series_bytes": (
                sum(s.nbytes for s in self._series)
                if self._series is not None
                else 0
            ),
            "sorted_sets_bytes": (
                sum(s.nbytes for s in self._sets)
                if self._sets is not None
                else 0
            ),
            "packed_bitset_bytes": (
                self._bitset.nbytes if self._bitset is not None else 0
            ),
            "coarse_levels_bytes": coarse,
            "mapped_payload_bytes": (
                self._payload_bytes if self._series is None else 0
            ),
        }

    def verify_integrity(self, offset: int = 0) -> list[str]:
        """Self-check; series are reported at global position ``offset + i``."""
        problems: list[str] = []
        if len(self.series) != len(self.sets):
            problems.append(
                f"{len(self.series)} series but {len(self.sets)} set reps"
            )
        for i, (series, cell_set) in enumerate(zip(self.series, self.sets)):
            if not self.grid.bound.covers(Bound.of_series(series)):
                problems.append(f"series {offset + i} escapes the database bound")
            fresh = transform(series, self.grid)
            if not np.array_equal(fresh, cell_set):
                problems.append(
                    f"series {offset + i} has a stale set representation"
                )
        if self._naive is not None and self._naive.sets is not self.sets:
            problems.append("cached naive searcher references stale sets")
        if self._indexed is not None and self._indexed.sets is not self.sets:
            problems.append("cached index searcher references stale sets")
        for scale, searcher in self._pruning.items():
            if searcher.sets is not self.sets:
                problems.append(f"cached pruning searcher (scale={scale}) is stale")
        return problems
