"""Tests for the k-NN min-heap (Section 5.2)."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.heap import KnnHeap
from repro.exceptions import ParameterError


class TestKnnHeap:
    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            KnnHeap(0)

    def test_threshold_before_full(self):
        heap = KnnHeap(3)
        heap.consider(0.5, 0)
        assert heap.threshold() == float("-inf")
        assert not heap.full

    def test_threshold_when_full(self):
        heap = KnnHeap(2)
        heap.consider(0.5, 0)
        heap.consider(0.9, 1)
        assert heap.full
        assert heap.threshold() == 0.5

    def test_keeps_k_best(self):
        heap = KnnHeap(2)
        for i, sim in enumerate([0.1, 0.9, 0.5, 0.7]):
            heap.consider(sim, i)
        result = heap.neighbors()
        assert [n.index for n in result] == [1, 3]
        assert [n.similarity for n in result] == [0.9, 0.7]

    def test_rejects_worse_candidate(self):
        heap = KnnHeap(1)
        assert heap.consider(0.8, 0)
        assert not heap.consider(0.3, 1)
        assert heap.neighbors()[0].index == 0

    def test_tie_prefers_smaller_index(self):
        heap = KnnHeap(1)
        heap.consider(0.5, 7)
        kept = heap.consider(0.5, 3)
        assert kept
        assert heap.neighbors()[0].index == 3

    def test_tie_keeps_existing_smaller_index(self):
        heap = KnnHeap(1)
        heap.consider(0.5, 3)
        assert not heap.consider(0.5, 7)
        assert heap.neighbors()[0].index == 3

    def test_qualifies_matches_consider(self):
        heap = KnnHeap(2)
        heap.consider(0.4, 0)
        heap.consider(0.6, 1)
        assert heap.qualifies(0.5, 2)
        assert not heap.qualifies(0.3, 2)

    def test_neighbors_sorted_descending(self):
        heap = KnnHeap(4)
        for i, sim in enumerate([0.2, 0.8, 0.5, 0.9]):
            heap.consider(sim, i)
        sims = [n.similarity for n in heap.neighbors()]
        assert sims == sorted(sims, reverse=True)

    @given(st.lists(st.floats(min_value=0, max_value=1), min_size=1, max_size=40),
           st.integers(min_value=1, max_value=10))
    def test_matches_sorted_topk(self, sims, k):
        heap = KnnHeap(k)
        for i, sim in enumerate(sims):
            heap.consider(sim, i)
        expected = sorted(
            ((s, i) for i, s in enumerate(sims)), key=lambda t: (-t[0], t[1])
        )[:k]
        got = [(n.similarity, n.index) for n in heap.neighbors()]
        assert got == expected
