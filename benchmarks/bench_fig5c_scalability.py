"""Figure 5(c): scalability — runtime vs database size.

Paper Section 7.4.3: the approximate STS3's runtime is roughly linear
in the database size, while the index-based and pruning-based runtimes
grow much more slowly (inverted lists stay selective, pruning filters
a larger share of a larger database).
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

SERIES_COUNTS_PAPER = [5000, 10000, 20000, 30000]
METHODS = ["index", "pruning", "approximate"]


@pytest.fixture(scope="module")
def experiment(report):
    counts = sorted({scaled(c, minimum=100) for c in SERIES_COUNTS_PAPER})
    n_queries = scaled(300, minimum=5)
    rows = []
    times: dict[str, list[float]] = {m: [] for m in METHODS}
    largest = None
    for n_series in counts:
        workload = ecg_workload(n_series, n_queries, length=500, seed=3)
        db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)
        db.indexed_searcher()
        db.pruning_searcher()
        db.approximate_searcher()
        row: list[object] = [n_series]
        for method in METHODS:
            with Timer() as t:
                for q in workload.queries:
                    db.query(q, k=1, method=method)
            row.append(t.millis)
            times[method].append(t.seconds)
        rows.append(row)
        largest = (db, workload)
    report(
        "fig5c_scalability",
        render_table(
            ["#series", "index ms", "pruning ms", "approximate ms"],
            rows,
            title=f"Figure 5(c): runtime vs database size (#query={n_queries}, len=500)",
        ),
    )
    # Shape: index runtime grows sub-linearly in the database size.
    size_ratio = counts[-1] / counts[0]
    index_ratio = times["index"][-1] / max(times["index"][0], 1e-9)
    assert index_ratio < size_ratio * 1.2
    return largest


@pytest.mark.parametrize("method", METHODS)
def test_bench_per_query(benchmark, experiment, method):
    db, workload = experiment
    query = workload.queries[0]
    benchmark(lambda: db.query(query, k=1, method=method))
