"""repro — reproduction of "Set-based Similarity Search for Time Series".

STS3 (Peng, Wang, Li, Gao; SIGMOD 2016) answers k-NN queries over
z-normalized time series by converting each series into a set of
grid-cell IDs and ranking candidates by Jaccard similarity.  This
package implements the full system — the four STS3 variants, every
baseline the paper compares against (ED, DTW, LB_Keogh/LB_Improved,
FastDTW, LCSS, FTSE), synthetic data substrates, and a benchmark
harness regenerating every table and figure of the evaluation.

Quickstart::

    import numpy as np
    from repro import STS3Database
    from repro.data import ecg_stream

    stream = ecg_stream(200_000, seed=7)
    database = [stream[i * 200:(i + 1) * 200] for i in range(900)]
    query = stream[900 * 200: 901 * 200]

    db = STS3Database(database, sigma=3, epsilon=0.58)
    result = db.query(query, k=5, method="index")
    for n in result.neighbors:
        print(n.index, round(n.similarity, 3))
"""

from .core import (
    ApproximateSearcher,
    BatchQueryEngine,
    Bound,
    Grid,
    IndexedSearcher,
    NaiveSearcher,
    Neighbor,
    PruningSearcher,
    QuarantineRecord,
    QueryPlanner,
    QueryResult,
    QueryWorkspace,
    STS3Database,
    SearchStats,
    Segment,
    SegmentCatalog,
    WriteAheadLog,
    aggregate_stats,
    jaccard,
    jaccard_distance,
    recover_database,
    transform,
    transform_query,
    tune_max_scale,
    tune_scale,
    tune_sigma_epsilon,
    verify_archive,
)
from .exceptions import (
    DatasetError,
    EmptyDatabaseError,
    GridError,
    ParameterError,
    ReproError,
)
from .types import ClassificationDataset, LabeledDataset, Workload

__version__ = "1.0.0"

__all__ = [
    "ApproximateSearcher",
    "BatchQueryEngine",
    "Bound",
    "ClassificationDataset",
    "DatasetError",
    "EmptyDatabaseError",
    "Grid",
    "GridError",
    "IndexedSearcher",
    "LabeledDataset",
    "NaiveSearcher",
    "Neighbor",
    "ParameterError",
    "PruningSearcher",
    "QuarantineRecord",
    "QueryPlanner",
    "QueryResult",
    "QueryWorkspace",
    "ReproError",
    "STS3Database",
    "SearchStats",
    "Segment",
    "SegmentCatalog",
    "Workload",
    "WriteAheadLog",
    "aggregate_stats",
    "jaccard",
    "jaccard_distance",
    "recover_database",
    "transform",
    "transform_query",
    "tune_max_scale",
    "tune_scale",
    "tune_sigma_epsilon",
    "verify_archive",
    "__version__",
]
