"""Tests for MinHash signatures, LSH banding, and the MinHash searcher."""

import numpy as np
import pytest

from repro.core.jaccard import jaccard
from repro.core.minhash import LSHIndex, MinHasher, MinHashSearcher, estimate_jaccard
from repro.core.naive import NaiveSearcher
from repro.exceptions import EmptyDatabaseError, ParameterError


def _random_sets(rng, n, universe=2000, size=120):
    return [
        np.unique(rng.integers(0, universe, size=size)).astype(np.int64)
        for _ in range(n)
    ]


def _overlapping_pair(rng, overlap, size=200, universe=100_000):
    """Two sets with Jaccard ≈ overlap built from a shared core."""
    shared = int(round(2 * size * overlap / (1 + overlap)))
    core = rng.choice(universe, size=shared, replace=False)
    rest_a = rng.choice(
        np.arange(universe, universe * 2), size=size - shared, replace=False
    )
    rest_b = rng.choice(
        np.arange(universe * 2, universe * 3), size=size - shared, replace=False
    )
    a = np.unique(np.concatenate([core, rest_a])).astype(np.int64)
    b = np.unique(np.concatenate([core, rest_b])).astype(np.int64)
    return a, b


class TestMinHasher:
    def test_deterministic(self):
        ids = np.arange(50, dtype=np.int64)
        assert np.array_equal(
            MinHasher(32, seed=1).signature(ids), MinHasher(32, seed=1).signature(ids)
        )

    def test_seed_changes_signature(self):
        ids = np.arange(50, dtype=np.int64)
        assert not np.array_equal(
            MinHasher(32, seed=1).signature(ids), MinHasher(32, seed=2).signature(ids)
        )

    def test_identical_sets_identical_signatures(self):
        rng = np.random.default_rng(0)
        ids = np.unique(rng.integers(0, 10**9, size=100)).astype(np.int64)
        hasher = MinHasher(64)
        assert np.array_equal(hasher.signature(ids), hasher.signature(ids.copy()))

    def test_empty_set_sentinel(self):
        sig = MinHasher(16).signature(np.empty(0, dtype=np.int64))
        assert (sig == np.uint64(0xFFFFFFFFFFFFFFFF)).all()

    def test_rejects_bad_num_perm(self):
        with pytest.raises(ParameterError):
            MinHasher(0)

    def test_estimator_tracks_true_jaccard(self):
        """mean(row agreement) ≈ J within sampling error (3σ)."""
        rng = np.random.default_rng(3)
        hasher = MinHasher(512, seed=7)
        for target in (0.2, 0.5, 0.8):
            a, b = _overlapping_pair(rng, target)
            true = jaccard(a, b)
            est = estimate_jaccard(hasher.signature(a), hasher.signature(b))
            sigma = np.sqrt(true * (1 - true) / 512)
            assert abs(est - true) <= 4 * sigma + 0.02

    def test_estimator_shape_mismatch(self):
        with pytest.raises(ParameterError):
            estimate_jaccard(np.zeros(4, np.uint64), np.zeros(8, np.uint64))


class TestLSHIndex:
    def test_bands_must_divide(self):
        with pytest.raises(ParameterError):
            LSHIndex(10, 3)
        with pytest.raises(ParameterError):
            LSHIndex(10, 0)

    def test_identical_signature_always_candidate(self):
        hasher = MinHasher(32)
        index = LSHIndex(32, 8)
        sig = hasher.signature(np.arange(40, dtype=np.int64))
        index.insert(5, sig)
        assert 5 in index.candidates(sig).tolist()

    def test_similar_sets_usually_collide(self):
        rng = np.random.default_rng(4)
        hasher = MinHasher(128, seed=1)
        index = LSHIndex(128, 32)  # r=4: knee near s ≈ 0.42
        a, b = _overlapping_pair(rng, 0.85)
        index.insert(0, hasher.signature(a))
        assert 0 in index.candidates(hasher.signature(b)).tolist()

    def test_dissimilar_sets_rarely_collide(self):
        rng = np.random.default_rng(5)
        hasher = MinHasher(128, seed=1)
        index = LSHIndex(128, 16)  # r=8: very low collision for s ≈ 0.05
        hits = 0
        for i in range(20):
            a = np.unique(rng.integers(0, 10**6, size=100)).astype(np.int64)
            b = np.unique(rng.integers(10**6, 2 * 10**6, size=100)).astype(np.int64)
            index.insert(i, hasher.signature(a))
            if i in index.candidates(hasher.signature(b)).tolist():
                hits += 1
        assert hits <= 2


class TestMinHashSearcher:
    def test_empty_db_raises(self):
        with pytest.raises(EmptyDatabaseError):
            MinHashSearcher([])

    def test_exact_duplicate_found(self):
        rng = np.random.default_rng(6)
        sets = _random_sets(rng, 30)
        searcher = MinHashSearcher(sets, num_perm=64, bands=16)
        result = searcher.query(sets[13], k=1)
        assert result.best.index == 13
        assert result.best.similarity == 1.0

    def test_similarities_are_exact(self):
        rng = np.random.default_rng(7)
        sets = _random_sets(rng, 25)
        searcher = MinHashSearcher(sets, num_perm=64, bands=16)
        query = sets[4]
        result = searcher.query(query, k=5)
        for n in result.neighbors:
            assert n.similarity == pytest.approx(jaccard(sets[n.index], query))

    def test_pads_to_k_when_lsh_underdelivers(self):
        rng = np.random.default_rng(8)
        sets = _random_sets(rng, 10, universe=10**7, size=30)  # near-disjoint
        searcher = MinHashSearcher(sets, num_perm=64, bands=4)  # r=16: no hits
        query = np.unique(rng.integers(10**8, 10**8 + 10**6, size=30)).astype(np.int64)
        result = searcher.query(query, k=4)
        assert len(result.neighbors) == 4

    def test_recall_on_near_duplicates(self):
        """For high-similarity neighbours LSH recall should be high."""
        rng = np.random.default_rng(9)
        base = _random_sets(rng, 40, universe=50_000, size=150)
        searcher = MinHashSearcher(base, num_perm=128, bands=32)
        exact = NaiveSearcher(base)
        hits = 0
        for i in range(10):
            # perturb a database set slightly → Jaccard ≈ 0.9 query
            query = base[i].copy()
            query = np.unique(
                np.concatenate([query[5:], rng.integers(0, 50_000, size=5)])
            ).astype(np.int64)
            want = exact.query(query, k=1).best.index
            got = searcher.query(query, k=1).best.index
            hits += want == got
        assert hits >= 8


class TestDatabaseWiring:
    """MinHash is a first-class ``STS3Database.query`` method."""

    def test_query_method_minhash_smoke(self, small_db, small_workload):
        from repro.core.jaccard import jaccard as exact_jaccard

        query = small_workload.queries[0]
        result = small_db.query(query, k=5, method="minhash")
        assert len(result.neighbors) == 5
        # Recall accounting: every database series was a candidate and
        # the non-surfaced remainder is reported as pruned.
        assert result.stats.candidates == len(small_db.series)
        assert result.stats.pruned + result.stats.final_candidates == len(
            small_db.series
        )
        # Returned similarities are exact (re-ranked), never estimates.
        query_set = small_db.transform_query(query)
        for n in result.neighbors:
            assert n.similarity == exact_jaccard(
                small_db.sets[n.index], query_set
            )
        # ...and a superset sanity check against the exact answer: the
        # LSH top-1 similarity can never exceed the exhaustive top-1.
        exact = small_db.query(query, k=1, method="naive")
        assert result.best.similarity <= exact.best.similarity

    def test_query_batch_method_minhash(self, small_db, small_workload):
        queries = list(small_workload.queries[:3])
        batch = small_db.query_batch(queries, k=3, method="minhash")
        for query, result in zip(queries, batch):
            scalar = small_db.query(query, k=3, method="minhash")
            assert [(n.index, n.similarity) for n in result.neighbors] == [
                (n.index, n.similarity) for n in scalar.neighbors
            ]

    def test_cli_accepts_minhash(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["query", "f", "--method", "minhash"])
        assert args.method == "minhash"
