"""Unit tests for the write-ahead log (repro.core.wal)."""

import struct

import numpy as np
import pytest

from repro.core.wal import (
    MAGIC,
    WriteAheadLog,
    decode_series,
    encode_series,
    replay_wal,
    scan_wal,
)
from repro.exceptions import ParameterError


class TestSeriesCodec:
    def test_roundtrip_bit_identical(self):
        rng = np.random.default_rng(0)
        series = rng.normal(size=100)
        back = decode_series(encode_series(series))
        assert back.dtype == series.dtype
        assert back.tobytes() == series.tobytes()

    def test_multidim(self):
        rng = np.random.default_rng(1)
        series = rng.normal(size=(24, 2))
        back = decode_series(encode_series(series))
        assert back.shape == (24, 2)
        assert np.array_equal(back, series)

    def test_decoded_is_writable(self):
        back = decode_series(encode_series(np.zeros(4)))
        back[0] = 1.0  # frombuffer alone would raise here


class TestAppendReplay:
    def test_append_replay_roundtrip(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync_batch=2)
        s1 = wal.append("insert", series=encode_series(np.arange(3.0)))
        s2 = wal.append("flush")
        s3 = wal.append("compact", min_size=None)
        wal.close()
        assert (s1, s2, s3) == (1, 2, 3)
        records, report = replay_wal(tmp_path / "wal")
        assert report.clean
        assert [r["op"] for r in records] == ["insert", "flush", "compact"]
        assert [r["seq"] for r in records] == [1, 2, 3]
        assert np.array_equal(
            decode_series(records[0]["series"]), np.arange(3.0)
        )

    def test_acknowledgement_tracks_fsync_batch(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", fsync_batch=3)
        wal.append("flush")
        wal.append("flush")
        assert wal.synced_seq == 0  # two pending, batch of 3
        wal.append("flush")
        assert wal.synced_seq == 3  # batch hit: auto-synced
        wal.append("flush")
        assert wal.synced_seq == 3
        wal.sync()
        assert wal.synced_seq == 4
        wal.close()

    def test_start_seq_continues_numbering(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal", start_seq=41)
        assert wal.append("flush") == 42
        wal.close()

    def test_fsync_batch_validated(self, tmp_path):
        with pytest.raises(ParameterError):
            WriteAheadLog(tmp_path / "wal", fsync_batch=0)

    def test_closed_log_rejects_appends(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.close()
        with pytest.raises(ParameterError):
            wal.append("flush")

    def test_empty_directory_replays_nothing(self, tmp_path):
        records, report = replay_wal(tmp_path / "missing")
        assert records == []
        assert report.clean and report.records == 0


class TestRotationCheckpoint:
    def test_rotate_starts_new_generation(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("flush")
        first = wal.path
        wal.rotate()
        assert wal.path != first
        wal.append("flush")
        wal.close()
        records, report = replay_wal(tmp_path / "wal")
        assert report.files == 2
        assert [r["seq"] for r in records] == [1, 2]

    def test_checkpoint_drops_retired_generations(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("flush")
        wal.rotate()
        wal.append("flush")
        removed = wal.checkpoint()
        assert removed == 2  # both pre-checkpoint generations gone
        wal.append("flush")
        wal.close()
        records, report = replay_wal(tmp_path / "wal")
        assert report.files == 1
        assert [r["seq"] for r in records] == [3]


class TestTornTail:
    def _write_frames(self, wal, n):
        for _ in range(n):
            wal.append("flush")
        wal.sync()

    def test_torn_tail_truncated(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        self._write_frames(wal, 3)
        wal.close()
        # a torn frame: header promises more bytes than exist
        with open(wal.path, "ab") as fh:
            fh.write(struct.pack("<II", 1000, 0) + b"short")
        records, report = scan_wal(tmp_path / "wal")
        assert len(records) == 3 and not report.clean
        records, report = replay_wal(tmp_path / "wal", truncate=True)
        assert len(records) == 3
        # after truncation the log is clean again
        records, report = scan_wal(tmp_path / "wal")
        assert report.clean and len(records) == 3

    def test_crc_mismatch_stops_replay(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        self._write_frames(wal, 2)
        wal.close()
        data = bytearray(wal.path.read_bytes())
        data[-1] ^= 0xFF  # corrupt the last record's payload
        wal.path.write_bytes(bytes(data))
        records, report = replay_wal(tmp_path / "wal")
        assert len(records) == 1
        assert any("CRC mismatch" in p for p in report.problems)

    def test_later_generations_dropped_after_tear(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        self._write_frames(wal, 2)
        wal.rotate()
        self._write_frames(wal, 2)
        wal.close()
        files = sorted((tmp_path / "wal").glob("*.wal"))
        assert len(files) == 2
        data = bytearray(files[0].read_bytes())
        data[-1] ^= 0xFF
        files[0].write_bytes(bytes(data))
        records, report = replay_wal(tmp_path / "wal", truncate=True)
        # only the intact prefix of generation 1 survives; generation 2
        # would have a sequence gap, so it is dropped entirely.
        assert [r["seq"] for r in records] == [1]
        assert sorted((tmp_path / "wal").glob("*.wal")) == [files[0]]

    def test_bad_magic_removes_file(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        wal.append("flush")
        wal.close()
        wal.path.write_bytes(b"NOTMAGIC")
        records, report = replay_wal(tmp_path / "wal", truncate=True)
        assert records == []
        assert not wal.path.exists()

    def test_sequence_gap_within_file_detected(self, tmp_path):
        wal = WriteAheadLog(tmp_path / "wal")
        self._write_frames(wal, 1)
        wal.close()
        # hand-append a record that skips seq 2 (jumps to seq 9): same
        # framing, valid CRC, but the chain breaks.
        import json
        from zlib import crc32

        payload = json.dumps({"seq": 9, "op": "flush"}).encode()
        with open(wal.path, "ab") as fh:
            fh.write(struct.pack("<II", len(payload), crc32(payload)) + payload)
        records, report = scan_wal(tmp_path / "wal")
        assert [r["seq"] for r in records] == [1]
        assert any("sequence gap" in p for p in report.problems)
