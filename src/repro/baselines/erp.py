"""Edit distance with Real Penalty (ERP) — Chen & Ng, VLDB 2004.

ERP marries Lp-norms with edit distance: aligning two points costs
their absolute difference, while a gap costs the distance of the
skipped point to a fixed reference value ``g`` (0 for z-normalized
data).  Because gap costs are anchored to a constant, ERP satisfies the
triangle inequality — it is a true metric, unlike DTW, LCSS, or EDR.

Cited by the paper's related work (Section 8.2, [8]); included so the
string-inspired measure family is complete.  Anti-diagonal vectorized
like the other dynamic programs in this package.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["erp_distance"]


def erp_distance(
    a: np.ndarray,
    b: np.ndarray,
    gap: float = 0.0,
) -> float:
    """ERP distance between two 1-D series.

    Recurrence (1-based prefixes)::

        D[i,j] = min(D[i-1,j-1] + |a_i − b_j|,
                     D[i-1,j]   + |a_i − g|,
                     D[i,j-1]   + |b_j − g|)

    with boundaries ``D[i,0] = Σ_{u<=i}|a_u − g|`` and symmetrically
    for ``D[0,j]``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim != 1 or b.ndim != 1:
        raise ParameterError("ERP is implemented for 1-D series")
    n, m = len(a), len(b)
    gap_a = np.abs(a - gap)
    gap_b = np.abs(b - gap)
    if n == 0:
        return float(gap_b.sum())
    if m == 0:
        return float(gap_a.sum())
    # prefix gap costs for the boundary rows/columns
    bound_a = np.concatenate(([0.0], np.cumsum(gap_a)))  # D[i, 0]
    bound_b = np.concatenate(([0.0], np.cumsum(gap_b)))  # D[0, j]

    inf = np.inf
    prev1 = np.full(n + 1, inf)
    prev2 = np.full(n + 1, inf)
    prev1[0] = 0.0  # D[0, 0] on diagonal 0
    indices = np.arange(n + 1)
    for d in range(1, n + m + 1):
        cur = np.full(n + 1, inf)
        i_lo = max(0, d - m)
        i_hi = min(n, d)
        if i_lo == 0:
            cur[0] = bound_b[d]  # D[0, d]
        if d <= n:
            cur[d] = bound_a[d]  # D[d, 0]
        iv = indices[max(i_lo, 1) : min(i_hi, d - 1) + 1]
        if iv.size:
            jv = d - iv
            sub = np.abs(a[iv - 1] - b[jv - 1])
            diag = prev2[iv - 1]
            diag = np.where(jv == 1, bound_a[iv - 1], diag)
            diag = np.where(iv == 1, bound_b[jv - 1], diag)
            up = prev1[iv - 1]
            up = np.where(iv == 1, bound_b[jv], up)
            left = prev1[iv]
            cur[iv] = np.minimum(
                diag + sub, np.minimum(up + gap_a[iv - 1], left + gap_b[jv - 1])
            )
        prev2, prev1 = prev1, cur
    return float(prev1[n])
