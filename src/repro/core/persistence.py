"""Save/load an :class:`~repro.core.database.STS3Database` to disk.

A database is a pure function of its series and parameters, so the
on-disk format stores exactly those: one ``.npz`` holding the raw
series (padded into a matrix with a length vector, so unequal lengths
survive) plus a JSON sidecar-free header embedded in the same archive.
Set representations, grids, and searchers are *rebuilt* on load — they
are derived state, and rebuilding guarantees a loaded database is
byte-for-byte equivalent to one constructed fresh (a property the tests
assert via :meth:`verify_integrity` and query equivalence).

Buffered (not yet flushed) series are stored too and re-buffered on
load, preserving provisional neighbour indices across a round-trip.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..exceptions import DatasetError
from ..obs import get_registry, span
from .database import STS3Database

__all__ = ["save_database", "load_database"]

#: bumped on any incompatible change to the archive layout.
FORMAT_VERSION = 1


def _pack(series_list: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray, int]:
    """Pad series into one matrix + a lengths vector.

    Multi-dimensional series are flattened per time step; the number of
    dims travels in the header so unpacking can restore the shape.
    """
    if not series_list:
        return np.zeros((0, 0)), np.zeros(0, dtype=np.int64), 1
    n_dims = 1 if series_list[0].ndim == 1 else series_list[0].shape[1]
    lengths = np.asarray([len(s) for s in series_list], dtype=np.int64)
    width = int(lengths.max()) * n_dims
    matrix = np.zeros((len(series_list), width), dtype=np.float64)
    for row, series in zip(matrix, series_list):
        flat = series.reshape(-1)
        row[: flat.size] = flat
    return matrix, lengths, n_dims


def _unpack(matrix: np.ndarray, lengths: np.ndarray, n_dims: int) -> list[np.ndarray]:
    out = []
    for row, length in zip(matrix, lengths.tolist()):
        flat = row[: length * n_dims]
        out.append(flat.copy() if n_dims == 1 else flat.reshape(length, n_dims))
    return out


def save_database(db: STS3Database, path: str | Path) -> None:
    """Write ``db`` to ``path`` (a single ``.npz`` archive)."""
    path = Path(path)
    header = {
        "format_version": FORMAT_VERSION,
        "sigma": db.sigma,
        "epsilon": list(db.epsilon) if isinstance(db.epsilon, tuple) else db.epsilon,
        "epsilon_is_tuple": isinstance(db.epsilon, tuple),
        "normalize": db.normalize,
        "value_padding": db.value_padding,
        "buffer_capacity": db.buffer.capacity,
        "default_scale": db.default_scale,
        "default_max_scale": db.default_max_scale,
        "rebuild_count": db.rebuild_count,
    }
    with span("persist.save", series=len(db.series), buffered=len(db.buffer.series)):
        matrix, lengths, n_dims = _pack(db.series)
        buf_matrix, buf_lengths, _ = _pack(db.buffer.series)
        np.savez_compressed(
            path,
            header=np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
            n_dims=np.int64(n_dims),
            series=matrix,
            lengths=lengths,
            buffer_series=buf_matrix,
            buffer_lengths=buf_lengths,
        )
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="save")


def load_database(path: str | Path) -> STS3Database:
    """Rebuild a database previously written by :func:`save_database`."""
    with span("persist.load"):
        db = _load_database(path)
    get_registry().counter(
        "sts3_persist_total", "database archive writes and reads"
    ).inc(op="load")
    return db


def _load_database(path: str | Path) -> STS3Database:
    path = Path(path)
    if not path.exists():
        raise DatasetError(f"no database archive at {path}")
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode())
        except (KeyError, json.JSONDecodeError) as exc:
            raise DatasetError(f"{path} is not an STS3 database archive") from exc
        if header.get("format_version") != FORMAT_VERSION:
            raise DatasetError(
                f"{path}: unsupported format version "
                f"{header.get('format_version')!r} (expected {FORMAT_VERSION})"
            )
        n_dims = int(archive["n_dims"])
        series = _unpack(archive["series"], archive["lengths"], n_dims)
        buffered = _unpack(archive["buffer_series"], archive["buffer_lengths"], n_dims)

    epsilon = header["epsilon"]
    if header["epsilon_is_tuple"]:
        epsilon = tuple(epsilon)
    db = STS3Database(
        series,
        sigma=header["sigma"],
        epsilon=epsilon,
        # stored series are already normalized; renormalizing is a
        # no-op but wasteful, so construct raw then restore the flag
        normalize=False,
        value_padding=header["value_padding"],
        buffer_capacity=header["buffer_capacity"],
        default_scale=header["default_scale"],
        default_max_scale=header["default_max_scale"],
    )
    db.normalize = header["normalize"]
    db.rebuild_count = header["rebuild_count"]
    for series_item in buffered:
        db.buffer.add(series_item)
    return db
