"""Section 5.1 analysis: multi-dimensional accuracy and the α_xy choice.

The paper argues three things about d-dimensional series:

1. the time parameter transfers across dimensions (a time shift in one
   dimension co-occurs in the others), so one σ serves all axes;
2. with *similar* per-axis distributions, one shared value parameter
   (``α_x = α_y = α_xy``) performs about as well as per-axis values;
3. with *different* per-axis distributions, a shared value parameter
   hurts, but per-axis parameters risk overfitting.

This bench measures (1)/(2) on the cricket-like gestures and (3) on a
purpose-built dataset whose second axis has 8x the amplitude of the
first.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import render_table
from repro.core.tuning import sts3_error_rate
from repro.data.generators import add_noise, ensure_rng, time_shift
from repro.data.normalize import z_normalize
from repro.data.ucr_like import _harmonic_template, _make_labeled, gesture3d
from repro.types import ClassificationDataset

SHARED_EPSILONS = [0.1, 0.25, 0.5, 1.0]


def _mixed_scale_dataset(seed: int = 1, length: int = 100, n_classes: int = 6):
    """2-D series whose axes have very different noise levels.

    Axis 0 carries the class signal with light noise; axis 1 the same
    kind of signal under ~8x the noise — so the ε that suits axis 0
    badly under-smooths axis 1, the regime where Section 5.1 predicts
    per-axis parameters can pay off.
    """
    rng = ensure_rng(seed)
    templates = [
        np.stack(
            [_harmonic_template(length, rng), _harmonic_template(length, rng)],
            axis=1,
        )
        for _ in range(n_classes)
    ]

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        out = templates[label].copy()
        shift = int(round(rng.normal(0, length * 0.02)))
        out = np.stack([time_shift(out[:, d], shift) for d in range(2)], axis=1)
        out[:, 0] = add_noise(out[:, 0], rng, 0.2)
        out[:, 1] = add_noise(out[:, 1], rng, 1.5)
        return out

    train = _make_labeled("mixed", make_instance, n_classes, 8, rng)
    test = _make_labeled("mixed", make_instance, n_classes, 8, rng)
    return ClassificationDataset("mixed", train, test)


@pytest.fixture(scope="module")
def experiment(report):
    # (1)+(2): cricket gestures — shared epsilon across similar axes.
    full, _ = gesture3d(
        n_classes=6, n_train_per_class=10, n_test_per_class=10,
        length=120, seed=0, noise_std=0.5,
    )
    shared_rows = []
    for eps in SHARED_EPSILONS:
        err = sts3_error_rate(full.train, full.test, sigma=4, epsilon=eps)
        shared_rows.append([eps, err])
    report(
        "section51_shared_epsilon",
        render_table(
            ["shared epsilon", "3-D error"],
            shared_rows,
            title="Section 5.1: one alpha_xy on similar axes (cricket 3-D)",
        ),
    )

    # (3): mixed-scale axes — shared vs per-axis epsilon.
    mixed = _mixed_scale_dataset(seed=1)
    best_shared = min(
        sts3_error_rate(mixed.train, mixed.test, sigma=2, epsilon=e)
        for e in SHARED_EPSILONS
    )
    per_axis_grid = [(a, b) for a in (0.1, 0.3) for b in (0.5, 1.0, 2.0)]
    best_per_axis = min(
        sts3_error_rate(mixed.train, mixed.test, sigma=2, epsilon=pair)
        for pair in per_axis_grid
    )
    report(
        "section51_per_axis",
        render_table(
            ["parameterization", "best error"],
            [
                ["shared epsilon (4 candidates)", best_shared],
                ["per-axis epsilons (6 candidates)", best_per_axis],
            ],
            title="Section 5.1: shared vs per-axis epsilon on mixed-scale axes",
        ),
    )
    # Per-axis parameters should not be *worse* when axes truly differ.
    assert best_per_axis <= best_shared + 0.1
    return full, mixed


def test_bench_3d_error(benchmark, experiment):
    full, _ = experiment
    benchmark.pedantic(
        lambda: sts3_error_rate(full.train, full.test, sigma=4, epsilon=0.25),
        rounds=1,
        iterations=1,
    )
