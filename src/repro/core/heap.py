"""Bounded min-heap of the k best neighbours (paper Section 5.2).

"During the processing of k-NN similarity search, we use a min heap to
maintain the greatest number of k similar time series instead of one."
The heap's top is the *worst* of the current k best; a candidate only
enters once it beats that top, and :meth:`KnnHeap.threshold` exposes the
top similarity as the pruning threshold used by Algorithms 2-4.
"""

from __future__ import annotations

import heapq

from ..exceptions import ParameterError
from .result import Neighbor

__all__ = ["KnnHeap"]


class KnnHeap:
    """Fixed-capacity min-heap over ``(similarity, index)`` pairs.

    Ties on similarity are broken toward the smaller database index so
    that all STS3 variants return identical answers on tied inputs —
    a property the equivalence tests rely on.
    """

    def __init__(self, k: int):
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        self.k = k
        # Entries are (similarity, -index): the heap's smallest entry is
        # the lowest similarity, with the *largest* index preferred for
        # eviction among ties.
        self._heap: list[tuple[float, int]] = []

    def __len__(self) -> int:
        return len(self._heap)

    @property
    def full(self) -> bool:
        return len(self._heap) >= self.k

    def threshold(self) -> float:
        """Similarity a new candidate must exceed to enter the heap.

        ``-inf`` while the heap is not yet full (everything qualifies).
        """
        if not self.full:
            return float("-inf")
        return self._heap[0][0]

    def consider(self, similarity: float, index: int) -> bool:
        """Offer a candidate; returns True when it was kept."""
        entry = (similarity, -index)
        if not self.full:
            heapq.heappush(self._heap, entry)
            return True
        if entry > self._heap[0]:
            heapq.heapreplace(self._heap, entry)
            return True
        return False

    def qualifies(self, similarity: float, index: int) -> bool:
        """Whether a candidate *would* be kept, without inserting it."""
        if not self.full:
            return True
        return (similarity, -index) > self._heap[0]

    def neighbors(self) -> list[Neighbor]:
        """Current contents, best-first (descending similarity)."""
        ordered = sorted(self._heap, reverse=True)
        return [Neighbor(similarity=sim, index=-neg) for sim, neg in ordered]
