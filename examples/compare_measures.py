"""Side-by-side comparison of every similarity measure in the library.

One dataset, nine measures: 1-NN classification error and per-query
latency for ED, DTW (dependent band), FastDTW, LCSS, FTSE-LCSS, EDR,
ERP, PAA-filtered ED, and tuned STS3.  A compact way to see the
efficiency/effectiveness landscape the paper positions STS3 inside.

Run with::

    python examples/compare_measures.py
"""

from __future__ import annotations

import time

from repro.baselines import (
    PAAFilter,
    error_rate,
    knn_search,
    measures,
    sakoe_chiba_window,
)
from repro.baselines.edr import edr_distance
from repro.baselines.erp import erp_distance
from repro.core.tuning import sts3_error_rate, tune_sigma_epsilon
from repro.data.ucr_like import cbf


def timed_error(train, test, measure) -> tuple[float, float]:
    start = time.perf_counter()
    err = error_rate(train, test, measure)
    per_query = (time.perf_counter() - start) * 1000 / len(test)
    return err, per_query


def main() -> None:
    ds = cbf(n_train_per_class=15, n_test_per_class=15, seed=5)
    print(f"{ds.describe()}\n")
    window = sakoe_chiba_window(ds.length, 0.1)

    rows: list[tuple[str, float, float]] = []
    rows.append(("ED", *timed_error(ds.train, ds.test, measures.ed())))
    rows.append(("DTW (10% band)", *timed_error(ds.train, ds.test, measures.dtw(window=window))))
    rows.append(("FastDTW (r=0)", *timed_error(ds.train, ds.test, measures.fast_dtw(0))))
    rows.append(("LCSS", *timed_error(ds.train, ds.test, measures.lcss(0.5, 0.1))))
    rows.append(("FTSE-LCSS", *timed_error(ds.train, ds.test, measures.ftse(0.5, 0.1))))
    rows.append(
        ("EDR", *timed_error(ds.train, ds.test, lambda a, b, c: edr_distance(a, b, 0.25)))
    )
    rows.append(
        ("ERP", *timed_error(ds.train, ds.test, lambda a, b, c: erp_distance(a, b)))
    )

    # PAA-filtered exact ED (same answers as ED, different engine).
    paa = PAAFilter(list(ds.train.series), segments=16)
    start = time.perf_counter()
    wrong = sum(
        1
        for series, label in ds.test
        if int(ds.train.labels[paa.nearest(series)[0]]) != label
    )
    paa_ms = (time.perf_counter() - start) * 1000 / len(ds.test)
    rows.append(("PAA-filtered ED", wrong / len(ds.test), paa_ms))

    # Tuned STS3.
    tuned = tune_sigma_epsilon(
        ds.train, sigma_grid=[2, 6, 16, 30], epsilon_grid=[0.1, 0.3, 0.7]
    )
    start = time.perf_counter()
    sts3_err = sts3_error_rate(ds.train, ds.test, tuned.sigma, tuned.epsilon)
    sts3_ms = (time.perf_counter() - start) * 1000 / len(ds.test)
    rows.append((f"STS3 (s={tuned.sigma}, e={tuned.epsilon})", sts3_err, sts3_ms))

    print(f"{'measure':<24} {'error':>7}  {'ms/query':>9}")
    for name, err, ms in rows:
        print(f"{name:<24} {err:>7.3f}  {ms:>9.2f}")


if __name__ == "__main__":
    main()
