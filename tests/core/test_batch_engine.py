"""Parity tests for the vectorized batch query engine.

The contract under test: ``STS3Database.query_batch`` (and the
underlying :class:`BatchQueryEngine`) must return *exactly* what a
sequential loop of scalar ``query()`` calls returns — same neighbour
indices, bit-identical similarities, same stats — for every method,
every ``k``, every worker count, and both intersection kernels.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.batch import BatchQueryEngine, QueryWorkspace, batch_query
from repro.core.indexed import DictInvertedIndex, IndexedSearcher
from repro.exceptions import ParameterError


def _assert_identical(scalar_results, batch_results):
    assert len(scalar_results) == len(batch_results)
    for a, b in zip(scalar_results, batch_results):
        assert [(n.index, n.similarity) for n in a.neighbors] == [
            (n.index, n.similarity) for n in b.neighbors
        ]
        assert a.stats == b.stats


def _random_sets(rng, count, hi=400, max_size=60, min_size=0):
    return [
        np.unique(
            rng.integers(0, hi, rng.integers(min_size, max_size + 1))
        ).astype(np.int64)
        for _ in range(count)
    ]


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    database = [np.cumsum(rng.normal(size=96)) for _ in range(120)]
    queries = [np.cumsum(rng.normal(size=96)) for _ in range(17)]
    # One out-of-bound query exercises Algorithm 6 cell IDs, which must
    # match nothing in the index on both kernels.
    queries.append(np.concatenate([queries[0][:48] * 25.0, queries[0][48:]]))
    # Duplicate queries must yield duplicate answers.
    queries.append(queries[3].copy())
    return database, queries


class TestDatabaseBatchParity:
    @pytest.mark.parametrize("method", ["naive", "index", "pruning", "approximate"])
    def test_matches_scalar_loop(self, workload, method):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        scalar = [db.query(q, k=3, method=method) for q in queries]
        batch = db.query_batch(queries, k=3, method=method)
        _assert_identical(scalar, batch)

    @pytest.mark.parametrize("k", [1, 2, 5, 10_000])
    def test_matches_scalar_loop_k_sweep(self, workload, k):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        scalar = [db.query(q, k=k, method="index") for q in queries]
        batch = db.query_batch(queries, k=k, method="index")
        _assert_identical(scalar, batch)

    @pytest.mark.parametrize("workers", [None, 1, 2, 3])
    def test_matches_scalar_loop_any_workers(self, workload, workers):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        scalar = [db.query(q, k=3, method="index") for q in queries]
        batch = db.query_batch(queries, k=3, method="index", workers=workers)
        _assert_identical(scalar, batch)

    def test_duplicate_queries_get_duplicate_answers(self, workload):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        batch = db.query_batch([queries[3], queries[3]], k=4, method="index")
        _assert_identical([batch[0]], [batch[1]])

    def test_with_buffered_series(self, workload):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5, buffer_capacity=8)
        # longer than every database series -> outside the time bound,
        # so the insert is buffered rather than appended
        db.insert(np.cumsum(np.random.default_rng(0).normal(size=150)))
        assert len(db.buffer) == 1
        scalar = [db.query(q, k=3, method="index") for q in queries]
        batch = db.query_batch(queries, k=3, method="index")
        _assert_identical(scalar, batch)

    def test_empty_batch(self, workload):
        database, _ = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        assert db.query_batch([], k=3, method="index") == []

    def test_rejects_unknown_method(self, workload):
        database, queries = workload
        db = STS3Database(database, sigma=4, epsilon=0.5)
        with pytest.raises(ParameterError):
            db.query_batch(queries, k=3, method="magic")


class TestEngineKernels:
    @pytest.mark.parametrize("kernel", ["sparse", "dense", "auto"])
    def test_randomized_parity_both_kernels(self, kernel):
        rng = np.random.default_rng(11)
        workspace = QueryWorkspace()
        for _ in range(4):
            searcher = IndexedSearcher(_random_sets(rng, int(rng.integers(1, 250))))
            # hi=500 > database hi=400: some query cells miss the index.
            queries = _random_sets(rng, int(rng.integers(0, 30)), hi=500)
            for k in (1, 4, 10_000):
                scalar = [searcher.query(q, k=k) for q in queries]
                engine = BatchQueryEngine(
                    searcher,
                    workspace=workspace,
                    kernel=kernel,
                    tile_cells=max(3 * len(searcher.sets), 1),
                    tile_postings=64,
                )
                _assert_identical(scalar, engine.query_batch(queries, k=k))

    @pytest.mark.parametrize("kernel", ["sparse", "dense"])
    def test_empty_sets_and_empty_queries(self, kernel):
        # Jaccard of two empty sets is 1.0 on the scalar path; the
        # batch kernels must reproduce that, not 0/0.
        sets = [
            np.empty(0, dtype=np.int64),
            np.array([3, 4], dtype=np.int64),
            np.array([9], dtype=np.int64),
        ]
        searcher = IndexedSearcher(sets)
        queries = [np.empty(0, dtype=np.int64), np.array([4, 9], dtype=np.int64)]
        scalar = [searcher.query(q, k=3) for q in queries]
        batch = batch_query(searcher, queries, k=3, kernel=kernel)
        _assert_identical(scalar, batch)

    def test_workspace_reuse_across_batch_shapes(self):
        rng = np.random.default_rng(3)
        searcher = IndexedSearcher(_random_sets(rng, 80))
        engine = BatchQueryEngine(searcher)
        for count in (31, 2, 17, 0, 31):
            queries = _random_sets(rng, count, hi=450)
            scalar = [searcher.query(q, k=5) for q in queries]
            _assert_identical(scalar, engine.query_batch(queries, k=5))
        assert engine.workspace.nbytes > 0

    def test_tiling_covers_all_queries_in_order(self):
        rng = np.random.default_rng(5)
        searcher = IndexedSearcher(_random_sets(rng, 50))
        queries = _random_sets(rng, 40)
        engine = BatchQueryEngine(
            searcher, tile_cells=len(searcher.sets), tile_postings=1
        )
        scalar = [searcher.query(q, k=2) for q in queries]
        _assert_identical(scalar, engine.query_batch(queries, k=2))
        # one query per tile under these budgets
        assert len(engine.last_kernels) == len(queries)

    def test_kernel_autoselection_records_choice(self):
        rng = np.random.default_rng(9)
        searcher = IndexedSearcher(_random_sets(rng, 100))
        engine = BatchQueryEngine(searcher)
        engine.query_batch(_random_sets(rng, 5), k=1)
        assert engine.last_kernels
        assert set(engine.last_kernels) <= {"sparse", "dense", "bitset"}

    def test_rejects_bad_parameters(self):
        searcher = IndexedSearcher([np.array([1], dtype=np.int64)])
        with pytest.raises(ParameterError):
            BatchQueryEngine(searcher, kernel="blas")
        with pytest.raises(ParameterError):
            BatchQueryEngine(searcher, tile_cells=0)
        with pytest.raises(ParameterError):
            BatchQueryEngine(searcher, tile_postings=-1)
        with pytest.raises(ParameterError):
            BatchQueryEngine(searcher).query_batch([], k=0)


class TestIndexVariantParity:
    def test_dict_index_matches_sorted_postings(self):
        rng = np.random.default_rng(13)
        for _ in range(5):
            sets = _random_sets(rng, int(rng.integers(1, 150)))
            dict_index = DictInvertedIndex(sets)
            sorted_index = IndexedSearcher(sets)
            for query in _random_sets(rng, 8, hi=500):
                for k in (1, 3, 10_000):
                    _assert_identical(
                        [sorted_index.query(query, k=k)],
                        [dict_index.query(query, k=k)],
                    )
