"""STS3 core: the paper's primary contribution.

Grid transformation (Algorithms 1, 6), Jaccard similarity, and the
four search variants (Algorithms 2-5), plus the database facade with
buffered updates and the parameter-tuning utilities.
"""

from .approximate import ApproximateSearcher
from .batch import BatchQueryEngine, QueryWorkspace, batch_query
from .bitset import BitsetStore, popcount_u64, popcount_u64_lut
from .cache import CandidateCache, LRUBytesCache, QueryResultCache, fingerprint
from .catalog import CatalogSnapshot, QuarantineRecord, SegmentCatalog
from .executor import ExecutorPool, available_cpu_count, get_pool, resolve_workers
from .clustering import cluster_series, k_medoids
from .database import STS3Database, UpdateBuffer
from .maintenance import MaintenanceConfig, MaintenanceEngine, plan_merge, tier_of
from .grid import Bound, Grid
from .planner import QueryPlanner, SegmentPlan
from .segment import Segment
from .heap import KnnHeap
from .indexed import DictInvertedIndex, IndexedSearcher
from .join import JoinPair, similarity_join
from .minhash import LSHIndex, MinHasher, MinHashSearcher, estimate_jaccard
from .subsequence import SubsequenceMatch, SubsequenceSearcher
from .jaccard import (
    intersection_size,
    jaccard,
    jaccard_distance,
    jaccard_from_intersection,
    size_upper_bound,
)
from .naive import NaiveSearcher
from .persistence import (
    default_wal_dir,
    load_database,
    recover_database,
    save_database,
    verify_archive,
)
from .wal import (
    FrameError,
    ReplayReport,
    WalGapError,
    WalTail,
    WriteAheadLog,
    parse_frames,
    read_applied_seq,
    replay_wal,
    scan_wal,
    write_applied_seq,
)
from .pruning import PruningSearcher, zone_histogram
from .replication import ReplicaSet, ReplicationError, replica_mirror_name
from .result import Neighbor, QueryResult, SearchStats, aggregate_stats
from .rpc import RpcError, RpcTimeout, WorkerDied
from .shard import HashRing, ShardError, ShardedDatabase, shard_manifest_path
from .selection import top_k_indices
from .setrep import CompressedSet, transform, transform_query
from .tuning import (
    ScaleTuningResult,
    TuningResult,
    default_epsilon_grid,
    default_sigma_grid,
    sts3_error_rate,
    tune_max_scale,
    tune_scale,
    tune_sigma_epsilon,
    tune_sigma_epsilon_unlabeled,
)

__all__ = [
    "ApproximateSearcher",
    "BatchQueryEngine",
    "BitsetStore",
    "Bound",
    "CandidateCache",
    "CatalogSnapshot",
    "CompressedSet",
    "DictInvertedIndex",
    "ExecutorPool",
    "Grid",
    "HashRing",
    "IndexedSearcher",
    "JoinPair",
    "KnnHeap",
    "LRUBytesCache",
    "LSHIndex",
    "MaintenanceConfig",
    "MaintenanceEngine",
    "MinHashSearcher",
    "MinHasher",
    "NaiveSearcher",
    "Neighbor",
    "PruningSearcher",
    "QuarantineRecord",
    "QueryPlanner",
    "QueryResult",
    "QueryResultCache",
    "QueryWorkspace",
    "FrameError",
    "ReplayReport",
    "ReplicaSet",
    "ReplicationError",
    "RpcError",
    "RpcTimeout",
    "STS3Database",
    "ScaleTuningResult",
    "SearchStats",
    "Segment",
    "SegmentCatalog",
    "SegmentPlan",
    "ShardError",
    "ShardedDatabase",
    "SubsequenceMatch",
    "SubsequenceSearcher",
    "TuningResult",
    "UpdateBuffer",
    "WalGapError",
    "WalTail",
    "WorkerDied",
    "WriteAheadLog",
    "aggregate_stats",
    "batch_query",
    "cluster_series",
    "default_epsilon_grid",
    "default_sigma_grid",
    "default_wal_dir",
    "estimate_jaccard",
    "available_cpu_count",
    "fingerprint",
    "get_pool",
    "k_medoids",
    "intersection_size",
    "jaccard",
    "similarity_join",
    "jaccard_distance",
    "jaccard_from_intersection",
    "load_database",
    "parse_frames",
    "plan_merge",
    "popcount_u64",
    "popcount_u64_lut",
    "read_applied_seq",
    "recover_database",
    "replay_wal",
    "replica_mirror_name",
    "resolve_workers",
    "save_database",
    "scan_wal",
    "shard_manifest_path",
    "size_upper_bound",
    "verify_archive",
    "sts3_error_rate",
    "tier_of",
    "top_k_indices",
    "transform",
    "transform_query",
    "tune_max_scale",
    "tune_scale",
    "tune_sigma_epsilon",
    "tune_sigma_epsilon_unlabeled",
    "write_applied_seq",
    "zone_histogram",
]
