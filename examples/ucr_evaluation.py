"""Run the paper's accuracy protocol on the *real* UCR archive.

If ``REPRO_UCR_DIR`` points at a local copy of the UCR Time Series
Classification Archive (2015 layout: ``NAME/NAME_TRAIN`` +
``NAME/NAME_TEST``), this script reruns Table 4's protocol — ED vs
banded DTW vs σ/ε-tuned STS3 — on the named datasets.  Without the
archive it falls back to the synthetic stand-ins, so the script always
runs.

Usage::

    REPRO_UCR_DIR=/path/to/UCR_TS_Archive_2015 python examples/ucr_evaluation.py ECG200 Coffee
    python examples/ucr_evaluation.py            # synthetic fallback
"""

from __future__ import annotations

import sys

from repro.baselines import error_rate, measures, sakoe_chiba_window
from repro.core.tuning import (
    default_epsilon_grid,
    default_sigma_grid,
    sts3_error_rate,
    tune_sigma_epsilon,
)
from repro.data.loader import load_ucr_dataset, ucr_archive_dir
from repro.data.registry import load_dataset

FALLBACK = ["CBF", "Device", "Shapes"]


def evaluate(ds) -> tuple[float, float, float, int, float]:
    window = sakoe_chiba_window(ds.length, 0.1)
    ed_err = error_rate(ds.train, ds.test, measures.ed())
    dtw_err = error_rate(ds.train, ds.test, measures.dtw(window=window))
    tuned = tune_sigma_epsilon(
        ds.train,
        sigma_grid=default_sigma_grid(ds.length, max_points=6),
        epsilon_grid=default_epsilon_grid(max_points=6),
    )
    sts3_err = sts3_error_rate(ds.train, ds.test, tuned.sigma, tuned.epsilon)
    return ed_err, dtw_err, sts3_err, tuned.sigma, tuned.epsilon


def main() -> None:
    names = sys.argv[1:]
    archive = ucr_archive_dir()
    if archive is None:
        print("REPRO_UCR_DIR not set — using synthetic stand-ins "
              f"{FALLBACK} at scale 0.1\n")
        datasets = [load_dataset(n, scale=0.1, seed=0) for n in (names or FALLBACK)]
    else:
        if not names:
            print("usage: ucr_evaluation.py NAME [NAME...] with REPRO_UCR_DIR set")
            raise SystemExit(2)
        print(f"loading {names} from {archive}\n")
        datasets = [load_ucr_dataset(n) for n in names]

    print(f"{'dataset':<16} {'ED':>7} {'DTW':>7} {'STS3':>7}   tuned (sigma, eps)")
    for ds in datasets:
        ed_err, dtw_err, sts3_err, sigma, epsilon = evaluate(ds)
        print(
            f"{ds.name:<16} {ed_err:>7.3f} {dtw_err:>7.3f} {sts3_err:>7.3f}"
            f"   ({sigma}, {epsilon})"
        )


if __name__ == "__main__":
    main()
