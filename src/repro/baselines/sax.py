"""Symbolic Aggregate approXimation (SAX) — Lin, Keogh, Lonardi, Chiu.

SAX discretizes a PAA reduction into an alphabet using Gaussian
breakpoints (z-normalized series have ~N(0,1) values, so equiprobable
bins come from the normal quantiles).  Its MINDIST between two SAX
words lower-bounds the Euclidean distance of the originals, enabling
the same exact filter-and-refine search pattern as PAA.

Part of the representation family the paper surveys in Section 8.1 —
STS3's closest conceptual relatives, since SAX also trades exact values
for coarse symbols.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .paa import paa_transform

__all__ = ["gaussian_breakpoints", "sax_transform", "sax_mindist"]


def gaussian_breakpoints(alphabet_size: int) -> np.ndarray:
    """The ``alphabet_size − 1`` equiprobable N(0,1) cut points.

    Computed from the inverse normal CDF, so any alphabet size works
    (the classic SAX paper tabulates 3-10).
    """
    if alphabet_size < 2:
        raise ParameterError(f"alphabet_size must be >= 2, got {alphabet_size}")
    from scipy.stats import norm

    quantiles = np.arange(1, alphabet_size) / alphabet_size
    return norm.ppf(quantiles)


def sax_transform(
    series: np.ndarray, segments: int, alphabet_size: int = 8
) -> np.ndarray:
    """SAX word of ``series``: PAA then symbol per frame (0-based ints)."""
    means = paa_transform(series, segments)
    breakpoints = gaussian_breakpoints(alphabet_size)
    return np.searchsorted(breakpoints, means, side="right").astype(np.int64)


def sax_mindist(
    word_a: np.ndarray,
    word_b: np.ndarray,
    original_length: int,
    alphabet_size: int = 8,
) -> float:
    """MINDIST between two SAX words — a lower bound on their ED.

    Symbols one bin apart (or equal) contribute 0; otherwise the gap
    between the nearer breakpoints.  Scaled by ``sqrt(n/M)`` like the
    PAA bound it derives from.
    """
    if word_a.shape != word_b.shape:
        raise ParameterError("SAX words must share a resolution")
    breakpoints = gaussian_breakpoints(alphabet_size)
    hi = np.maximum(word_a, word_b)
    lo = np.minimum(word_a, word_b)
    adjacent = (hi - lo) <= 1
    # gap between the breakpoint below hi and the one above lo; indices
    # are clipped because np.where evaluates both branches and adjacent
    # pairs may index past the table (their branch is discarded anyway)
    hi_idx = np.clip(hi - 1, 0, len(breakpoints) - 1)
    lo_idx = np.clip(lo, 0, len(breakpoints) - 1)
    cell = np.where(adjacent, 0.0, breakpoints[hi_idx] - breakpoints[lo_idx])
    segments = len(word_a)
    return float(
        np.sqrt(original_length / segments) * np.sqrt(np.sum(cell * cell))
    )
