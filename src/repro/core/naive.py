"""Naive STS3 (Algorithm 2): a full scan over set representations.

The query's set representation is compared with every database set and
the k best Jaccard similarities are kept in a min-heap.  Following
Section 7.1 ("the naive STS3 combined with an early-stopping strategy")
the scan can skip candidates whose size-based upper bound
``min(|S|,|Q|)/max(|S|,|Q|)`` already falls below the current k-th best
similarity — the bound is exact to compute and admissible, so the
result is unchanged.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import span
from .heap import KnnHeap
from .jaccard import jaccard, size_upper_bound
from .result import QueryResult, SearchStats

__all__ = ["NaiveSearcher"]


class NaiveSearcher:
    """Linear-scan k-NN search over a list of cell-ID sets."""

    def __init__(self, sets: list[np.ndarray], early_stop: bool = True):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        self.sets = sets
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        self.early_stop = early_stop

    def __len__(self) -> int:
        return len(self.sets)

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        """Return the ``k`` most Jaccard-similar sets to ``query_set``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        heap = KnnHeap(k)
        stats = SearchStats(candidates=len(self.sets))
        q_len = len(query_set)
        # The naive scan has no separate filter phase: the size bound
        # and the exact merge interleave, so the whole loop is "refine".
        with span("refine"):
            for index, candidate in enumerate(self.sets):
                if self.early_stop and heap.full:
                    bound = size_upper_bound(len(candidate), q_len)
                    if not heap.qualifies(bound, index):
                        stats.pruned += 1
                        continue
                similarity = jaccard(candidate, query_set)
                stats.exact_computations += 1
                heap.consider(similarity, index)
        stats.final_candidates = len(heap)
        with span("select_topk"):
            neighbors = heap.neighbors()
        return QueryResult(neighbors=neighbors, stats=stats)
