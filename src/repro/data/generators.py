"""Low-level building blocks for synthetic time-series generation.

These primitives are composed by :mod:`repro.data.ecg` and
:mod:`repro.data.ucr_like` into the dataset families used throughout the
reproduction.  Each function takes an explicit ``numpy`` random
generator so that every dataset in the repository is reproducible from a
single integer seed.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..exceptions import ParameterError

__all__ = [
    "ensure_rng",
    "gaussian_bump",
    "harmonic_series",
    "random_walk",
    "time_shift",
    "random_warp",
    "add_noise",
]


def ensure_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts an existing generator (returned unchanged), an integer seed,
    or ``None`` (fresh OS entropy).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def gaussian_bump(length: int, center: float, width: float, height: float = 1.0) -> np.ndarray:
    """A Gaussian-shaped bump sampled on ``0 .. length-1``.

    ``center`` and ``width`` are in samples.  Used for ECG wave
    components and burst events in device profiles.
    """
    if length <= 0:
        raise ParameterError(f"length must be positive, got {length}")
    if width <= 0:
        raise ParameterError(f"width must be positive, got {width}")
    t = np.arange(length, dtype=np.float64)
    return height * np.exp(-0.5 * ((t - center) / width) ** 2)


def harmonic_series(
    length: int,
    amplitudes: Sequence[float],
    phases: Sequence[float],
    base_period: float,
) -> np.ndarray:
    """Sum of sinusoidal harmonics — a smooth, band-limited curve.

    Harmonic ``i`` (1-based) has period ``base_period / i``.  Used for
    the smooth "outline" classification families (shapesAll / Herring
    style stand-ins).
    """
    if length <= 0:
        raise ParameterError(f"length must be positive, got {length}")
    if len(amplitudes) != len(phases):
        raise ParameterError("amplitudes and phases must have equal length")
    if base_period <= 0:
        raise ParameterError(f"base_period must be positive, got {base_period}")
    t = np.arange(length, dtype=np.float64)
    out = np.zeros(length, dtype=np.float64)
    for i, (amp, phase) in enumerate(zip(amplitudes, phases), start=1):
        out += amp * np.sin(2.0 * np.pi * i * t / base_period + phase)
    return out


def random_walk(length: int, rng: np.random.Generator, step_std: float = 1.0) -> np.ndarray:
    """Cumulative-sum Gaussian random walk of ``length`` samples."""
    if length <= 0:
        raise ParameterError(f"length must be positive, got {length}")
    return np.cumsum(rng.normal(0.0, step_std, size=length))


def time_shift(series: np.ndarray, shift: int) -> np.ndarray:
    """Shift a series along the time axis, padding with edge values.

    Positive ``shift`` moves content to the right (later in time).  The
    output has the same length as the input.
    """
    if shift == 0:
        return series.copy()
    out = np.empty_like(series)
    if shift > 0:
        out[shift:] = series[:-shift]
        out[:shift] = series[0]
    else:
        out[:shift] = series[-shift:]
        out[shift:] = series[-1]
    return out


def random_warp(series: np.ndarray, rng: np.random.Generator, strength: float = 0.05) -> np.ndarray:
    """Apply a smooth random time warp to a 1-D series.

    The time axis is re-sampled through a monotone map built from a few
    random control points; ``strength`` controls how far the map may
    deviate from the identity (as a fraction of the series length).
    This mimics the local tempo variation that DTW is designed to
    absorb.
    """
    if series.ndim != 1:
        raise ParameterError("random_warp expects a 1-D series")
    if strength < 0:
        raise ParameterError(f"strength must be non-negative, got {strength}")
    n = len(series)
    if n < 3 or strength == 0:
        return series.copy()
    n_knots = 5
    knots = np.linspace(0.0, n - 1.0, n_knots)
    offsets = rng.normal(0.0, strength * n, size=n_knots)
    offsets[0] = offsets[-1] = 0.0
    warped_knots = np.sort(np.clip(knots + offsets, 0.0, n - 1.0))
    source_positions = np.interp(np.arange(n), knots, warped_knots)
    return np.interp(source_positions, np.arange(n), series)


def add_noise(series: np.ndarray, rng: np.random.Generator, noise_std: float) -> np.ndarray:
    """Return ``series`` plus i.i.d. Gaussian noise of the given std."""
    if noise_std < 0:
        raise ParameterError(f"noise_std must be non-negative, got {noise_std}")
    if noise_std == 0:
        return series.copy()
    return series + rng.normal(0.0, noise_std, size=series.shape)
