"""Benches for the future-work extensions (paper conclusion).

1. **MinHash/LSH vs inverted list** — "scaling our approach on large
   datasets": recall and per-query latency of the LSH candidate
   generator against the exact inverted-list searcher.
2. **Parallel batch queries** — "adopting a parallelized mechanism":
   thread-pool scaling of ``STS3Database.query_batch``.
3. **Subsequence search** — sparse-join candidate generation vs the
   brute-force sliding scan.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import (
    IndexedSearcher,
    MinHashSearcher,
    STS3Database,
    SubsequenceSearcher,
    jaccard,
)
from repro.data import ecg_stream
from repro.data.workloads import ecg_workload


class TestMinHashVsIndex:
    @pytest.fixture(scope="class")
    def setup(self, report):
        workload = ecg_workload(
            scaled(20_000, minimum=400), scaled(200, minimum=20), length=256, seed=11
        )
        db = STS3Database(workload.database, sigma=3, epsilon=0.5, normalize=False)
        query_sets = [db.transform_query(q) for q in workload.queries]
        exact = IndexedSearcher(db.sets)
        approx = MinHashSearcher(db.sets, num_perm=128, bands=32)

        with Timer() as t_exact:
            truth = [exact.query(q, k=1).best.index for q in query_sets]
        with Timer() as t_lsh:
            answers = [approx.query(q, k=1).best.index for q in query_sets]
        recall = float(np.mean([a == b for a, b in zip(truth, answers)]))
        candidate_share = float(
            np.mean(
                [approx.query(q, k=1).stats.final_candidates / len(db.sets)
                 for q in query_sets[:10]]
            )
        )
        report(
            "extension_minhash",
            render_table(
                ["searcher", "batch ms", "1-NN recall", "candidate share"],
                [
                    ["inverted list (exact)", t_exact.millis, 1.0, 1.0],
                    ["MinHash LSH (128 perms, 32 bands)", t_lsh.millis, recall, candidate_share],
                ],
                title=f"Extension: MinHash/LSH vs inverted list (N={len(db.sets)})",
            ),
        )
        assert recall >= 0.6  # near-duplicate heavy workload: LSH should hit
        return exact, approx, query_sets

    def test_bench_exact(self, benchmark, setup):
        exact, _, query_sets = setup
        benchmark(lambda: exact.query(query_sets[0], k=1))

    def test_bench_lsh(self, benchmark, setup):
        _, approx, query_sets = setup
        benchmark(lambda: approx.query(query_sets[0], k=1))


class TestParallelBatch:
    @pytest.fixture(scope="class")
    def setup(self, report):
        workload = ecg_workload(
            scaled(10_000, minimum=300), scaled(400, minimum=40), length=256, seed=12
        )
        db = STS3Database(workload.database, sigma=3, epsilon=0.5, normalize=False)
        db.indexed_searcher()
        rows = []
        base = None
        for workers in (1, 2, 4):
            with Timer() as t:
                db.query_batch(workload.queries, k=1, method="index", workers=workers)
            base = base or t.seconds
            rows.append([workers, t.millis, base / t.seconds])
        import os

        cpus = os.cpu_count() or 1
        report(
            "extension_parallel",
            render_table(
                ["workers", "batch ms", "speed-up"],
                rows,
                title=(
                    f"Extension: process-parallel batch queries "
                    f"(index method, host has {cpus} CPU(s) — speed-up is "
                    f"bounded by that)"
                ),
            ),
        )
        return db, workload

    def test_bench_parallel4(self, benchmark, setup):
        db, workload = setup
        benchmark.pedantic(
            lambda: db.query_batch(workload.queries[:40], k=1, method="index", workers=4),
            rounds=1,
            iterations=1,
        )


class TestSubsequence:
    @pytest.fixture(scope="class")
    def setup(self, report):
        stream = ecg_stream(scaled(400_000, minimum=20_000), seed=13)
        searcher = SubsequenceSearcher(stream, sigma=4, epsilon=0.3)
        query = stream[5_000:5_256].copy()

        with Timer() as t_fast:
            (match,) = searcher.search(query, k=1, refine=True)
        # brute force over a *sample* of offsets for a timing reference
        n = len(query)
        q_cols = np.arange(n) // searcher.sigma
        q_rows = searcher._rows_of(query)
        q_set = np.unique(q_cols * searcher._n_rows + q_rows)
        sample = range(0, len(stream) - n, 64)
        with Timer() as t_brute:
            brute = max(
                ((jaccard(searcher.window_set(o, n), q_set), o) for o in sample)
            )
        scale_factor = 64  # the brute scan only touched 1/64 of offsets
        report(
            "extension_subsequence",
            render_table(
                ["approach", "ms", "best offset", "similarity"],
                [
                    ["sparse-join + refine", t_fast.millis, match.offset, match.similarity],
                    [
                        f"brute force (x{scale_factor} extrapolated)",
                        t_brute.millis * scale_factor,
                        brute[1],
                        brute[0],
                    ],
                ],
                title=f"Extension: subsequence search over {len(stream)} points",
            ),
        )
        assert match.offset == 5_000
        assert match.similarity == 1.0
        return searcher, query

    def test_bench_search(self, benchmark, setup):
        searcher, query = setup
        benchmark.pedantic(
            lambda: searcher.search(query, k=1, refine=False), rounds=3, iterations=1
        )
