"""Tests for the paper's workload-construction protocol."""

import numpy as np
import pytest

from repro.data.normalize import is_z_normalized
from repro.data.workloads import ecg_workload, make_workload, slice_stream
from repro.exceptions import DatasetError, ParameterError


class TestSliceStream:
    def test_consecutive_nonoverlapping(self):
        stream = np.arange(100.0)
        slices = slice_stream(stream, count=4, length=25)
        assert len(slices) == 4
        # z-normalized slices of a linear ramp are all identical
        assert all(np.allclose(s, slices[0]) for s in slices)

    def test_each_slice_normalized(self):
        stream = np.sin(np.linspace(0, 40, 400))
        for s in slice_stream(stream, 4, 100):
            assert is_z_normalized(s, tolerance=1e-6)

    def test_start_offset(self):
        stream = np.concatenate([np.zeros(50), np.sin(np.linspace(0, 9, 50))])
        (only,) = slice_stream(stream, 1, 50, start=50)
        assert only.std() == pytest.approx(1.0)

    def test_too_short_raises(self):
        with pytest.raises(DatasetError):
            slice_stream(np.zeros(99), count=4, length=25)

    def test_bad_params_raise(self):
        with pytest.raises(ParameterError):
            slice_stream(np.zeros(10), count=0, length=5)
        with pytest.raises(ParameterError):
            slice_stream(np.zeros(10), count=1, length=0)


class TestMakeWorkload:
    def test_database_then_queries(self):
        stream = np.arange(0, 140.0) ** 1.5
        wl = make_workload(stream, n_series=5, n_queries=2, length=20)
        assert len(wl.database) == 5
        assert len(wl.queries) == 2
        assert wl.length == 20
        assert wl.metadata["n_series"] == 5

    def test_queries_follow_database(self):
        stream = np.random.default_rng(0).normal(size=200)
        wl = make_workload(stream, 3, 1, 40)
        from repro.data.normalize import z_normalize

        expected = z_normalize(stream[120:160])
        assert np.allclose(wl.queries[0], expected)


class TestECGWorkload:
    def test_builds(self):
        wl = ecg_workload(n_series=10, n_queries=2, length=64, seed=0)
        assert len(wl.database) == 10
        assert len(wl.queries) == 2
        assert wl.name == "ecg"

    def test_reproducible(self):
        a = ecg_workload(5, 1, 32, seed=2)
        b = ecg_workload(5, 1, 32, seed=2)
        assert np.array_equal(a.database[0], b.database[0])
