"""Related-work bench: representation methods (paper Section 8.1).

STS3 is itself a representation method; this bench positions it against
the classical representation-based exact NN searches — PAA, DFT, and
SAX-filtered Euclidean scans — on the same ECG workload.  For each
method: per-query latency and, for the filters, the share of exact ED
computations avoided.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import DFTFilter, PAAFilter, euclidean, knn_search, measures
from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(10_000, minimum=300)
    n_queries = scaled(100, minimum=10)
    workload = ecg_workload(n_series, n_queries, length=256, seed=15)

    # Plain ED scan (early abandoning).
    with Timer() as t_ed:
        for q in workload.queries:
            knn_search(workload.database, q, measures.ed(), k=1)

    # PAA-filtered exact ED.
    paa = PAAFilter(workload.database, segments=16)
    with Timer() as t_paa:
        for q in workload.queries:
            paa.nearest(q)

    # DFT-filtered exact ED.
    dft = DFTFilter(workload.database, n_coefficients=16)
    with Timer() as t_dft:
        for q in workload.queries:
            dft.nearest(q)

    # STS3 (different similarity, shown for the latency frame of
    # reference the paper's Section 8.1 comparison implies).
    db = STS3Database(workload.database, sigma=3, epsilon=0.5, normalize=False)
    db.indexed_searcher()
    with Timer() as t_sts3:
        for q in workload.queries:
            db.query(q, k=1, method="index")

    total = n_series * n_queries
    rows = [
        ["ED scan (early abandon)", t_ed.millis / n_queries, "-"],
        [
            "PAA filter + exact ED",
            t_paa.millis / n_queries,
            1.0 - paa.stats["exact_computed"] / total,
        ],
        [
            "DFT filter + exact ED",
            t_dft.millis / n_queries,
            1.0 - dft.stats["exact_computed"] / total,
        ],
        ["STS3 (index, Jaccard)", t_sts3.millis / n_queries, "-"],
    ]
    report(
        "representations",
        render_table(
            ["method", "ms / query", "ED scans avoided"],
            rows,
            title=(
                f"Section 8.1 representations on ECG windows "
                f"(#series={n_series}, len=256)"
            ),
        ),
    )
    # Shape: the lower-bound filters avoid a large share of exact EDs.
    assert paa.stats["exact_computed"] < total
    assert dft.stats["exact_computed"] < total
    return workload, paa, dft, db


def test_filters_exact(experiment):
    """PAA and DFT filtered answers equal the brute-force ED 1-NN."""
    workload, paa, dft, _ = experiment
    for q in workload.queries[:5]:
        brute = min(
            (euclidean(q, s), i) for i, s in enumerate(workload.database)
        )
        assert paa.nearest(q)[0] == brute[1]
        assert dft.nearest(q)[0] == brute[1]


def test_bench_paa(benchmark, experiment):
    workload, paa, *_ = experiment
    benchmark(lambda: paa.nearest(workload.queries[0]))


def test_bench_dft(benchmark, experiment):
    workload, _, dft, _ = experiment
    benchmark(lambda: dft.nearest(workload.queries[0]))


def test_bench_sts3(benchmark, experiment):
    workload, _, _, db = experiment
    benchmark(lambda: db.query(workload.queries[0], k=1, method="index"))
