"""The sharded engine answers exactly like the single-process engine.

docs/sharding.md's three contracts, exercised with real worker
processes on deliberately small corpora (two shards, short series —
these tests fork and recover workers, so the workload is sized for the
lifecycle, not for throughput):

1. **bit-identity** — scatter-gather top-k equals the single-process
   top-k with similarities compared as ``float.hex``,
2. **durability** — an acknowledged insert survives SIGKILL of its
   owning worker and a close/reopen without checkpoint,
3. **degradation** — a query during an outage names the missing shard
   instead of raising, and the next query heals.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.shard import HashRing, ShardedDatabase, ShardError
from repro.exceptions import ParameterError

LENGTH = 32
SIGMA = 2
EPSILON = 0.5


def make_series(rng, n):
    return [rng.normal(size=LENGTH) for _ in range(n)]


def hex_answers(results):
    """Exact neighbor lists: (global id, similarity as hex) per query."""
    return [
        [(n.index, float(n.similarity).hex()) for n in r.neighbors]
        for r in results
    ]


def build_pair(tmp_path, seed=11, n_series=120, shards=2):
    """The same corpus as a single-process database and a sharded one."""
    rng = np.random.default_rng(seed)
    series = make_series(rng, n_series)
    single = STS3Database(series, sigma=SIGMA, epsilon=EPSILON, normalize=False)
    sharded = ShardedDatabase.build(
        series, shards, tmp_path / "shards",
        sigma=SIGMA, epsilon=EPSILON, normalize=False,
    )
    return single, sharded, rng


class TestParity:
    def test_batch_answers_bit_identical(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path)
        try:
            queries = make_series(rng, 8)
            expected = single.query_batch(queries, k=7)
            got = sharded.query_batch(queries, k=7)
            assert hex_answers(got) == hex_answers(expected)
            assert all(r.complete for r in got)
            assert all(r.skipped_shards == [] for r in got)
        finally:
            single.close()
            sharded.close()

    def test_scalar_query_matches_batch(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path, n_series=80)
        try:
            query = rng.normal(size=LENGTH)
            assert hex_answers([sharded.query(query, k=5)]) == hex_answers(
                [single.query(query, k=5)]
            )
        finally:
            single.close()
            sharded.close()

    def test_merged_stats_accumulate_all_shards(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path, n_series=80)
        try:
            [result] = sharded.query_batch([rng.normal(size=LENGTH)], k=3)
            # Every stored series is someone's candidate in the exact
            # path, so the summed counters must cover the whole corpus.
            assert result.stats.candidates > 0
            assert len(sharded) == 80
        finally:
            single.close()
            sharded.close()

    def test_k_capped_by_total_series_not_shard_size(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            query = rng.normal(size=LENGTH)
            got = sharded.query(query, k=60)
            expected = single.query(query, k=60)
            assert hex_answers([got]) == hex_answers([expected])
            assert len(got.neighbors) == 60  # more than any one shard owns
        finally:
            single.close()
            sharded.close()

    def test_empty_batch_returns_empty(self, tmp_path):
        _, sharded, _ = build_pair(tmp_path, n_series=60)
        try:
            assert sharded.query_batch([], k=3) == []
        finally:
            sharded.close()

    def test_unknown_method_rejected(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            with pytest.raises(ParameterError):
                sharded.query(rng.normal(size=LENGTH), method="nope")
        finally:
            sharded.close()


class TestInsertRouting:
    def test_report_names_the_ring_owner(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            ring = HashRing(
                sharded.n_shards,
                sharded.manifest["hash_seed"],
                sharded.manifest["vnodes"],
            )
            before = len(sharded)
            for offset in range(4):
                report = sharded.insert(rng.normal(size=LENGTH))
                assert report["id"] == before + offset
                assert report["shard"] == ring.owner(report["id"])
                assert report["path"] in ("buffered", "direct")
                assert report["n_series"] == before + offset + 1
        finally:
            sharded.close()

    def test_inserted_series_is_findable_under_its_global_id(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            probe = rng.normal(size=LENGTH) * 8.0  # out on its own
            report = sharded.insert(probe)
            result = sharded.query(probe, k=1)
            assert result.neighbors[0].index == report["id"]
        finally:
            sharded.close()


class TestPersistence:
    def test_save_reopen_round_trip(self, tmp_path):
        single, sharded, rng = build_pair(tmp_path, n_series=80)
        directory = sharded.directory
        queries = make_series(rng, 4)
        try:
            expected = hex_answers(single.query_batch(queries, k=5))
        finally:
            single.close()
        sharded.save()
        sharded.close()
        reopened = ShardedDatabase.open(directory)
        try:
            assert len(reopened) == 80
            assert hex_answers(reopened.query_batch(queries, k=5)) == expected
        finally:
            reopened.close()

    def test_buffered_insert_survives_reopen_without_checkpoint(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        directory = sharded.directory
        probe = rng.normal(size=LENGTH) * 8.0
        try:
            report = sharded.insert(probe)
            assert report["path"] in ("buffered", "direct")
        finally:
            sharded.close()  # no save(): the WAL is the only record
        reopened = ShardedDatabase.open(directory)
        try:
            assert len(reopened) == 61
            result = reopened.query(probe, k=1)
            assert result.neighbors[0].index == report["id"]
        finally:
            reopened.close()

    def test_open_rejects_directory_without_manifest(self, tmp_path):
        with pytest.raises(ShardError):
            ShardedDatabase.open(tmp_path)

    def test_status_covers_every_shard(self, tmp_path):
        _, sharded, _ = build_pair(tmp_path, n_series=60)
        try:
            status = sharded.status()
            assert status["shards"] == 2
            assert status["workers_live"] == 2
            assert len(status["per_shard"]) == 2
            assert all(entry["alive"] for entry in status["per_shard"])
            assert (
                sum(e["n_series"] for e in status["per_shard"])
                == status["series_total"]
                == 60
            )
            assert sharded.verify_integrity() == []
        finally:
            sharded.close()


class TestFaults:
    def test_kill_degrade_then_heal(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        try:
            probe = rng.normal(size=LENGTH) * 8.0
            report = sharded.insert(probe)
            sharded.kill_worker(report["shard"])
            degraded = sharded.query(probe, k=1)
            assert not degraded.complete
            assert degraded.skipped_shards == [f"shard-{report['shard']}"]
            assert "shard" in (degraded.degraded_reason or "")
            # the dead worker was reaped during the degraded scatter;
            # the next query restarts it (WAL replay included)
            healed = sharded.query(probe, k=1)
            assert healed.complete
            assert healed.skipped_shards == []
            assert healed.neighbors[0].index == report["id"]
        finally:
            sharded.close()

    def test_fault_point_crashes_worker_mid_request(self, tmp_path):
        # workers fork with the installed plan, so a crash at the
        # shard.worker.request point kills them on their first request
        from repro import faults
        from repro.faults import Fault, FaultPlan

        rng = np.random.default_rng(3)
        series = make_series(rng, 60)
        plan = FaultPlan([Fault("shard.worker.request", "crash", hit=1)], seed=1)
        with faults.inject(plan):
            sharded = ShardedDatabase.build(
                series, 2, tmp_path / "shards",
                sigma=SIGMA, epsilon=EPSILON, normalize=False,
            )
        try:
            degraded = sharded.query(rng.normal(size=LENGTH), k=3)
            assert not degraded.complete
            assert degraded.skipped_shards == ["shard-0", "shard-1"]
            # restarts fork from the (plan-free) parent: healed
            healed = sharded.query(rng.normal(size=LENGTH), k=3)
            assert healed.complete
            assert len(healed.neighbors) == 3
        finally:
            sharded.close()

    def test_restart_counts_as_worker_failure_metrics(self, tmp_path):
        from repro.obs.metrics import get_registry

        _, sharded, _ = build_pair(tmp_path, n_series=60)
        try:
            restarts = get_registry().counter("sts3_shard_restarts_total")
            before = restarts.value(shard="0")
            sharded.kill_worker(0)
            sharded.query(np.zeros(LENGTH) + 0.5, k=1)
            sharded.query(np.zeros(LENGTH) + 0.5, k=1)
            assert restarts.value(shard="0") >= before + 1
            assert "sts3_shard_restarts_total" in get_registry().to_prometheus()
        finally:
            sharded.close()


class TestBuildValidation:
    def test_empty_collection_rejected(self, tmp_path):
        with pytest.raises(ParameterError):
            ShardedDatabase.build(
                [], 2, tmp_path / "s", sigma=SIGMA, epsilon=EPSILON
            )

    def test_too_many_shards_for_corpus_rejected(self, tmp_path):
        rng = np.random.default_rng(0)
        with pytest.raises(ParameterError):
            ShardedDatabase.build(
                make_series(rng, 2), 16, tmp_path / "s",
                sigma=SIGMA, epsilon=EPSILON, normalize=False,
            )

    def test_from_database_matches_source_answers(self, tmp_path):
        rng = np.random.default_rng(23)
        series = make_series(rng, 80)
        queries = make_series(rng, 4)
        source = STS3Database(
            series, sigma=SIGMA, epsilon=EPSILON, normalize=False
        )
        try:
            expected = hex_answers(source.query_batch(queries, k=5))
            sharded = ShardedDatabase.from_database(
                source, 2, tmp_path / "shards"
            )
        finally:
            source.close()
        try:
            assert hex_answers(sharded.query_batch(queries, k=5)) == expected
        finally:
            sharded.close()

    def test_closed_database_rejects_operations(self, tmp_path):
        _, sharded, rng = build_pair(tmp_path, n_series=60)
        sharded.close()
        sharded.close()  # idempotent
        with pytest.raises(ShardError):
            sharded.query(rng.normal(size=LENGTH))
        with pytest.raises(ShardError):
            sharded.insert(rng.normal(size=LENGTH))
