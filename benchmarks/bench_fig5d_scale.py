"""Figure 5(d): pruning-based STS3 — speed-up and pruning rate vs scale.

Paper Section 7.4.4: the speed-up over the naive scan rises to a peak
at a mid-range ``scale`` and then falls (the zone bound gets tighter
but costs more to evaluate), while the pruning rate rises sharply and
saturates near 1.
"""

from __future__ import annotations

import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload

SCALES = [2, 5, 10, 20, 35, 50]


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=300)
    n_queries = scaled(200, minimum=5)
    workload = ecg_workload(n_series, n_queries, length=500, seed=4)
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)

    with Timer() as naive_t:
        for q in workload.queries:
            db.query(q, k=1, method="naive")

    rows = []
    speedups = {}
    for scale in SCALES:
        db.pruning_searcher(scale)  # build the zone histograms offline
        pruned = 0
        candidates = 0
        with Timer() as t:
            for q in workload.queries:
                result = db.query(q, k=1, method="pruning", scale=scale)
                pruned += result.stats.pruned
                candidates += result.stats.candidates
        speedup = naive_t.seconds / max(t.seconds, 1e-9)
        pruning_rate = pruned / max(candidates, 1)
        rows.append([scale, speedup, pruning_rate])
        speedups[scale] = speedup
    report(
        "fig5d_scale",
        render_table(
            ["scale", "speed-up", "pruning rate"],
            rows,
            title=(
                f"Figure 5(d): pruning STS3 vs scale "
                f"(#series={n_series}, naive={naive_t.millis:.0f} ms)"
            ),
        ),
    )
    # Shape: pruning rate is (weakly) increasing in scale.
    rates = [r[2] for r in rows]
    assert rates[-1] >= rates[0]
    return db, workload


@pytest.mark.parametrize("scale", [2, 10, 50])
def test_bench_pruning_scale(benchmark, experiment, scale):
    db, workload = experiment
    query = workload.queries[0]
    db.pruning_searcher(scale)
    benchmark(lambda: db.query(query, k=1, method="pruning", scale=scale))
