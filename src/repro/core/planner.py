"""Per-segment query planning and execution (DESIGN.md §10).

:class:`QueryPlanner` turns ``(query, k, method)`` into one
:class:`SegmentPlan` per live segment, runs each segment's searcher
under its own grid, and merges the per-segment top-k (plus the update
buffer) with the deterministic ``(similarity desc, index asc)``
tie-break — the Lernaean-Hydra-style per-partition answer merge, but
with bit-exact parity guarantees against the pre-segmented engine:

- On a single-segment catalog with an empty buffer the planner returns
  the segment result *unchanged* — same neighbours, same stats, same
  spans as the seed's monolithic path.
- Delta segments (sealed buffers) are always searched *exactly*, even
  when ``method="approximate"`` was requested: the seed scanned the
  buffer exhaustively, and a sealed buffer keeps that contract.  The
  requested method runs verbatim on the base segment only.
- Merged statistics are the counter-wise sums over segments plus the
  buffer's exhaustive scan, exactly reproducing the seed's
  ``_merge_buffer`` accounting.

Planning is method + segment-size aware: a calibrated method (from
``STS3Database.calibrate``) pins ``auto``; tiny delta segments run the
naive scan because index/pruning structures cost more than they save
below :data:`SMALL_SEGMENT` series.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, replace

import numpy as np

from ..obs import get_registry, span
from .batch import QueryWorkspace
from .catalog import SegmentCatalog
from .executor import get_pool, resolve_workers
from .heap import KnnHeap
from .jaccard import jaccard
from .result import QueryResult, SearchStats
from .segment import Segment
from .setrep import transform_query

__all__ = [
    "DEADLINE_SOFT_FRACTION",
    "MIN_BATCH_SHARD",
    "QueryPlanner",
    "SegmentPlan",
    "SMALL_SEGMENT",
]

#: below this many series a delta segment is scanned naively — building
#: postings/zone tables for a handful of series costs more than the
#: exhaustive scan they would accelerate.
SMALL_SEGMENT = 64

#: past this fraction of a query's deadline, remaining exact segment
#: plans downgrade to approximate (the first rung of the degradation
#: ladder — exact → approximate → skipped; DESIGN.md §12).
DEADLINE_SOFT_FRACTION = 0.5

#: methods the soft-deadline rung can downgrade (``approximate`` is
#: already the cheap rung; tiny segments stay naive — the exhaustive
#: scan over a handful of series is cheaper than any filter).
_EXACTISH = ("naive", "index", "pruning", "minhash")

#: parallel ``execute_batch`` never cuts a segment's query batch into
#: shards smaller than this — below it, per-shard fixed costs (plan,
#: transform dispatch, kernel setup) eat the concurrency win.
MIN_BATCH_SHARD = 16


@dataclass(frozen=True)
class SegmentPlan:
    """One segment's slice of a query plan.

    ``offset`` is the global index of the segment's first series: the
    executor adds it to segment-local neighbour indices when merging.
    ``kernel`` is filled in during execution: the batch-engine kernel
    ("sparse"/"dense"/"bitset") that answered an index-planned segment,
    or ``"scalar"`` for per-query searcher paths.  Plans of the last
    execution are kept on :attr:`QueryPlanner.last_plans`.
    """

    segment_id: int
    offset: int
    method: str
    kernel: str | None = None


class QueryPlanner:
    """Plans and executes k-NN queries across a segment catalog."""

    def __init__(
        self,
        catalog: SegmentCatalog,
        default_scale: int = 6,
        default_max_scale: int = 4,
        max_workers: int | None = None,
    ):
        self.catalog = catalog
        self.default_scale = int(default_scale)
        self.default_max_scale = int(default_max_scale)
        #: thread-parallelism knob (DESIGN.md §13): ``None`` keeps the
        #: serial paths byte-identical to previous releases, ``0`` uses
        #: one worker per CPU, ``n`` uses n.  Settable live.
        self.max_workers = max_workers
        self._calibrated: tuple[int, str] | None = None
        #: plans of the most recent execute/execute_batch call, with
        #: their executed kernels recorded (diagnostic).
        self.last_plans: list[SegmentPlan] = []
        #: monotonic-seconds clock for deadline accounting — injectable
        #: so degradation tests advance time deterministically.
        self.clock = time.monotonic
        # Per-pool-thread QueryWorkspace registry (workspaces are not
        # thread-safe; each executor thread reuses its own).
        self._worker_local = threading.local()

    # -- pickling (process-based query_batch workers) --------------------

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_worker_local"]  # holds thread-affine scratch only
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._worker_local = threading.local()

    @property
    def calibrated_method(self) -> str | None:
        """The method ``calibrate`` pinned, or None once the catalog changed.

        Calibration is recorded against the catalog generation it was
        measured on; any structural change (insert, seal, compact)
        silently invalidates it, matching the seed's
        invalidate-on-insert semantics without an explicit hook.
        """
        if self._calibrated is None:
            return None
        generation, method = self._calibrated
        return method if generation == self.catalog.generation else None

    @calibrated_method.setter
    def calibrated_method(self, method: str | None) -> None:
        self._calibrated = (
            None if method is None else (self.catalog.generation, method)
        )

    # -- planning -------------------------------------------------------

    def resolve_auto(self) -> str:
        """Pick the variant for ``method="auto"`` queries.

        After calibration the measured fastest *exact* variant wins.
        Otherwise Section 4's suitability guidance is applied over the
        whole catalog: pruning for short series, index for long,
        approximate for very long.
        """
        if self.calibrated_method is not None:
            return self.calibrated_method
        lengths = [len(s) for seg in self.catalog.segments for s in seg.series]
        median_len = int(np.median(lengths))
        if median_len < 200:
            return "pruning"
        if median_len < 1000:
            return "index"
        return "approximate"

    def plan(self, method: str, snapshot=None) -> list[SegmentPlan]:
        """Per-segment plans for a resolved (non-``auto``) method.

        ``snapshot`` (a pinned :class:`~repro.core.catalog.CatalogSnapshot`)
        freezes the layout being planned; without one the current
        snapshot is read — fine for a single call, but executors that
        plan and run must pass the same snapshot to both.
        """
        segments = (
            self.catalog.segments if snapshot is None else snapshot.segments
        )
        plans, offset = [], 0
        for position, segment in enumerate(segments):
            plans.append(
                SegmentPlan(
                    segment_id=segment.segment_id,
                    offset=offset,
                    method=self._segment_method(position, segment, method),
                )
            )
            offset += len(segment)
        return plans

    def _segment_method(self, position: int, segment: Segment, method: str) -> str:
        if position == 0:
            # The base segment honours the request verbatim — including
            # ``approximate``, whose filtering contract is defined
            # against the big segment.
            return method
        # Delta segments are always searched exactly: the seed scanned
        # the update buffer exhaustively, and sealing must not silently
        # make buffered series approximate.
        if len(segment) < SMALL_SEGMENT:
            return "naive"
        if method in ("approximate", "minhash"):
            return "index"
        return method

    # -- execution ------------------------------------------------------

    def execute(
        self,
        prepared: np.ndarray,
        k: int,
        method: str,
        scale: int | None = None,
        max_scale: int | None = None,
        buffer=None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
    ) -> QueryResult:
        """Answer one prepared (validated/normalized) query.

        ``deadline_ms`` arms the degradation ladder: past
        :data:`DEADLINE_SOFT_FRACTION` of the budget, remaining exact
        segment plans downgrade to approximate; past the budget,
        remaining segments are skipped entirely (the first segment
        always runs, so the answer is never empty).  Quarantined
        payloads on the catalog degrade the answer unconditionally.
        Degraded answers carry ``complete=False`` plus the reason — the
        Lernaean-Hydra serving stance: a timely approximate answer over
        a late exact one or an exception.

        ``deadline_start`` anchors the budget at an *earlier*
        :attr:`clock` reading: the serving layer stamps each request at
        arrival and passes the stamp through, so time spent queued
        behind other requests counts against the budget exactly like
        time spent searching (docs/serving.md).  ``None`` (the default)
        starts the budget now, preserving the direct-call semantics.
        """
        scale = self.default_scale if scale is None else int(scale)
        max_scale = self.default_max_scale if max_scale is None else int(max_scale)
        # Pin the catalog for the whole request: a background merge can
        # swap the segment set mid-query without this read ever seeing
        # a half-updated layout (the old snapshot's segments stay alive
        # until the pin releases).
        with self.catalog.pinned() as snapshot:
            segments = snapshot.segments
            with span("plan", method=method, segments=len(segments)):
                plans = [
                    replace(p, kernel="scalar")
                    for p in self.plan(method, snapshot)
                ]
                self.last_plans = plans
            reasons: set[str] = set()
            skipped: list[str] = [q.name for q in snapshot.quarantined]
            if skipped:
                reasons.add("quarantine")
            if deadline_ms is None:
                start = 0.0
            elif deadline_start is None:
                start = self.clock()
            else:
                start = float(deadline_start)
            results: list[QueryResult] = []
            executed_plans: list[SegmentPlan] = []
            workers = resolve_workers(self.max_workers)
            if workers > 1 and len(segments) > 1:
                self._execute_parallel(
                    segments, plans, prepared, k, scale, max_scale,
                    deadline_ms, start, workers,
                    results, executed_plans, reasons, skipped,
                )
            else:
                for position, (segment, plan) in enumerate(zip(segments, plans)):
                    if deadline_ms is not None:
                        elapsed_ms = (self.clock() - start) * 1000.0
                        if elapsed_ms >= deadline_ms and results:
                            reasons.add("deadline")
                            skipped.append(f"segment-{segment.segment_id}")
                            continue
                        if (
                            elapsed_ms >= deadline_ms * DEADLINE_SOFT_FRACTION
                            and plan.method in _EXACTISH
                            and len(segment) >= SMALL_SEGMENT
                        ):
                            reasons.add("deadline")
                            plan = replace(plan, method="approximate")
                            plans[position] = plan
                    results.append(
                        self._run_segment(
                            segment, plan.method, prepared, k, scale, max_scale
                        )
                    )
                    executed_plans.append(plan)
            if not reasons and len(results) == 1 and not (
                buffer is not None and len(buffer)
            ):
                return results[0]
            merged = self._merge(
                results, executed_plans, prepared, k, buffer, snapshot
            )
            if reasons:
                self._mark_degraded(merged, skipped, reasons)
            return merged

    def _execute_parallel(
        self,
        segments: list[Segment],
        plans: list[SegmentPlan],
        prepared: np.ndarray,
        k: int,
        scale: int,
        max_scale: int,
        deadline_ms: float | None,
        start: float,
        workers: int,
        results: list[QueryResult],
        executed_plans: list[SegmentPlan],
        reasons: set[str],
        skipped: list[str],
    ) -> None:
        """Run independent segment plans on the shared thread pool.

        The deadline ladder keeps its sequential semantics: each task
        checks the budget *when it starts*, so a blown hard deadline
        cancels plans that have not yet begun (segment 0 is exempt —
        the answer is never empty, exactly as in the serial loop).
        Outcomes are folded back in plan order, so the downstream
        KnnHeap merge sees the same sequence as a serial run and the
        answer is bit-identical.
        """

        def run_one(position: int):
            segment, plan = segments[position], plans[position]
            deadline_hit = False
            if deadline_ms is not None:
                elapsed_ms = (self.clock() - start) * 1000.0
                if elapsed_ms >= deadline_ms and position > 0:
                    return position, None, plan, True
                if (
                    elapsed_ms >= deadline_ms * DEADLINE_SOFT_FRACTION
                    and plan.method in _EXACTISH
                    and len(segment) >= SMALL_SEGMENT
                ):
                    deadline_hit = True
                    plan = replace(plan, method="approximate")
            result = self._run_segment(
                segment, plan.method, prepared, k, scale, max_scale
            )
            return position, result, plan, deadline_hit

        outcomes = get_pool(workers).map_ordered(run_one, range(len(segments)))
        for position, result, plan, deadline_hit in outcomes:
            if deadline_hit:
                reasons.add("deadline")
                plans[position] = plan
            if result is None:
                skipped.append(f"segment-{segments[position].segment_id}")
                continue
            results.append(result)
            executed_plans.append(plan)

    def _mark_degraded(
        self, result: QueryResult, skipped: list[str], reasons: set[str]
    ) -> None:
        result.complete = False
        result.skipped_segments = list(skipped)
        result.degraded_reason = "+".join(sorted(reasons))
        get_registry().counter(
            "sts3_degraded_queries_total",
            "queries answered incompletely, by reason",
        ).inc(reason=result.degraded_reason)

    def execute_batch(
        self,
        prepared_queries: list[np.ndarray],
        k: int,
        method: str,
        scale: int | None = None,
        max_scale: int | None = None,
        buffer=None,
        workspace: QueryWorkspace | None = None,
    ) -> list[QueryResult]:
        """Answer many prepared queries, vectorizing index-planned segments.

        Segments planned as ``index`` run the whole batch through their
        :class:`~repro.core.batch.BatchQueryEngine` (sharing
        ``workspace``); other segments fall back to a scalar loop.
        Results are merged per query and match scalar :meth:`execute`
        calls exactly.
        """
        scale = self.default_scale if scale is None else int(scale)
        max_scale = self.default_max_scale if max_scale is None else int(max_scale)
        with self.catalog.pinned() as snapshot:
            segments = snapshot.segments
            with span("plan", method=method, segments=len(segments),
                      queries=len(prepared_queries)):
                plans = self.plan(method, snapshot)
            workers = resolve_workers(self.max_workers)
            if workers > 1 and len(prepared_queries) > 1:
                per_segment = self._batch_segments_parallel(
                    segments, plans, prepared_queries, k, scale, max_scale,
                    workspace, workers,
                )
            else:
                per_segment = []
                for position, (segment, plan) in enumerate(zip(segments, plans)):
                    if plan.method == "index":
                        with span("transform", queries=len(prepared_queries),
                                  segment=segment.segment_id):
                            query_sets = [
                                transform_query(p, segment.grid)
                                for p in prepared_queries
                            ]
                        segment.mark_used()
                        engine = segment.batch_engine(workspace)
                        per_segment.append(engine.query_batch(query_sets, k=k))
                        # The engine picks one kernel per batch; record it on
                        # the plan for diagnostics (``sts3 inspect``, tests).
                        kernel = engine.last_kernels[-1] if engine.last_kernels else None
                        plans[position] = replace(plan, kernel=kernel)
                    else:
                        per_segment.append([
                            self._run_segment(
                                segment, plan.method, p, k, scale, max_scale
                            )
                            for p in prepared_queries
                        ])
                        plans[position] = replace(plan, kernel="scalar")
            self.last_plans = plans
            quarantined = [q.name for q in snapshot.quarantined]
            if not quarantined and len(segments) == 1 and not (
                buffer is not None and len(buffer)
            ):
                return per_segment[0]
            merged = [
                self._merge(
                    [res[qi] for res in per_segment], plans, prepared, k,
                    buffer, snapshot,
                )
                for qi, prepared in enumerate(prepared_queries)
            ]
            for result in merged if quarantined else ():
                self._mark_degraded(result, quarantined, {"quarantine"})
            return merged

    def _shard_workspace(self) -> QueryWorkspace:
        """This executor thread's private (reused) workspace."""
        workspace = getattr(self._worker_local, "workspace", None)
        if workspace is None:
            workspace = self._worker_local.workspace = QueryWorkspace()
        return workspace

    def _batch_segments_parallel(
        self,
        segments: list[Segment],
        plans: list[SegmentPlan],
        prepared_queries: list[np.ndarray],
        k: int,
        scale: int,
        max_scale: int,
        workspace: QueryWorkspace | None,
        workers: int,
    ) -> list[list[QueryResult]]:
        """Tile the batch across the thread pool, one flat task list.

        Index-planned segments split their queries into contiguous
        shards of at least :data:`MIN_BATCH_SHARD` (each shard runs
        through a workspace-bound engine clone over this thread's
        private workspace); scalar-planned segments are one task each.
        Shard results are reassembled in query order, so the output is
        bit-identical to the serial loop — every kernel produces the
        same similarities bit for bit, whatever the batch is cut into.
        """
        n_queries = len(prepared_queries)
        tasks: list[tuple[int, int, int, int]] = []
        for position, (segment, plan) in enumerate(zip(segments, plans)):
            if plan.method == "index":
                # Build (and cache) the segment engine before fan-out so
                # worker threads never race the segment's lazy caches.
                segment.mark_used()
                segment.batch_engine(workspace)
                n_shards = max(1, min(workers, n_queries // MIN_BATCH_SHARD))
                for shard in range(n_shards):
                    lo = n_queries * shard // n_shards
                    hi = n_queries * (shard + 1) // n_shards
                    tasks.append((position, shard, lo, hi))
            else:
                tasks.append((position, 0, 0, n_queries))

        def run_task(task: tuple[int, int, int, int]):
            position, shard, lo, hi = task
            segment, plan = segments[position], plans[position]
            if plan.method == "index":
                engine = segment.batch_engine(workspace).with_workspace(
                    self._shard_workspace()
                )
                with span("transform", queries=hi - lo,
                          segment=segment.segment_id):
                    query_sets = [
                        transform_query(p, segment.grid)
                        for p in prepared_queries[lo:hi]
                    ]
                shard_results = engine.query_batch(query_sets, k=k)
                kernel = engine.last_kernels[-1] if engine.last_kernels else None
                return position, shard, shard_results, kernel
            shard_results = [
                self._run_segment(segment, plan.method, p, k, scale, max_scale)
                for p in prepared_queries[lo:hi]
            ]
            return position, shard, shard_results, "scalar"

        outcomes = get_pool(workers).map_ordered(run_task, tasks)
        per_segment: list[list[QueryResult]] = [[] for _ in segments]
        for position, shard, shard_results, kernel in outcomes:
            per_segment[position].extend(shard_results)
            if shard == 0:  # first shard's kernel is the diagnostic
                plans[position] = replace(plans[position], kernel=kernel)
        return per_segment

    def _run_segment(
        self,
        segment: Segment,
        method: str,
        prepared: np.ndarray,
        k: int,
        scale: int,
        max_scale: int,
    ) -> QueryResult:
        """One segment's answer (segment-local neighbour indices)."""
        segment.mark_used()
        with span("transform", segment=segment.segment_id):
            query_set = transform_query(prepared, segment.grid)
        if method == "naive":
            return segment.naive_searcher().query(query_set, k=k)
        if method == "index":
            return segment.indexed_searcher().query(query_set, k=k)
        if method == "pruning":
            return segment.pruning_searcher(scale).query(query_set, k=k)
        if method == "minhash":
            return segment.minhash_searcher().query(query_set, k=k)
        return segment.approximate_searcher(max_scale).query(
            prepared, query_set, k=k
        )

    def _merge(
        self,
        results: list[QueryResult],
        plans: list[SegmentPlan],
        prepared: np.ndarray,
        k: int,
        buffer,
        snapshot=None,
    ) -> QueryResult:
        """Deterministic global top-k over per-segment answers + buffer.

        The KnnHeap orders by ``(similarity desc, global index asc)``,
        the repo-wide tie-break, so the merge is bit-reproducible no
        matter how the catalog is segmented.  Statistics are summed
        counter-wise; buffered series count as exhaustively-scanned
        candidates, exactly like the seed's ``_merge_buffer``.
        ``snapshot`` supplies the series count consistent with the
        results being merged (falls back to the current catalog).
        """
        n_buffered = len(buffer) if buffer is not None else 0
        n_series = (
            self.catalog.n_series if snapshot is None else snapshot.n_series
        )
        k = min(k, n_series + n_buffered)
        with span("merge", segments=len(results), buffered=n_buffered):
            heap = KnnHeap(k)
            candidates = exact = pruned = rounds = 0
            for result, plan in zip(results, plans):
                stats = result.stats
                candidates += stats.candidates
                exact += stats.exact_computations
                pruned += stats.pruned
                rounds += stats.filter_rounds
                for neighbor in result.neighbors:
                    heap.consider(neighbor.similarity, neighbor.index + plan.offset)
            if n_buffered:
                buffer_query = transform_query(prepared, buffer.grid)
                base = n_series
                for offset, cell_set in enumerate(buffer.sets):
                    heap.consider(jaccard(cell_set, buffer_query), base + offset)
                candidates += n_buffered
                exact += n_buffered
            merged_stats = SearchStats(
                candidates=candidates,
                exact_computations=exact,
                pruned=pruned,
                filter_rounds=rounds,
                final_candidates=len(heap),
            )
        if n_buffered:
            get_registry().counter(
                "sts3_buffer_merges_total",
                "query answers refreshed from the update buffer",
            ).inc()
        return QueryResult(neighbors=heap.neighbors(), stats=merged_stats)
