"""Tests for STS3Database.verify_integrity diagnostics."""

import numpy as np
import pytest

from repro import STS3Database


@pytest.fixture
def db():
    rng = np.random.default_rng(0)
    return STS3Database(
        [rng.normal(size=32) for _ in range(10)], sigma=2, epsilon=0.5
    )


class TestVerifyIntegrity:
    def test_clean_database(self, db):
        assert db.verify_integrity() == []

    def test_clean_after_inserts_and_flush(self, db):
        rng = np.random.default_rng(1)
        for _ in range(3):
            db.insert(rng.normal(size=32))
        db.flush()
        assert db.verify_integrity() == []

    def test_detects_stale_set(self, db):
        db.sets[3] = db.sets[3][:-1]  # corrupt one representation
        problems = db.verify_integrity()
        assert any("stale set representation" in p for p in problems)

    def test_detects_length_mismatch(self, db):
        db.sets.append(db.sets[0])
        problems = db.verify_integrity()
        assert any("series but" in p for p in problems)

    def test_detects_escaped_series(self, db):
        rogue = db.series[0].copy()
        rogue[0] = 1e6
        db.series[0] = rogue
        problems = db.verify_integrity()
        assert any("escapes the database bound" in p for p in problems)

    def test_detects_stale_cached_searcher(self, db):
        db.indexed_searcher()
        db.sets = [s.copy() for s in db.sets]  # swap the list object
        problems = db.verify_integrity()
        assert any("stale" in p for p in problems)

    def test_clean_with_buffered_series(self, db):
        """Buffered out-TSs must not trip the checks."""
        rng = np.random.default_rng(2)
        fresh = STS3Database(
            [rng.normal(size=32) for _ in range(5)],
            sigma=2,
            epsilon=0.5,
            normalize=False,
            buffer_capacity=10,
        )
        spike = np.zeros(32)
        spike[3] = 100.0
        fresh.insert(spike)
        assert len(fresh.buffer) == 1
        assert fresh.verify_integrity() == []
