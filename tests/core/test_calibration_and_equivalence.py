"""Tests for calibrated auto-dispatch and randomized index equivalence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import STS3Database
from repro.core import DictInvertedIndex, IndexedSearcher
from repro.exceptions import ParameterError


class TestCalibration:
    @pytest.fixture
    def db(self):
        rng = np.random.default_rng(0)
        return STS3Database(
            [rng.normal(size=64) for _ in range(50)], sigma=2, epsilon=0.4
        )

    def test_calibrate_pins_auto(self, db):
        rng = np.random.default_rng(1)
        timings = db.calibrate([rng.normal(size=64) for _ in range(3)])
        assert set(timings) == {"naive", "index", "pruning"}
        assert db._auto_method() == min(timings, key=timings.get)

    def test_calibrated_auto_queries_work(self, db):
        rng = np.random.default_rng(2)
        db.calibrate([rng.normal(size=64)])
        result = db.query(rng.normal(size=64), k=3, method="auto")
        assert len(result.neighbors) == 3

    def test_calibration_excludes_approximate(self, db):
        rng = np.random.default_rng(3)
        db.calibrate([rng.normal(size=64)])
        assert db._calibrated_method in ("naive", "index", "pruning")

    def test_insert_invalidates_calibration(self, db):
        rng = np.random.default_rng(4)
        db.calibrate([rng.normal(size=64)])
        db.insert(0.5 * rng.normal(size=64))
        assert db._calibrated_method is None  # falls back to heuristic

    def test_empty_sample_raises(self, db):
        with pytest.raises(ParameterError):
            db.calibrate([])


sets_strategy = st.lists(
    st.lists(st.integers(0, 80), min_size=1, max_size=30),
    min_size=1,
    max_size=15,
).map(lambda lists: [np.unique(np.asarray(xs, dtype=np.int64)) for xs in lists])


class TestIndexLayoutEquivalence:
    @given(sets_strategy, st.lists(st.integers(0, 80), min_size=1, max_size=20),
           st.integers(1, 6))
    @settings(max_examples=40)
    def test_dense_and_dict_agree(self, sets, query_list, k):
        query = np.unique(np.asarray(query_list, dtype=np.int64))
        dense = IndexedSearcher(sets).query(query, k=k)
        sparse = DictInvertedIndex(sets).query(query, k=k)
        assert dense.indices() == sparse.indices()
        assert dense.similarities() == pytest.approx(sparse.similarities())

    @given(sets_strategy, st.lists(st.integers(0, 80), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_counts_agree(self, sets, query_list):
        query = np.unique(np.asarray(query_list, dtype=np.int64))
        a = IndexedSearcher(sets).intersection_counts(query)
        b = DictInvertedIndex(sets).intersection_counts(query)
        assert np.array_equal(a, b)
