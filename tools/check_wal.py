#!/usr/bin/env python
"""Offline write-ahead-log linter (run by the CI ``docs`` job).

Walks one or more WAL generation files (or directories of them) and
checks, without importing the library and without numpy, that the log
on disk is something ``repro.core.wal.scan_wal`` will replay cleanly:

1. **Magic** — every ``*.wal`` file starts with ``STS3WAL1``.
2. **Frames** — each ``[length u32][crc32 u32][payload]`` frame is
   complete and its checksum matches.  A torn frame at the very tail
   of the *last* generation is reported as a note, not a problem —
   that is the expected shape of a crash, and recovery truncates it.
   Torn frames anywhere else are corruption.
3. **Payloads decode** — JSON records parse; binary series frames
   (NUL, JSON header, NUL, raw array bytes) carry a parseable header
   whose ``dtype``/``shape`` agree with the number of raw bytes.
4. **Sequence numbers** — strictly increasing by one across the
   generation files of a directory, in generation order.

Exit status is the number of problems found (0 = clean), matching
``tools/check_docs.py``.  ``--self-test`` builds known-good and
known-bad logs in a temporary directory and checks the linter's own
verdicts; CI runs exactly that, so the linter cannot silently rot.

``--compare PRIMARY FOLLOWER`` switches to replication-equivalence
mode (docs/replication.md): both WAL directories are collected frame
by frame and every sequence number both sides hold — up to the
follower's persisted ``applied.json`` watermark, or an explicit
``--watermark N`` — must carry **byte-identical payloads**.  WAL
shipping copies fsynced frames verbatim, so any divergence means a
forked history; the window below the primary's first retained frame
(checkpoints retire generations) is outside the comparison.

Usage::

    python tools/check_wal.py path/to/db.sts3.wal [more ...]
    python tools/check_wal.py --compare PRIMARY_WAL FOLLOWER_WAL [--watermark N]
    python tools/check_wal.py --self-test
"""

from __future__ import annotations

import json
import math
import re
import struct
import sys
import tempfile
from pathlib import Path
from zlib import crc32

MAGIC = b"STS3WAL1"
_FRAME_HEADER = struct.Struct("<II")
# numpy dtype strings the binary frame header uses: optional byte
# order, a kind letter, and an itemsize in bytes (e.g. "<f8", "|b1")
_DTYPE = re.compile(r"^[<>|=]?[a-zA-Z](\d+)$")
# fallback for dtype *names* ("float64", "int32"): trailing bit width
_DTYPE_NAME = re.compile(r"^[a-z]+?(\d+)$")


def _check_series_header(record: dict, raw_bytes: int) -> str | None:
    """Problem string when a binary frame's header and bytes disagree."""
    series = record.get("series")
    if not isinstance(series, dict):
        return "binary frame without a series header"
    dtype = str(series.get("dtype", ""))
    match = _DTYPE.match(dtype)
    if match is not None:
        itemsize = int(match.group(1))
    else:
        match = _DTYPE_NAME.match(dtype)
        if match is None:
            return f"unrecognized dtype {series.get('dtype')!r}"
        itemsize = int(match.group(1)) // 8
    shape = series.get("shape")
    if not isinstance(shape, list) or not all(
        isinstance(n, int) and n >= 0 for n in shape
    ):
        return f"bad shape {shape!r}"
    expected = math.prod(shape) * itemsize
    if expected != raw_bytes:
        return (
            f"shape {shape} x dtype {dtype} wants "
            f"{expected} raw bytes, found {raw_bytes}"
        )
    return None


def check_file(path: Path, expect_seq: int | None, last: bool):
    """Lint one generation file.

    Returns ``(problems, notes, next_seq)`` where ``next_seq`` is the
    seq the next generation must start with (unchanged when the file
    held no records).
    """
    problems: list[str] = []
    notes: list[str] = []
    try:
        data = path.read_bytes()
    except OSError as exc:
        return [f"{path}: unreadable ({exc})"], notes, expect_seq
    if data[: len(MAGIC)] != MAGIC:
        return [f"{path}: bad or missing magic"], notes, expect_seq
    offset = len(MAGIC)
    frame = 0
    while offset < len(data):
        where = f"{path}: frame {frame} at byte {offset}"
        if offset + _FRAME_HEADER.size > len(data):
            if last:
                notes.append(f"{where}: torn frame header (crash tail, recovery truncates)")
            else:
                problems.append(f"{where}: torn frame header in a sealed generation")
            return problems, notes, expect_seq
        length, checksum = _FRAME_HEADER.unpack_from(data, offset)
        start = offset + _FRAME_HEADER.size
        payload = data[start : start + length]
        if len(payload) < length:
            if last:
                notes.append(f"{where}: torn payload (crash tail, recovery truncates)")
            else:
                problems.append(f"{where}: torn payload in a sealed generation")
            return problems, notes, expect_seq
        if crc32(payload) != checksum:
            problems.append(f"{where}: CRC mismatch")
            return problems, notes, expect_seq
        raw_bytes = None
        if payload[:1] == b"\x00":
            sep = payload.find(b"\x00", 1)
            header = payload[1:sep] if sep > 0 else b""
            raw_bytes = length - sep - 1 if sep > 0 else 0
        else:
            header = payload
        try:
            record = json.loads(header.decode())
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (UnicodeDecodeError, ValueError):
            problems.append(f"{where}: undecodable record")
            return problems, notes, expect_seq
        if raw_bytes is not None:
            complaint = _check_series_header(record, raw_bytes)
            if complaint:
                problems.append(f"{where}: {complaint}")
        seq = record.get("seq")
        if not isinstance(seq, int):
            problems.append(f"{where}: record without seq")
            return problems, notes, expect_seq
        if expect_seq is not None and seq != expect_seq:
            problems.append(f"{where}: expected seq {expect_seq}, got {seq}")
        expect_seq = seq + 1
        offset = start + length
        frame += 1
    return problems, notes, expect_seq


def check_wal(target: Path):
    """Lint a WAL directory (or a single generation file)."""
    if target.is_dir():
        files = sorted(target.glob("*.wal"))
        if not files:
            return [f"{target}: no *.wal generation files"], []
    else:
        files = [target]
    problems: list[str] = []
    notes: list[str] = []
    expect_seq = None
    for path in files:
        got, noted, expect_seq = check_file(path, expect_seq, path is files[-1])
        problems += got
        notes += noted
    return problems, notes


# -- replication compare ------------------------------------------------


def collect_frames(target: Path):
    """``seq -> payload bytes`` for every intact frame under ``target``.

    Stops each file at its first torn/corrupt/undecodable frame (the
    shape recovery truncates at), so the map holds exactly the records
    a replay would apply.
    """
    frames: dict[int, bytes] = {}
    problems: list[str] = []
    files = sorted(target.glob("*.wal")) if target.is_dir() else [target]
    for path in files:
        try:
            data = path.read_bytes()
        except OSError as exc:
            problems.append(f"{path}: unreadable ({exc})")
            continue
        if data[: len(MAGIC)] != MAGIC:
            problems.append(f"{path}: bad or missing magic")
            continue
        offset = len(MAGIC)
        while offset + _FRAME_HEADER.size <= len(data):
            length, checksum = _FRAME_HEADER.unpack_from(data, offset)
            start = offset + _FRAME_HEADER.size
            payload = data[start : start + length]
            if len(payload) < length or crc32(payload) != checksum:
                break  # torn/corrupt tail: keep the intact prefix
            header = payload
            if payload[:1] == b"\x00":
                sep = payload.find(b"\x00", 1)
                header = payload[1:sep] if sep > 0 else b""
            try:
                seq = json.loads(header.decode())["seq"]
                if not isinstance(seq, int):
                    raise ValueError("seq is not an int")
            except (UnicodeDecodeError, ValueError, KeyError, TypeError):
                break
            frames[seq] = payload
            offset = start + length
    return frames, problems


def compare_wals(primary: Path, follower: Path, watermark: int | None):
    """Frame-payload equivalence up to the follower's watermark.

    Returns ``(problems, compared, watermark)``.  The comparison range
    is the intersection of both sides' retained frames capped at the
    watermark — the primary may have checkpointed generations away
    below the follower's first frame, and the follower holds nothing
    above what was shipped to it.
    """
    problems: list[str] = []
    primary_frames, primary_problems = collect_frames(primary)
    follower_frames, follower_problems = collect_frames(follower)
    problems += primary_problems + follower_problems
    if watermark is None and follower.is_dir():
        sidecar = follower / "applied.json"
        if sidecar.exists():
            try:
                watermark = int(json.loads(sidecar.read_text())["applied_seq"])
            except (OSError, ValueError, KeyError, TypeError):
                problems.append(f"{sidecar}: unreadable applied watermark")
    if watermark is None:
        watermark = min(
            max(primary_frames, default=0), max(follower_frames, default=0)
        )
    low = max(
        min(primary_frames, default=watermark + 1),
        min(follower_frames, default=watermark + 1),
    )
    compared = 0
    for seq in range(low, watermark + 1):
        ours = primary_frames.get(seq)
        theirs = follower_frames.get(seq)
        if ours is None:
            problems.append(f"seq {seq}: missing from primary {primary}")
        elif theirs is None:
            problems.append(f"seq {seq}: missing from follower {follower}")
        elif ours != theirs:
            problems.append(
                f"seq {seq}: payload bytes differ between {primary} "
                f"and {follower}"
            )
        else:
            compared += 1
    return problems, compared, watermark


# -- self-test ----------------------------------------------------------


def _frame(payload: bytes) -> bytes:
    return _FRAME_HEADER.pack(len(payload), crc32(payload)) + payload


def _json_record(seq: int, op: str = "flush") -> bytes:
    return json.dumps({"seq": seq, "op": op}, separators=(",", ":")).encode()


def _binary_record(seq: int, values: int = 4) -> bytes:
    header = json.dumps(
        {"seq": seq, "op": "insert", "series": {"dtype": "<f8", "shape": [values]}},
        separators=(",", ":"),
    ).encode()
    return b"\x00" + header + b"\x00" + struct.pack(f"<{values}d", *range(values))


def self_test() -> int:
    """Exercise the linter against synthetic good and bad logs."""
    failures = 0

    def expect(name: str, content: dict[str, bytes], n_problems: int, n_notes: int = 0):
        nonlocal failures
        with tempfile.TemporaryDirectory(prefix="sts3-check-wal-") as tmp:
            wal = Path(tmp) / "db.sts3.wal"
            wal.mkdir()
            for filename, blob in content.items():
                (wal / filename).write_bytes(blob)
            problems, notes = check_wal(wal)
            ok = len(problems) == n_problems and len(notes) == n_notes
            print(f"{'ok ' if ok else 'FAIL'} {name}: "
                  f"{len(problems)} problems, {len(notes)} notes")
            if not ok:
                for line in problems + notes:
                    print(f"      {line}")
                failures += 1

    clean = MAGIC + _frame(_json_record(1)) + _frame(_binary_record(2))
    expect("clean mixed log", {"00000001.wal": clean}, 0)
    expect(
        "clean rotation",
        {"00000001.wal": clean, "00000002.wal": MAGIC + _frame(_binary_record(3))},
        0,
    )
    expect("torn tail on last generation", {"00000001.wal": clean + b"\x07\x00"}, 0, 1)
    expect(
        "torn frame in sealed generation",
        {"00000001.wal": clean + b"\x07\x00", "00000002.wal": MAGIC},
        1,
    )
    corrupt = bytearray(clean)
    corrupt[-3] ^= 0x40  # flip one bit inside the last payload
    expect("bit flip", {"00000001.wal": bytes(corrupt)}, 1)
    expect("bad magic", {"00000001.wal": b"NOTAWAL!" + _frame(_json_record(1))}, 1)
    expect(
        "sequence regression",
        {"00000001.wal": MAGIC + _frame(_json_record(5)) + _frame(_json_record(5))},
        1,
    )
    short = _binary_record(3)[:-8]  # header says 4 values, carries 3
    expect("shape/bytes mismatch", {"00000001.wal": MAGIC + _frame(short)}, 1)
    expect("undecodable record", {"00000001.wal": MAGIC + _frame(b"\xff\xfe")}, 1)
    expect("empty directory", {}, 1)

    def expect_compare(
        name: str,
        primary: dict[str, bytes],
        follower: dict[str, bytes],
        n_problems: int,
        n_compared: int,
        watermark: int | None = None,
    ):
        nonlocal failures
        with tempfile.TemporaryDirectory(prefix="sts3-check-wal-") as tmp:
            sides = []
            for role, content in (("primary", primary), ("follower", follower)):
                wal = Path(tmp) / f"{role}.wal"
                wal.mkdir()
                for filename, blob in content.items():
                    (wal / filename).write_bytes(blob)
                sides.append(wal)
            problems, compared, _ = compare_wals(sides[0], sides[1], watermark)
            ok = len(problems) == n_problems and compared == n_compared
            print(f"{'ok ' if ok else 'FAIL'} compare: {name}: "
                  f"{len(problems)} problems, {compared} compared")
            if not ok:
                for line in problems:
                    print(f"      {line}")
                failures += 1

    one, two, three = _json_record(1), _binary_record(2), _binary_record(3)
    shipped = MAGIC + _frame(one) + _frame(two)
    expect_compare(
        "identical shipped prefix",
        {"00000001.wal": shipped + _frame(three)},
        {
            "00000001.wal": shipped,
            "applied.json": json.dumps({"applied_seq": 2}).encode(),
        },
        0,
        2,
    )
    forked = MAGIC + _frame(one) + _frame(_binary_record(2, values=8))
    expect_compare(
        "forked history",
        {"00000001.wal": shipped},
        {"00000001.wal": forked},
        1,
        1,
        watermark=2,
    )
    expect_compare(
        "follower behind watermark",
        {"00000001.wal": shipped},
        {"00000001.wal": MAGIC + _frame(one)},
        1,  # seq 2 missing from follower
        1,
        watermark=2,
    )
    expect_compare(
        "primary checkpointed past follower start",
        {"00000002.wal": MAGIC + _frame(two)},  # seq 1 retired
        {"00000001.wal": shipped},
        0,
        1,  # only seq 2 intersects
        watermark=2,
    )

    print("self-test:", "FAIL" if failures else "ok")
    return failures


def main(argv: list[str]) -> int:
    if argv and argv[0] == "--self-test":
        return self_test()
    if argv and argv[0] == "--compare":
        rest = argv[1:]
        watermark = None
        if "--watermark" in rest:
            at = rest.index("--watermark")
            try:
                watermark = int(rest[at + 1])
            except (IndexError, ValueError):
                print("usage: check_wal.py --compare PRIMARY FOLLOWER "
                      "[--watermark N]")
                return 1
            rest = rest[:at] + rest[at + 2:]
        if len(rest) != 2:
            print("usage: check_wal.py --compare PRIMARY FOLLOWER "
                  "[--watermark N]")
            return 1
        problems, compared, watermark = compare_wals(
            Path(rest[0]), Path(rest[1]), watermark
        )
        for line in problems:
            print(f"problem: {line}")
        print(f"check_wal --compare: {compared} frame(s) identical up to "
              f"seq {watermark}, {len(problems)} problems")
        return len(problems)
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: check_wal.py WAL_DIR_OR_FILE... | "
              "--compare PRIMARY FOLLOWER | --self-test")
        return 1
    problems: list[str] = []
    for arg in argv:
        got, notes = check_wal(Path(arg))
        problems += got
        for line in notes:
            print(f"note: {line}")
    for line in problems:
        print(f"problem: {line}")
    print(f"check_wal: {len(problems)} problems")
    return len(problems)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
