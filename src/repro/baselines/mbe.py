"""MBE-indexed LCSS search (Vlachos et al., paper Section 1).

The classic acceleration the paper's introduction sketches: database
series are segmented into MBRs stored in an R-tree; a query is wrapped
in its **Minimum Bounding Envelope** — the warping envelope widened by
the LCSS matching tolerance ε — which is itself split into MBRs.  A
database point can only participate in an LCSS match if it falls
inside the MBE, so the number of a series' points whose MBRs intersect
the MBE's MBRs upper-bounds its LCSS length.  "The exact LCSS ... is
performed only on the qualified sequences."

:class:`MBESearcher` implements the full pipeline and returns the exact
LCSS 1-NN (the bound is admissible; the tests check both admissibility
and agreement with a brute-force scan).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .lb import envelope
from .lcss import lcss_length, lcss_similarity
from .rtree import Rect, RTree

__all__ = ["series_mbrs", "query_mbe_rects", "MBESearcher"]


def series_mbrs(series: np.ndarray, segment_len: int) -> list[Rect]:
    """Split a series into consecutive segments and box each one."""
    if segment_len < 1:
        raise ParameterError(f"segment_len must be >= 1, got {segment_len}")
    series = np.asarray(series, dtype=np.float64)
    if series.ndim != 1:
        raise ParameterError("MBE indexing is implemented for 1-D series")
    out = []
    for start in range(0, len(series), segment_len):
        chunk = series[start : start + segment_len]
        out.append(
            Rect(start, start + len(chunk) - 1, float(chunk.min()), float(chunk.max()))
        )
    return out


def query_mbe_rects(
    query: np.ndarray, delta: int, epsilon: float, segment_len: int
) -> list[Rect]:
    """MBRs covering the query's Minimum Bounding Envelope.

    The MBE at time ``t`` spans ``[min(query[t−δ..t+δ]) − ε,
    max(query[t−δ..t+δ]) + ε]``; consecutive ``segment_len``-sample
    stretches of the band are boxed.
    """
    if epsilon < 0:
        raise ParameterError(f"epsilon must be >= 0, got {epsilon}")
    query = np.asarray(query, dtype=np.float64)
    lower, upper = envelope(query, delta)
    lower = lower - epsilon
    upper = upper + epsilon
    out = []
    for start in range(0, len(query), segment_len):
        stop = min(start + segment_len, len(query))
        out.append(
            Rect(
                start,
                stop - 1,
                float(lower[start:stop].min()),
                float(upper[start:stop].max()),
            )
        )
    return out


class MBESearcher:
    """Exact LCSS 1-NN with R-tree candidate bounds.

    All database segment MBRs live in one R-tree keyed by
    ``(series index, segment index)``.  Per query: probe the tree with
    each MBE MBR, accumulate per-series *maybe-matching segment
    lengths* as the LCSS upper bound, and verify candidates in
    descending bound order with the exact dynamic program, stopping
    once the next bound cannot beat the best verified similarity.
    """

    def __init__(
        self,
        database: list[np.ndarray],
        delta_fraction: float = 0.1,
        epsilon: float = 0.5,
        segment_len: int = 16,
    ):
        if not database:
            raise ParameterError("cannot search an empty database")
        self.database = database
        self.epsilon = float(epsilon)
        self.delta_fraction = float(delta_fraction)
        self.segment_len = int(segment_len)
        #: per-series segment lengths, aligned with the MBR entries.
        self._segment_sizes: list[list[int]] = []
        entries: list[tuple[Rect, tuple[int, int]]] = []
        for index, series in enumerate(database):
            rects = series_mbrs(series, segment_len)
            sizes = []
            for seg_index, rect in enumerate(rects):
                entries.append((rect, (index, seg_index)))
                sizes.append(int(rect.t_hi - rect.t_lo) + 1)
            self._segment_sizes.append(sizes)
        self.tree = RTree(entries)
        self.stats = {"verified": 0, "pruned": 0}

    def _delta(self, query_len: int) -> int:
        return max(1, int(round(self.delta_fraction * query_len)))

    def upper_bounds(self, query: np.ndarray) -> np.ndarray:
        """Per-series upper bound on ``LCSS(series, query)``.

        A segment's points can only match if its MBR intersects some
        MBE MBR; summing the lengths of such segments (each counted
        once) bounds the number of matchable points, hence the LCSS.
        """
        delta = self._delta(len(query))
        probes = query_mbe_rects(query, delta, self.epsilon, self.segment_len)
        hit: set[tuple[int, int]] = set()
        for probe in probes:
            # widen the probe in time by delta: an LCSS match allows
            # |i − j| <= delta between the positions themselves
            widened = Rect(
                probe.t_lo - delta, probe.t_hi + delta, probe.v_lo, probe.v_hi
            )
            hit.update(self.tree.query_intersecting(widened))
        bounds = np.zeros(len(self.database), dtype=np.int64)
        for index, seg_index in hit:
            bounds[index] += self._segment_sizes[index][seg_index]
        return bounds

    def nearest(self, query: np.ndarray) -> tuple[int, float]:
        """Index and exact LCSS similarity of the best database series."""
        delta = self._delta(len(query))
        bounds = self.upper_bounds(query)
        # convert match-count bounds to similarity bounds
        norms = np.asarray(
            [min(len(s), len(query)) for s in self.database], dtype=np.float64
        )
        sim_bounds = np.minimum(bounds / np.maximum(norms, 1), 1.0)
        order = np.argsort(-sim_bounds, kind="stable")
        best_index = -1
        best_similarity = -1.0
        for position, index in enumerate(order):
            if sim_bounds[index] <= best_similarity:
                self.stats["pruned"] += len(order) - position
                break
            similarity = lcss_similarity(
                self.database[index], query, self.epsilon, delta
            )
            self.stats["verified"] += 1
            if similarity > best_similarity:
                best_similarity = similarity
                best_index = int(index)
        return best_index, float(best_similarity)
