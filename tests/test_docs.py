"""The documentation stays healthy: tools/check_docs.py passes.

Runs the same stdlib-only checker CI's docs job runs (python examples
parse, doctests pass, intra-repo links and anchors resolve) and
unit-tests its parsing helpers.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
CHECKER = REPO / "tools" / "check_docs.py"


def _load_checker():
    spec = importlib.util.spec_from_file_location("check_docs", CHECKER)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_repo_docs_are_clean():
    proc = subprocess.run(
        [sys.executable, str(CHECKER)], capture_output=True, text=True
    )
    assert proc.returncode == 0, f"docs checker failed:\n{proc.stderr}{proc.stdout}"
    assert "0 problem(s)" in proc.stdout


def test_observability_docs_exist():
    for name in ("observability.md", "api.md", "algorithms.md"):
        assert (REPO / "docs" / name).exists()


class TestCheckerHelpers:
    def test_fenced_blocks_extraction(self):
        checker = _load_checker()
        text = "intro\n```python\nx = 1\n```\nmid\n```\nplain\n```\n"
        blocks = checker.fenced_blocks(text)
        assert [(line, lang) for line, lang, _ in blocks] == [(3, "python"), (7, "")]
        assert blocks[0][2] == "x = 1"

    def test_fenced_blocks_skip_marker(self):
        checker = _load_checker()
        text = "<!-- docs: skip -->\n```python\nnot python !!\n```\n"
        assert checker.fenced_blocks(text) == []

    def test_syntax_error_is_reported(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        bad = tmp_path / "bad.md"
        bad.write_text("```python\ndef broken(:\n```\n")
        problems = checker.check_python_blocks(bad, bad.read_text())
        assert len(problems) == 1
        assert "does not parse" in problems[0]

    def test_broken_link_is_reported(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text("see [missing](nope.md) and [ok](doc.md)\n")
        problems = checker.check_links(doc, doc.read_text())
        assert problems == ["doc.md: broken link -> nope.md"]

    def test_broken_anchor_is_reported(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text("# Real Heading\n[a](#real-heading)\n[b](#missing)\n")
        problems = checker.check_links(doc, doc.read_text())
        assert problems == ["doc.md: broken anchor -> #missing"]

    def test_heading_anchors_github_style(self):
        checker = _load_checker()
        anchors = checker.heading_anchors(
            "# Algorithm notes — paper to code\n## Span naming scheme\n"
        )
        assert "algorithm-notes--paper-to-code" in anchors
        assert "span-naming-scheme" in anchors

    def test_failing_doctest_is_reported(self, tmp_path, monkeypatch):
        checker = _load_checker()
        monkeypatch.setattr(checker, "REPO", tmp_path)
        doc = tmp_path / "doc.md"
        doc.write_text('```python\n>>> 1 + 1\n3\n```\n')
        problems = checker.check_doctests(doc, doc.read_text())
        assert len(problems) == 1
        assert "doctest" in problems[0]
