"""Packed-bitset set representation with popcount Jaccard kernels.

STS3 reduces similarity search to set intersection, and a grid cell set
is exactly a small sparse bitmap over the segment's cell vocabulary.
:class:`BitsetStore` exploits that: it remaps the segment's distinct
cell IDs to dense bit columns and packs every series' set into one row
of an ``(n_series, ceil(vocab/64))`` uint64 matrix.  The exact
intersection size of a query against *all* candidates then collapses to
a single vectorized pass::

    |S_i ∩ Q|  =  popcount(matrix[i] & q)     for every i at once

with ``popcount`` either numpy >= 2.0's :func:`numpy.bitwise_count` or
a uint8 lookup-table fallback (one gather + row sum) on older numpy.
Counts are bit-identical to the sorted-merge ``intersect1d`` path —
same integers in, same float64 Jaccard out — so every searcher can swap
its per-candidate merge loop for one popcount sweep without perturbing
results or deterministic tie-breaks.

Query cells absent from the vocabulary (including Algorithm 6's
out-of-bound ID space) intersect nothing by construction and are
dropped during packing; ``|Q|`` always uses the *full* query set size,
so the Jaccard denominator is unchanged.

Memory math (DESIGN.md §11): sorted int64 arrays cost ``8 · Σ|S_i|``
bytes; the packed matrix costs ``8 · n · ceil(v/64)`` for vocabulary
size ``v``.  Packing wins whenever the average set size exceeds
``ceil(v/64)`` — i.e. on dense-overlap segments, which is exactly where
the per-candidate merge loop is slowest.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from ..obs import span

__all__ = [
    "BitsetStore",
    "HAVE_BITWISE_COUNT",
    "popcount_u64",
    "popcount_u64_lut",
]

#: numpy >= 2.0 ships a vectorized popcount ufunc.
HAVE_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: per-byte popcount table for the numpy < 2.0 fallback.
_BYTE_POPCOUNT = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def popcount_u64_lut(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array via a uint8 lookup table.

    The fallback for numpy < 2.0: view the (contiguous) words as bytes,
    gather per-byte counts, and fold the 8 bytes of every word back
    together.  Returns int64 counts with ``words.shape``.
    """
    words = np.ascontiguousarray(words, dtype=np.uint64)
    per_byte = _BYTE_POPCOUNT[words.view(np.uint8)]
    return per_byte.reshape(words.shape + (8,)).sum(axis=-1, dtype=np.int64)


def popcount_u64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of a uint64 array (int64 result).

    Uses :func:`numpy.bitwise_count` when available (numpy >= 2.0) and
    the lookup-table fallback otherwise.
    """
    if HAVE_BITWISE_COUNT:
        return np.bitwise_count(words).astype(np.int64)
    return popcount_u64_lut(words)


class BitsetStore:
    """Packed bitmap of many cell-ID sets over a shared vocabulary.

    Parameters
    ----------
    sets:
        Sorted unique int64 cell-ID arrays (one per series), exactly as
        produced by :func:`repro.core.setrep.transform`.
    use_lut:
        Force the uint8 lookup-table popcount (``True``), force the
        numpy ufunc (``False``, raises if unavailable), or auto-detect
        (``None``, the default).  Tests use this to exercise the
        numpy < 2.0 path on any numpy.

    Attributes
    ----------
    vocab:
        Sorted distinct cell IDs across all sets (the dense column map).
    matrix:
        ``(n_series, n_words)`` uint64; bit ``j`` of word ``w`` in row
        ``i`` is set iff series ``i`` contains ``vocab[64·w + j]``.
    lengths:
        int64 set sizes (the ``|S_i|`` Jaccard terms).
    """

    def __init__(self, sets: list[np.ndarray], use_lut: bool | None = None):
        if use_lut is None:
            use_lut = not HAVE_BITWISE_COUNT
        elif not use_lut and not HAVE_BITWISE_COUNT:
            raise ParameterError(
                "use_lut=False requires numpy.bitwise_count (numpy >= 2.0)"
            )
        self.use_lut = bool(use_lut)
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        total = int(self.lengths.sum())
        all_cells = (
            np.concatenate(sets) if total else np.empty(0, dtype=np.int64)
        )
        self.vocab = np.unique(all_cells)
        self.n_words = (self.vocab.size + 63) // 64
        self.matrix = np.zeros((len(sets), self.n_words), dtype=np.uint64)
        if total:
            # Every set is a subset of the vocabulary by construction,
            # so the searchsorted rank is exact — no membership check.
            columns = np.searchsorted(self.vocab, all_cells)
            rows = np.repeat(
                np.arange(len(sets), dtype=np.int64), self.lengths
            )
            flat = rows * self.n_words + (columns >> 6)
            bits = np.uint64(1) << (columns & 63).astype(np.uint64)
            np.bitwise_or.at(self.matrix.reshape(-1), flat, bits)

    @classmethod
    def from_parts(
        cls,
        vocab: np.ndarray,
        matrix: np.ndarray,
        lengths: np.ndarray,
        use_lut: bool | None = None,
    ) -> "BitsetStore":
        """Reassemble a store from persisted arrays (format v3).

        The parts are adopted verbatim; shape consistency is validated
        so a corrupted archive fails loudly instead of mis-counting.
        """
        matrix = np.ascontiguousarray(matrix, dtype=np.uint64)
        vocab = np.asarray(vocab, dtype=np.int64)
        lengths = np.asarray(lengths, dtype=np.int64)
        n_words = (vocab.size + 63) // 64
        if matrix.ndim != 2 or matrix.shape != (lengths.size, n_words):
            raise ParameterError(
                f"bitset matrix shape {matrix.shape} does not match "
                f"{lengths.size} series x {n_words} words"
            )
        self = cls.__new__(cls)
        self.use_lut = (
            bool(use_lut) if use_lut is not None else not HAVE_BITWISE_COUNT
        )
        self.vocab = vocab
        self.n_words = n_words
        self.matrix = matrix
        self.lengths = lengths
        return self

    def __len__(self) -> int:
        return self.matrix.shape[0]

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed representation (matrix + vocab)."""
        return self.matrix.nbytes + self.vocab.nbytes + self.lengths.nbytes

    # -- packing ---------------------------------------------------------

    def pack(self, cell_set: np.ndarray) -> np.ndarray:
        """Pack a (possibly foreign) cell set into one uint64 word row.

        Cells outside the vocabulary — unseen database cells or
        Algorithm 6 out-of-bound query IDs — cannot intersect any
        stored set and are dropped; the caller keeps using the full
        ``len(cell_set)`` for the union term.
        """
        words = np.zeros(self.n_words, dtype=np.uint64)
        cells = np.asarray(cell_set, dtype=np.int64)
        if cells.size == 0 or self.vocab.size == 0:
            return words
        ranks = np.searchsorted(self.vocab, cells)
        present = ranks < self.vocab.size
        present &= self.vocab[np.where(present, ranks, 0)] == cells
        columns = ranks[present]
        if columns.size:
            np.bitwise_or.at(
                words,
                columns >> 6,
                np.uint64(1) << (columns & 63).astype(np.uint64),
            )
        return words

    # -- popcount kernels ------------------------------------------------

    def _popcount(self, words: np.ndarray) -> np.ndarray:
        if self.use_lut:
            return popcount_u64_lut(words)
        return np.bitwise_count(words).astype(np.int64)

    def _sweep(self, rows: np.ndarray, q_words: np.ndarray) -> np.ndarray:
        """``popcount(rows & q)`` summed per row — the shared inner kernel."""
        if rows.shape[1] == 0:
            return np.zeros(rows.shape[0], dtype=np.int64)
        return self._popcount(rows & q_words[None, :]).sum(
            axis=1, dtype=np.int64
        )

    def intersection_counts(self, query_set: np.ndarray) -> np.ndarray:
        """``|S_i ∩ Q|`` for every stored series, in one popcount pass."""
        q_words = self.pack(query_set)
        with span("kernel.bitset", rows=len(self), words=self.n_words):
            return self._sweep(self.matrix, q_words)

    def intersection_counts_rows(
        self, rows: np.ndarray, q_words: np.ndarray
    ) -> np.ndarray:
        """``|S_i ∩ Q|`` for the selected row indices only.

        ``q_words`` must come from :meth:`pack`; used by the pruning
        searcher to evaluate one best-first chunk per popcount pass.
        """
        with span("kernel.bitset", rows=len(rows), words=self.n_words):
            return self._sweep(self.matrix[rows], q_words)

    def masked_counts(self, q_words: np.ndarray, masks: np.ndarray) -> np.ndarray:
        """``popcount(q & mask_z)`` for every mask row ``z``.

        With one mask per pruning zone this computes the query's zone
        histogram (restricted to the vocabulary) as ``n_zones`` masked
        popcounts instead of a decode + bincount pass.
        """
        with span("kernel.bitset", rows=len(masks), words=self.n_words):
            return self._sweep(masks, q_words)

    def column_masks(self, groups: np.ndarray, n_groups: int) -> np.ndarray:
        """``(n_groups, n_words)`` masks selecting each group's columns.

        ``groups`` assigns every vocabulary column to a group (e.g. its
        pruning zone); the returned masks feed :meth:`masked_counts`.
        """
        masks = np.zeros((int(n_groups), self.n_words), dtype=np.uint64)
        if self.vocab.size:
            columns = np.arange(self.vocab.size, dtype=np.int64)
            flat = np.asarray(groups, dtype=np.int64) * self.n_words + (
                columns >> 6
            )
            bits = np.uint64(1) << (columns & 63).astype(np.uint64)
            np.bitwise_or.at(masks.reshape(-1), flat, bits)
        return masks

    def verify_against(self, sets: list[np.ndarray]) -> list[str]:
        """Self-check: unpacking every row recovers the source sets."""
        problems: list[str] = []
        if len(sets) != len(self):
            problems.append(
                f"store packs {len(self)} series but got {len(sets)} sets"
            )
            return problems
        for i, cell_set in enumerate(sets):
            counts = self._sweep(self.matrix[i : i + 1], self.pack(cell_set))
            if int(counts[0]) != len(cell_set) or int(
                self.lengths[i]
            ) != len(cell_set):
                problems.append(f"row {i} does not round-trip its cell set")
        return problems
