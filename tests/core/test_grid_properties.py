"""Additional hypothesis properties for Bound and Grid geometry."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.grid import Bound, Grid

series_strategy = arrays(
    np.float64,
    st.integers(min_value=2, max_value=60),
    elements=st.floats(min_value=-20, max_value=20, allow_nan=False),
)


@given(series_strategy)
def test_own_bound_contains_every_point(series):
    bound = Bound.of_series(series)
    assert bound.contains(series).all()


@given(series_strategy, series_strategy)
def test_database_bound_covers_member_bounds(a, b):
    joint = Bound.of_database([a, b])
    assert joint.covers(Bound.of_series(a))
    assert joint.covers(Bound.of_series(b))


@given(series_strategy, st.floats(min_value=0, max_value=5))
def test_padding_only_widens(series, padding):
    tight = Bound.of_series(series)
    padded = Bound.of_database([series], value_padding=padding)
    assert padded.covers(tight)


@given(series_strategy, st.integers(min_value=1, max_value=12))
def test_from_resolution_exact_counts(series, scale):
    """A scale-s grid has exactly s columns, and s rows per dim for any
    non-degenerate value span.  Spans below float resolution (e.g. a
    5e-324 subnormal range) may collapse toward 1 row — they cannot be
    split into distinguishable cells — but never exceed s."""
    bound = Bound.of_series(series)
    grid = Grid.from_resolution(bound, scale)
    assert grid.n_columns == (scale if bound.t_max > bound.t_min else 1)
    span = bound.x_max[0] - bound.x_min[0]
    if span > 1e-9:
        assert grid.n_rows == (scale,)
    else:
        assert 1 <= grid.n_rows[0] <= scale


@given(series_strategy, st.integers(1, 8), st.floats(0.05, 3.0))
def test_every_point_lands_in_declared_shape(series, sigma, epsilon):
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    cols = grid.columns_of(series)
    rows = grid.rows_of(series)
    assert cols.min() >= 0 and cols.max() < grid.n_columns
    assert rows.min() >= 0 and rows.max() < grid.n_rows[0]


@given(series_strategy, st.integers(1, 8), st.floats(0.05, 3.0))
def test_monotone_time_columns(series, sigma, epsilon):
    """Later samples never map to earlier columns."""
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    cols = grid.columns_of(series)
    assert (np.diff(cols) >= 0).all()


@given(series_strategy, st.integers(1, 8), st.floats(0.05, 3.0))
def test_monotone_value_rows(series, sigma, epsilon):
    """Higher values never map to lower rows."""
    grid = Grid.from_cell_sizes(Bound.of_series(series), sigma, epsilon)
    rows = grid.rows_of(series)[:, 0]
    order = np.argsort(series, kind="stable")
    assert (np.diff(rows[order]) >= 0).all()
