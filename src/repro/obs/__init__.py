"""Query-path observability: tracing spans, metrics, profiling hooks.

Three zero-dependency layers, all opt-in on the hot path:

- :mod:`repro.obs.trace` — context-manager spans with monotonic-clock
  durations and parent/child nesting.  Instrumented code calls
  :func:`span`; with the default :data:`NOOP` tracer that is a shared
  do-nothing context manager, so untraced queries pay (almost) nothing.
  Install a :class:`Tracer` (``set_tracer`` / ``use_tracer``) to
  collect a structured trace.
- :mod:`repro.obs.metrics` — named counters/gauges/histograms with
  labels, a deterministic ``snapshot()`` dict, and Prometheus text
  exposition.  The default registry (:func:`get_registry`) counts
  queries, batch tiles per kernel, buffer merges, inserts, rebuilds,
  and persistence round-trips.  The durability layer (DESIGN.md §12)
  adds the ``sts3_wal_*`` family (appends, bytes, fsyncs, rotations,
  checkpoints, replayed/truncated totals, pending-records gauge),
  ``sts3_quarantined_segments``,
  ``sts3_degraded_queries_total{reason}``, ``sts3_io_retries_total``,
  and ``sts3_recoveries_total``, plus the ``wal.append`` /
  ``wal.replay`` / ``recover`` / ``persist.save`` spans.
- :mod:`repro.obs.profile` — opt-in ``cProfile`` /
  ``perf_counter_ns`` wrappers for the "why is it slow" follow-up.

See ``docs/observability.md`` for the span/metric naming scheme and
worked examples; the CLI surfaces all of it as ``sts3 query --trace``,
``sts3 query --profile``, and ``sts3 batch --metrics-json``.
"""

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from .profile import ProfiledBlock, StageTimes, profile_callable, profile_query
from .trace import (
    NOOP,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    span,
    use_tracer,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NOOP",
    "NoopTracer",
    "ProfiledBlock",
    "Span",
    "StageTimes",
    "Tracer",
    "get_registry",
    "get_tracer",
    "profile_callable",
    "profile_query",
    "set_registry",
    "set_tracer",
    "span",
    "use_tracer",
]
