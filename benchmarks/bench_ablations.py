"""Ablation benches for the design choices called out in DESIGN.md §6.

1. Inverted-list layout: sorted-postings binary search (dense) vs
   dict-of-arrays (sparse).
2. Jaccard engine: numpy sorted-merge vs Python ``set`` intersection.
3. Early stopping in the naive scan: on vs off.
4. Compressed set storage: size saving and decode overhead.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench import Timer, render_table, scaled
from repro.core import (
    DictInvertedIndex,
    IndexedSearcher,
    NaiveSearcher,
    STS3Database,
    jaccard,
    transform,
)
from repro.core.setrep import CompressedSet
from repro.data.workloads import ecg_workload


@pytest.fixture(scope="module")
def workload():
    return ecg_workload(scaled(10_000, minimum=200), scaled(100, minimum=10), length=256, seed=9)


@pytest.fixture(scope="module")
def sets(workload):
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)
    query_sets = [db.transform_query(q) for q in workload.queries]
    return db.sets, query_sets


class TestIndexLayout:
    @pytest.fixture(scope="class")
    def table(self, sets, report):
        db_sets, query_sets = sets
        dense = IndexedSearcher(db_sets)
        sparse = DictInvertedIndex(db_sets)
        with Timer() as t_dense:
            for q in query_sets:
                dense.query(q, k=1)
        with Timer() as t_sparse:
            for q in query_sets:
                sparse.query(q, k=1)
        report(
            "ablation_index_layout",
            render_table(
                ["layout", "batch ms"],
                [["sorted postings", t_dense.millis], ["dict of arrays", t_sparse.millis]],
                title="Ablation: inverted-list layout",
            ),
        )
        return dense, sparse, query_sets

    def test_bench_dense(self, benchmark, table):
        dense, _, query_sets = table
        benchmark(lambda: dense.query(query_sets[0], k=1))

    def test_bench_sparse(self, benchmark, table):
        _, sparse, query_sets = table
        benchmark(lambda: sparse.query(query_sets[0], k=1))


class TestJaccardEngine:
    @pytest.fixture(scope="class")
    def table(self, sets, report):
        db_sets, query_sets = sets
        query = query_sets[0]
        python_sets = [set(s.tolist()) for s in db_sets]
        python_query = set(query.tolist())

        with Timer() as t_numpy:
            for s in db_sets:
                jaccard(s, query)
        with Timer() as t_python:
            for s in python_sets:
                inter = len(s & python_query)
                _ = inter / (len(s) + len(python_query) - inter)
        report(
            "ablation_jaccard_engine",
            render_table(
                ["engine", "full-scan ms"],
                [["numpy sorted merge", t_numpy.millis], ["python set", t_python.millis]],
                title="Ablation: Jaccard computation engine",
            ),
        )
        return db_sets, python_sets, query, python_query

    def test_bench_numpy(self, benchmark, table):
        db_sets, _, query, _ = table
        benchmark(lambda: [jaccard(s, query) for s in db_sets[:200]])

    def test_bench_python_set(self, benchmark, table):
        _, python_sets, _, python_query = table
        def run():
            for s in python_sets[:200]:
                inter = len(s & python_query)
                _ = inter / (len(s) + len(python_query) - inter)
        benchmark(run)


class TestEarlyStop:
    @pytest.fixture(scope="class")
    def table(self, sets, report):
        db_sets, query_sets = sets
        with_stop = NaiveSearcher(db_sets, early_stop=True)
        without = NaiveSearcher(db_sets, early_stop=False)
        with Timer() as t_on:
            for q in query_sets:
                with_stop.query(q, k=1)
        with Timer() as t_off:
            for q in query_sets:
                without.query(q, k=1)
        report(
            "ablation_early_stop",
            render_table(
                ["early stopping", "batch ms"],
                [["on", t_on.millis], ["off", t_off.millis]],
                title="Ablation: size-bound early stopping in the naive scan",
            ),
        )
        return with_stop, without, query_sets

    def test_bench_on(self, benchmark, table):
        with_stop, _, query_sets = table
        benchmark(lambda: with_stop.query(query_sets[0], k=1))

    def test_bench_off(self, benchmark, table):
        _, without, query_sets = table
        benchmark(lambda: without.query(query_sets[0], k=1))


class TestCompression:
    @pytest.fixture(scope="class")
    def table(self, sets, report):
        db_sets, _ = sets
        raw_bytes = sum(s.nbytes for s in db_sets)
        encoded = [CompressedSet.encode(s) for s in db_sets]
        packed_bytes = sum(e.nbytes for e in encoded)
        with Timer() as t_decode:
            for e in encoded:
                e.decode()
        report(
            "ablation_compression",
            render_table(
                ["metric", "value"],
                [
                    ["raw KiB", raw_bytes / 1024],
                    ["delta-encoded KiB", packed_bytes / 1024],
                    ["compression ratio", raw_bytes / max(packed_bytes, 1)],
                    ["full decode ms", t_decode.millis],
                ],
                title="Ablation: delta-encoded set storage (paper future work)",
            ),
        )
        return encoded

    def test_roundtrip_integrity(self, table, sets):
        db_sets, _ = sets
        for original, enc in zip(db_sets[:50], table[:50]):
            assert np.array_equal(enc.decode(), original)

    def test_bench_decode(self, benchmark, table):
        benchmark(lambda: [e.decode() for e in table[:200]])
