"""Benchmark gate: WAL-shipping replication (docs/replication.md).

Runs :func:`repro.bench.replication.run_replication_phase` — striped
replica reads against primary-only reads on one shard with N
followers — and enforces the four contracts of the replication PR:

1. **bit-identity**: every striped answer equals the primary-only
   answer exactly (similarities compared as ``float.hex``); a mismatch
   fails the run regardless of speed,
2. **lag convergence**: after a write burst every live follower's
   ``lag_records`` is exactly 0 (shipping is inline with the ack),
3. **failover**: the primary-kill drill (acked insert → SIGKILL
   primary → next query promotes a follower, stays complete, moves the
   fencing epoch, and finds the insert) must pass,
4. **throughput**: with ``--min-replica-speedup`` set, striped reads
   must beat primary-only reads by that factor.

CI runs the gate on a 4-vCPU runner (job ``replication``)::

    PYTHONPATH=src python benchmarks/bench_replication.py \
        --replicas 2 --min-replica-speedup 1.5

The speedup floor only makes sense when the runner has at least
``replicas + 1`` cores; the identity, lag, and fault gates hold
anywhere (the record's ``available_cores`` says what the machine could
do).  Results append a ``replication`` phase to
``BENCH_trajectory.json`` alongside the lever phases, keeping the
trend diffable across PRs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

import numpy as np

from repro import __version__
from repro.bench.replication import run_replication_phase

DEFAULT_OUTPUT = Path(__file__).resolve().parent.parent / "BENCH_replication.json"
DEFAULT_TRAJECTORY = Path(__file__).resolve().parent.parent / "BENCH_trajectory.json"

TRAJECTORY_SCHEMA = 1

_SUMMARY_KEYS = (
    "replica_read_speedup",
    "striped_queries_per_second",
    "primary_queries_per_second",
    "shards",
    "replicas",
    "available_cores",
    "max_lag_records",
    "lag_converged",
    "fault_ok",
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--series", type=int, default=4000)
    parser.add_argument("--queries", type=int, default=64)
    parser.add_argument("--length", type=int, default=128)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--sigma", type=float, default=3)
    parser.add_argument("--epsilon", type=float, default=0.58)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--writes", type=int, default=16,
                        help="write-burst size for the lag-convergence check")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the primary-kill failover drill")
    parser.add_argument("--min-replica-speedup", type=float, default=None,
                        help="fail unless striped/primary >= this factor "
                             "(only meaningful with cores > replicas)")
    parser.add_argument("--output", type=Path, default=DEFAULT_OUTPUT,
                        help="JSON result path ('-' to skip writing)")
    parser.add_argument("--trajectory", type=Path, default=DEFAULT_TRAJECTORY,
                        help="append-only run history path ('-' to skip)")
    return parser


def append_trajectory(record: dict, args, path: Path) -> None:
    """Append the replication phase to the shared run history."""
    history = {"schema": TRAJECTORY_SCHEMA, "runs": []}
    if path.exists():
        try:
            loaded = json.loads(path.read_text())
            if isinstance(loaded, dict) and isinstance(loaded.get("runs"), list):
                history["runs"] = loaded["runs"]
        except (json.JSONDecodeError, OSError):
            print(f"warning: {path} unreadable, starting a fresh trajectory")
    summary = {key: record[key] for key in _SUMMARY_KEYS if key in record}
    summary["identical_neighbor_lists"] = record["identical_neighbor_lists"]
    history["runs"].append({
        "schema": TRAJECTORY_SCHEMA,
        "benchmark": "replication",
        "phase": "replication",
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": {
            "platform": platform.platform(),
            "machine": platform.machine(),
            "python": platform.python_version(),
            "numpy": np.__version__,
            "repro": __version__,
        },
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "shards": args.shards,
            "replicas": args.replicas,
            "writes": args.writes,
        },
        "summary": summary,
    })
    path.write_text(json.dumps(history, indent=2) + "\n")
    print(f"appended replication phase entry to {path}")


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    print(
        f"replication phase: {args.shards} shard(s) x {args.replicas} "
        f"follower(s) — {args.series} series x {args.queries} queries, "
        f"length {args.length}, k={args.k}",
        flush=True,
    )
    record = run_replication_phase(
        n_series=args.series, n_queries=args.queries, length=args.length,
        sigma=args.sigma, epsilon=args.epsilon, k=args.k, seed=args.seed,
        repeats=args.repeats, shards=args.shards, replicas=args.replicas,
        writes=args.writes, check_faults=not args.no_faults,
    )
    print(
        f"   replica reads: {record['replica_read_speedup']:.2f}x "
        f"({record['replicas']} followers on {record['available_cores']} "
        f"cores, {record['striped_queries_per_second']} q/s vs "
        f"{record['primary_queries_per_second']} q/s primary-only)   "
        f"identical={record['identical_neighbor_lists']}"
    )
    print(
        f"   lag: {record['followers_live']} follower(s) live after "
        f"{record['writes']} writes, max lag "
        f"{record['max_lag_records']} record(s)   "
        f"converged={record['lag_converged']}"
    )
    if not args.no_faults:
        print(
            f"   failover: killed shard {record['fault_killed_shard']} after "
            f"acked insert #{record['fault_insert_id']} — complete="
            f"{record['fault_promoted_complete']} epoch_moved="
            f"{record['fault_epoch_moved']} found="
            f"{record['fault_acked_write_found']} in "
            f"{record['fault_failover_seconds']}s"
        )

    result = {
        "benchmark": "replication",
        "repro_version": __version__,
        "numpy_version": np.__version__,
        "python_version": platform.python_version(),
        "workload": {
            "n_series": args.series,
            "n_queries": args.queries,
            "length": args.length,
            "sigma": args.sigma,
            "epsilon": args.epsilon,
            "k": args.k,
            "seed": args.seed,
            "shards": args.shards,
            "replicas": args.replicas,
            "writes": args.writes,
        },
        "phases": [record],
    }
    if str(args.output) != "-":
        args.output.write_text(json.dumps(result, indent=2) + "\n")
        print(f"wrote {args.output}")
    if str(args.trajectory) != "-":
        append_trajectory(record, args, args.trajectory)

    if not record["identical_neighbor_lists"]:
        print(
            "FAIL: striped replica answers differ from primary-only answers",
            file=sys.stderr,
        )
        return 1
    if not record["lag_converged"]:
        print(
            f"FAIL: follower lag did not converge to 0 "
            f"(max {record['max_lag_records']} record(s), "
            f"{record['followers_live']} follower(s) live)",
            file=sys.stderr,
        )
        return 1
    if not args.no_faults and not record["fault_ok"]:
        print("FAIL: primary-kill failover drill failed", file=sys.stderr)
        return 1
    if args.min_replica_speedup is not None:
        measured = record["replica_read_speedup"]
        if measured < args.min_replica_speedup:
            print(
                f"FAIL: replica read speedup {measured:.2f}x below required "
                f"{args.min_replica_speedup:.2f}x "
                f"({record['available_cores']} cores available)",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
