"""Query planner tests: per-segment method choice and execution paths.

The planner's contract: the base segment honours the requested method
verbatim, delta segments are always searched exactly (tiny ones
naively), and the merged global answer is deterministic and identical
whether a batch runs sequentially, forked, or spawned.
"""

import numpy as np
import pytest

from repro import STS3Database
from repro.core.planner import SMALL_SEGMENT, QueryPlanner, SegmentPlan
from repro.exceptions import ParameterError


def _spiked(rng, length, spike):
    series = rng.normal(size=length)
    series[int(rng.integers(0, length))] = spike
    return series


@pytest.fixture
def segmented_db():
    rng = np.random.default_rng(21)
    db = STS3Database(
        [rng.normal(size=40) for _ in range(25)],
        sigma=2, epsilon=0.4, normalize=False, buffer_capacity=3,
    )
    for i in range(3):
        db.insert(_spiked(rng, 40, 30.0 + 10.0 * i))
    assert len(db.catalog.segments) == 2
    return db, rng


class TestPlanning:
    def test_single_segment_honours_request(self):
        rng = np.random.default_rng(22)
        db = STS3Database(
            [rng.normal(size=40) for _ in range(10)], sigma=2, epsilon=0.4
        )
        for method in ("naive", "index", "pruning", "approximate"):
            plans = db.planner.plan(method)
            assert [p.method for p in plans] == [method]
            assert [p.offset for p in plans] == [0]

    def test_small_delta_segments_run_naive(self, segmented_db):
        db, _ = segmented_db
        for method in ("index", "pruning", "approximate"):
            plans = db.planner.plan(method)
            assert plans[0].method == method
            assert plans[1].method == "naive"  # 3 series < SMALL_SEGMENT
            assert plans[1].offset == 25

    def test_large_delta_never_runs_approximate(self, segmented_db):
        db, rng = segmented_db
        # Grow the delta segment past the naive threshold via direct
        # inserts (in-bound for the sealed segment's grown bound).
        while len(db.catalog.segments[-1]) < SMALL_SEGMENT:
            db.insert(np.clip(rng.normal(size=40), -1.0, 1.0))
        plans = db.planner.plan("approximate")
        assert plans[0].method == "approximate"
        assert plans[1].method == "index"
        plans = db.planner.plan("pruning")
        assert [p.method for p in plans] == ["pruning", "pruning"]

    def test_plans_are_frozen_records(self, segmented_db):
        db, _ = segmented_db
        plan = db.planner.plan("index")[0]
        assert isinstance(plan, SegmentPlan)
        with pytest.raises(AttributeError):
            plan.method = "naive"

    def test_calibration_goes_stale_with_the_catalog(self, segmented_db):
        db, rng = segmented_db
        db.calibrate([rng.normal(size=40)])
        assert db.planner.calibrated_method in ("naive", "index", "pruning")
        db.insert(np.clip(rng.normal(size=40), -1.0, 1.0))
        assert db.planner.calibrated_method is None

    def test_resolve_auto_spans_all_segments(self, segmented_db):
        db, _ = segmented_db
        planner = QueryPlanner(db.catalog)
        assert planner.resolve_auto() == "pruning"  # short series everywhere


class TestWorkerStartMethods:
    """Satellite: explicit picklable worker context works under spawn."""

    def test_spawn_matches_sequential(self, segmented_db):
        db, rng = segmented_db
        queries = [rng.normal(size=40) for _ in range(4)]
        sequential = db.query_batch(queries, k=3, method="index")
        spawned = db.query_batch(
            queries, k=3, method="index", workers=2, start_method="spawn"
        )
        assert [
            [(n.index, n.similarity) for n in r.neighbors] for r in spawned
        ] == [[(n.index, n.similarity) for n in r.neighbors] for r in sequential]
        for got, want in zip(spawned, sequential):
            assert got.stats == want.stats

    def test_fork_matches_sequential(self, segmented_db):
        db, rng = segmented_db
        queries = [rng.normal(size=40) for _ in range(5)]
        sequential = db.query_batch(queries, k=2, method="pruning")
        forked = db.query_batch(
            queries, k=2, method="pruning", workers=2, start_method="fork"
        )
        assert [
            [(n.index, n.similarity) for n in r.neighbors] for r in forked
        ] == [[(n.index, n.similarity) for n in r.neighbors] for r in sequential]

    def test_unknown_start_method_raises(self, segmented_db):
        db, rng = segmented_db
        with pytest.raises(ParameterError):
            db.query_batch(
                [rng.normal(size=40) for _ in range(3)],
                k=1, method="index", workers=2, start_method="carrier-pigeon",
            )


class TestMergeDeterminism:
    def test_duplicate_series_across_segments_tie_break(self):
        """A series stored in both the base and a sealed segment ties at
        similarity 1.0; the smaller global index must win."""
        rng = np.random.default_rng(23)
        base = [rng.normal(size=32) for _ in range(8)]
        db = STS3Database(
            base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=2
        )
        twin = base[2].copy()
        twin[0] = 50.0  # force it through the buffer
        db.insert(twin)
        db.insert(_spiked(rng, 32, 70.0))
        assert len(db.catalog.segments) == 2
        result = db.query(twin, k=2, method="naive")
        # The sealed twin matches exactly (sim 1.0) and sits at global
        # index 8; no base series can beat it, and ties prefer the
        # smaller index — determinism across segment boundaries.
        assert result.best.index == 8
        assert result.best.similarity == 1.0
        sims = [n.similarity for n in result.neighbors]
        assert sims == sorted(sims, reverse=True)
