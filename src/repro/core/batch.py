"""Vectorized batch query engine over the inverted index.

The scalar :meth:`IndexedSearcher.query` path pays, per query, the
Python dispatch of ~a dozen numpy calls, a list comprehension over one
postings slice per query cell, fresh counter allocations, and a top-k
selection.  For a *batch* of queries all of that overhead can be paid
once per batch instead of once per query:

1. **Query-side CSR layout** — all query cell sets are concatenated
   into one values array with a parallel query-id row index (the CSR
   representation of the batch's sparse query/cell matrix).
2. **One-pass postings location** — a single pair of
   ``np.searchsorted`` calls against the index's sorted postings
   (``IndexedSearcher._cells``) finds the postings run of every
   (query, cell) pair at once.  The run lengths also reveal, before any
   heavy work, exactly how many (query, posting) pairs the batch
   touches — which drives the kernel choice below.
3. **Intersection counting**, by one of three kernels:

   - *sparse/CSR kernel* — gather every postings run with one fancy
     index and accumulate per-query counters with a single flat
     ``np.bincount`` over ``query_id * n_series + owner`` keys (the
     per-query counter arrays of Algorithm 3, stacked, in one C pass).
     Work is proportional to the pairs actually touched, so this wins
     when intersections are sparse.
   - *dense/one-hot kernel* — materialize the database side once as a
     one-hot ``(distinct cells × n_series)`` float32 matrix and compute
     all counters as a BLAS matmul with the batch's one-hot query
     matrix.  Counts are small integers, exact in float32, so results
     are still bit-identical.  On overlap-heavy databases (the gathered
     pairs can approach ``n_queries × total postings``) this turns a
     memory-bound scatter into a compute-bound GEMM and wins by a wide
     margin.

   - *bitset kernel* — pack the database into a
     :class:`~repro.core.bitset.BitsetStore` (one uint64 row of
     ``ceil(vocab/64)`` words per series) and count each query's
     intersections as one ``popcount(matrix & q)`` sweep.  Work is
     ``n_series × n_words`` per query regardless of overlap, so this
     wins on dense-overlap segments with small vocabularies, where the
     gathered-pair count explodes and even the GEMM pays 64x the
     bitset's bytes per cell column.

   The engine picks per batch from a unit-cost model over the exact
   pair/vocabulary counts (``kernel="auto"``; force any for ablation).
4. **O(n) top-k per query** — :func:`repro.core.selection.top_k_indices`
   replaces the historical full lexsort, preserving the deterministic
   tie-break (similarity descending, index ascending).

A :class:`QueryWorkspace` keeps every recurring buffer alive between
batches.  This matters twice: steady-state batches allocate (almost)
nothing, and — more importantly on cgroup-limited or overcommitted
hosts, where first-touch page faults on fresh tens-of-MB allocations
can be an order of magnitude slower than warm writes — the kernels only
ever stream through already-faulted pages.  Large batches are processed
in tiles bounded both by counter cells (``tile_cells``) and gathered
pairs (``tile_postings``) so peak scratch memory is constant.

The engine returns *exactly* what the scalar path returns — same
neighbours, same similarities (bit for bit), same ``SearchStats``
counters — so :meth:`STS3Database.query_batch` swaps it in
transparently.
"""

from __future__ import annotations

import threading

import numpy as np

from ..exceptions import ParameterError
from ..obs import get_registry, span
from .bitset import BitsetStore
from .result import Neighbor, QueryResult, SearchStats
from .selection import top_k_indices

__all__ = ["QueryWorkspace", "BatchQueryEngine", "batch_query"]

_KERNELS = ("auto", "sparse", "dense", "bitset")

#: Estimated cost ratio between one gathered (query, posting) pair in
#: the sparse kernel (~7 streaming passes of 8 bytes) and one
#: multiply-add of the dense GEMM (AVX-vectorized float32).  Measured on
#: the reference container; only the order of magnitude matters for the
#: crossover to land in the right regime.
_SPARSE_PAIR_COST = 256

#: Estimated cost of one uint64 word in the bitset sweep (AND + popcount
#: + horizontal add) relative to one GEMM multiply-add.  A word covers
#: 64 vocabulary columns, so a value above 64 means a feasible GEMM
#: always outranks the bitset sweep on the same shape — which matches
#: measurement on the reference container (~14 ns/word vs ~0.09 ns/flop
#: through BLAS).  The bitset kernel's niche is the regime the
#: ``dense_limit`` gate carves out: its matrix is 64x smaller than the
#: one-hot, so it stays feasible (and beats the sparse gather) long
#: after the GEMM workspace is priced out.
_BITSET_WORD_COST = 160


class QueryWorkspace:
    """Reusable scratch buffers for the batch kernels.

    Buffers are requested by name, grown geometrically, and never
    returned to the allocator, so batches of similar shape reuse warm
    pages instead of re-faulting fresh ones.  A workspace is not
    thread-safe; give each worker its own.  It holds no reference to
    any index, so one workspace can serve successive engines across
    database rebuilds.
    """

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def buffer(self, name: str, size: int, dtype) -> np.ndarray:
        """A 1-D scratch array of at least ``size`` elements.

        Contents are undefined (the kernels overwrite every element
        they read); the returned view is exactly ``size`` long.
        """
        dtype = np.dtype(dtype)
        existing = self._buffers.get(name)
        if existing is None or existing.size < size or existing.dtype != dtype:
            capacity = size if existing is None else max(size, 2 * existing.size)
            existing = np.empty(capacity, dtype=dtype)
            self._buffers[name] = existing
        return existing[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the pool."""
        return sum(b.nbytes for b in self._buffers.values())


class _KernelArtifacts:
    """Lazily-built index-side artifacts shared by engine clones.

    The distinct-cell array, one-hot matrix, and packed bitset depend
    only on the (immutable) searcher, never on the workspace, so
    workspace-bound clones (:meth:`BatchQueryEngine.with_workspace`)
    share one instance and parallel shards build each artifact exactly
    once, under the lock.  The lock is dropped and rebuilt across
    pickling (the process-based ``query_batch(workers=N)`` path).
    """

    __slots__ = ("lock", "distinct", "onehot", "bitset")

    def __init__(self, bitset=None):
        self.lock = threading.Lock()
        self.distinct: np.ndarray | None = None
        self.onehot: np.ndarray | None = None
        #: a BitsetStore, a zero-arg supplier for one, or None.
        self.bitset = bitset

    def __getstate__(self) -> dict:
        return {
            "distinct": self.distinct,
            "onehot": self.onehot,
            "bitset": self.bitset,
        }

    def __setstate__(self, state: dict) -> None:
        self.lock = threading.Lock()
        self.distinct = state["distinct"]
        self.onehot = state["onehot"]
        self.bitset = state["bitset"]


class BatchQueryEngine:
    """One-pass k-NN over the inverted index for a whole query batch.

    Parameters
    ----------
    searcher:
        A built :class:`repro.core.indexed.IndexedSearcher` (its sorted
        postings arrays are read directly).
    workspace:
        Optional :class:`QueryWorkspace` to reuse across batches; a
        private one is created when omitted.
    tile_cells:
        Upper bound on ``tile_queries × n_series`` counter cells
        materialized at once (default 4M ≈ 32 MiB of float64 counters).
    tile_postings:
        Upper bound on gathered (query, posting) pairs per tile for the
        sparse kernel (default 8M ≈ 64 MiB of int64 scratch).
    kernel:
        ``"auto"`` (default) chooses per batch; ``"sparse"`` /
        ``"dense"`` / ``"bitset"`` force one kernel (used by the
        ablation bench and tests).
    dense_limit:
        Refuse to build the one-hot database matrix beyond this many
        float32 elements (default 64M ≈ 256 MiB); oversized indexes
        always use the sparse kernel.  The packed bitset matrix is
        gated by the same element budget (uint64 words instead of
        float32 cells, i.e. 2x the bytes per element at 1/64th the
        elements).
    bitset_store:
        Optional prebuilt :class:`~repro.core.bitset.BitsetStore` over
        the searcher's sets, or a zero-arg supplier returning one (or
        ``None``) — segments pass their lazy store accessor so engine
        and searchers share one matrix.  Built from the sets on first
        bitset-kernel use when omitted or when the supplier declines.
    """

    def __init__(
        self,
        searcher,
        workspace: QueryWorkspace | None = None,
        tile_cells: int = 4_000_000,
        tile_postings: int = 8_000_000,
        kernel: str = "auto",
        dense_limit: int = 64_000_000,
        bitset_store=None,
        artifacts: _KernelArtifacts | None = None,
    ):
        if tile_cells < 1:
            raise ParameterError(f"tile_cells must be >= 1, got {tile_cells}")
        if tile_postings < 1:
            raise ParameterError(f"tile_postings must be >= 1, got {tile_postings}")
        if kernel not in _KERNELS:
            raise ParameterError(f"unknown kernel {kernel!r}; one of {_KERNELS}")
        self.searcher = searcher
        self.workspace = workspace if workspace is not None else QueryWorkspace()
        self.tile_cells = int(tile_cells)
        self.tile_postings = int(tile_postings)
        self.kernel = kernel
        self.dense_limit = int(dense_limit)
        self._lengths_f64 = np.asarray(searcher.lengths, dtype=np.float64)
        self._has_empty_set = bool(np.any(searcher.lengths == 0))
        # Index-side artifacts (distinct cells, one-hot, bitset), built
        # lazily on first use and shared with workspace-bound clones.
        self._artifacts = (
            artifacts if artifacts is not None else _KernelArtifacts(bitset_store)
        )
        #: kernel chosen for each tile of the last query_batch call
        #: (diagnostic, consumed by the benchmark report).
        self.last_kernels: list[str] = []

    def with_workspace(self, workspace: QueryWorkspace | None) -> "BatchQueryEngine":
        """A clone bound to ``workspace`` but sharing every artifact.

        Workspaces are not thread-safe; parallel batch shards each run
        through their own clone over a per-worker workspace while the
        heavy index-side artifacts stay shared (and build once).
        ``last_kernels`` is per-clone, so shards don't race on the
        diagnostic either.
        """
        return BatchQueryEngine(
            self.searcher,
            workspace=workspace,
            tile_cells=self.tile_cells,
            tile_postings=self.tile_postings,
            kernel=self.kernel,
            dense_limit=self.dense_limit,
            artifacts=self._artifacts,
        )

    # -- batch entry point ----------------------------------------------

    def query_batch(self, query_sets: list[np.ndarray], k: int = 1) -> list[QueryResult]:
        """Answer every query set; results align with the input order."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        n_series = len(self.searcher.sets)
        k = min(k, n_series)
        self.last_kernels = []
        if not query_sets:
            return []
        # Batch-width distribution: count = engine invocations, sum =
        # queries.  The serving layer's request coalescer reads this as
        # its effectiveness signal — how many concurrent single queries
        # each micro-batching window actually amortized into one pass
        # (docs/serving.md); size-bucketed, not latency-bucketed.
        get_registry().histogram(
            "sts3_batch_engine_queries",
            "queries handed to the batch engine per invocation",
            buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512),
        ).observe(len(query_sets))

        # The batch-wide postings location is filtering work (it finds
        # which series each query touches), so it shares the "filter"
        # span name with the per-tile counting kernels.
        with span("filter", phase="locate_postings"):
            q_lens = np.asarray([s.size for s in query_sets], dtype=np.int64)
            q_indptr = np.zeros(len(query_sets) + 1, dtype=np.int64)
            np.cumsum(q_lens, out=q_indptr[1:])
            q_cells = (
                np.concatenate(query_sets)
                if q_indptr[-1]
                else np.empty(0, dtype=np.int64)
            )
            # One searchsorted pair for the WHOLE batch: postings runs of
            # every (query, cell) pair, and through them the exact pair
            # counts that drive tiling and kernel choice.
            left = np.searchsorted(self.searcher._cells, q_cells, side="left")
            right = np.searchsorted(self.searcher._cells, q_cells, side="right")
            run_lens = right - left
            pair_cum = np.zeros(run_lens.size + 1, dtype=np.int64)
            np.cumsum(run_lens, out=pair_cum[1:])
            pairs_per_query = pair_cum[q_indptr[1:]] - pair_cum[q_indptr[:-1]]

        # Kernel choice is per batch: the dense GEMM's economics depend
        # on the whole batch's pair count, and only the sparse kernel
        # needs its tiles bounded by gathered pairs (its scratch is
        # pair-sized; the GEMM's is counter-sized).  The distinct-cell
        # scan behind the choice can rival the kernels themselves on
        # first use, so it counts as filter work too.
        with span("filter", phase="plan_tiles"):
            kernel = self._choose_kernel(len(query_sets), int(pair_cum[-1]))
            tiles = self._tiles(q_lens, pairs_per_query, n_series, kernel)
        registry = get_registry()
        registry.counter(
            "sts3_batch_tiles_total", "batch-engine tiles run, by chosen kernel"
        ).inc(len(tiles), kernel=kernel)
        registry.counter(
            "sts3_kernel_selected_total",
            "batch-engine kernel selections, by chosen kernel",
        ).inc(kernel=kernel)
        results: list[QueryResult] = []
        for start, stop in tiles:
            cell_slice = slice(q_indptr[start], q_indptr[stop])
            with span("tile", kernel=kernel, queries=stop - start):
                results.extend(
                    self._run_tile(
                        query_sets[start:stop],
                        q_lens[start:stop],
                        q_cells[cell_slice],
                        left[cell_slice],
                        run_lens[cell_slice],
                        int(pairs_per_query[start:stop].sum()),
                        k,
                        kernel,
                    )
                )
        return results

    def _tiles(
        self,
        q_lens: np.ndarray,
        pairs_per_query: np.ndarray,
        n_series: int,
        kernel: str,
    ) -> list[tuple[int, int]]:
        """Greedy query partition honouring the active scratch budgets."""
        tiles: list[tuple[int, int]] = []
        start = 0
        pairs = 0
        for i in range(len(q_lens)):
            width = (i - start + 1) * n_series
            over_pairs = (
                kernel == "sparse" and pairs + pairs_per_query[i] > self.tile_postings
            )
            if i > start and (width > self.tile_cells or over_pairs):
                tiles.append((start, i))
                start, pairs = i, 0
            pairs += int(pairs_per_query[i])
        tiles.append((start, len(q_lens)))
        return tiles

    # -- kernels ---------------------------------------------------------

    def _choose_kernel(self, n_queries: int, total_pairs: int) -> str:
        """Cheapest kernel under the unit-cost model (ties keep the
        earlier entry, so the historical sparse-vs-dense tie-break is
        unchanged)."""
        if self.kernel != "auto":
            return self.kernel
        n_series = len(self.searcher.sets)
        distinct = self._distinct()
        n_words = (distinct.size + 63) // 64
        costs: dict[str, int] = {
            "sparse": total_pairs * _SPARSE_PAIR_COST,
        }
        if n_series * n_words <= self.dense_limit:
            costs["bitset"] = (
                n_queries * n_series * max(n_words, 1) * _BITSET_WORD_COST
            )
        if distinct.size * n_series <= self.dense_limit:
            costs["dense"] = n_queries * distinct.size * n_series
        best = "sparse"
        for name, cost in costs.items():
            if cost < costs[best]:
                best = name
        return best

    def _distinct(self) -> np.ndarray:
        art = self._artifacts
        if art.distinct is None:
            with art.lock:
                if art.distinct is None:
                    # _cells is sorted, so unique is a linear pass.
                    art.distinct = np.unique(self.searcher._cells)
        return art.distinct

    def _bitset_store(self) -> BitsetStore:
        """The packed database bitmap: supplied, injected, or built once."""
        art = self._artifacts
        if not isinstance(art.bitset, BitsetStore):
            with art.lock:
                if callable(art.bitset):
                    art.bitset = art.bitset()
                if art.bitset is None:
                    art.bitset = BitsetStore(self.searcher.sets)
        return art.bitset

    def _onehot_matrix(self) -> np.ndarray:
        """One-hot (distinct cells × n_series) float32 matrix, built once."""
        art = self._artifacts
        if art.onehot is None:
            with art.lock:
                if art.onehot is None:
                    # inline (the lock is not reentrant, so no _distinct())
                    distinct = (
                        art.distinct
                        if art.distinct is not None
                        else np.unique(self.searcher._cells)
                    )
                    n_series = len(self.searcher.sets)
                    onehot = np.zeros((distinct.size, n_series), dtype=np.float32)
                    rank = np.searchsorted(distinct, self.searcher._cells)
                    onehot.ravel()[rank * n_series + self.searcher._owners] = 1.0
                    art.distinct = distinct
                    art.onehot = onehot
        return art.onehot

    def _counts_sparse(
        self,
        counts: np.ndarray,
        q_lens: np.ndarray,
        left: np.ndarray,
        run_lens: np.ndarray,
        total_pairs: int,
    ) -> None:
        """CSR gather + flat bincount intersection counting (one tile).

        All ``total_pairs``-sized scratch comes from the workspace, and
        the gather/key arrays are built with boundary-difference +
        cumsum passes (a ``np.repeat`` equivalent that writes into a
        reused buffer instead of allocating).
        """
        n_queries, n_series = counts.shape
        if total_pairs == 0:
            counts.fill(0.0)
            return
        nz = run_lens > 0
        lens = run_lens[nz]
        starts = left[nz]
        qid_per_cell = np.repeat(np.arange(n_queries, dtype=np.int64), q_lens)
        key_base = (qid_per_cell * n_series)[nz]
        bpos = np.cumsum(lens) - lens  # first flat position of each run

        # flat[i] = starts[r] + (i - bpos[r]) for i inside run r, via
        # per-element deltas (+1 inside a run, jump at boundaries).
        flat = self.workspace.buffer("flat", total_pairs, np.int64)
        flat.fill(1)
        flat[0] = starts[0]
        if lens.size > 1:
            flat[bpos[1:]] = starts[1:] - (starts[:-1] + lens[:-1]) + 1
        np.cumsum(flat, out=flat)

        owners = self.workspace.buffer("owners", total_pairs, np.int64)
        np.take(self.searcher._owners, flat, out=owners)

        # keys[i] = key_base[r] + owner, with key_base expanded by the
        # same boundary-delta trick (reusing the flat buffer).
        keys = flat
        keys.fill(0)
        keys[0] = key_base[0]
        if lens.size > 1:
            keys[bpos[1:]] = key_base[1:] - key_base[:-1]
        np.cumsum(keys, out=keys)
        np.add(keys, owners, out=keys)

        np.copyto(counts, np.bincount(keys, minlength=counts.size).reshape(counts.shape))

    def _counts_dense(
        self, counts: np.ndarray, q_lens: np.ndarray, q_cells: np.ndarray
    ) -> None:
        """One-hot GEMM intersection counting (one tile).

        Counts are sums of 0/1 products bounded by the query set size,
        far below float32's 2^24 exact-integer range, so the GEMM
        result equals the bincount result exactly.
        """
        n_queries, n_series = counts.shape
        distinct = self._distinct()
        rank = np.searchsorted(distinct, q_cells)
        # Query cells absent from the index (e.g. Algorithm 6 out-of-
        # bound cells) match nothing; drop them from the one-hot rows.
        present = rank < distinct.size
        present &= distinct[np.where(present, rank, 0)] == q_cells
        rank = rank[present]
        if rank.size == 0:
            counts.fill(0.0)
            return
        onehot = self._onehot_matrix()
        width = distinct.size

        qmat = self.workspace.buffer("qmat", n_queries * width, np.float32).reshape(
            n_queries, width
        )
        qmat.fill(0.0)
        rows = np.repeat(np.arange(n_queries, dtype=np.int64), q_lens)
        qmat.ravel()[rows[present] * width + rank] = 1.0

        out = self.workspace.buffer("gemm", n_queries * n_series, np.float32).reshape(
            n_queries, n_series
        )
        np.matmul(qmat, onehot, out=out)
        np.copyto(counts, out)

    def _counts_bitset(
        self, counts: np.ndarray, query_sets: list[np.ndarray]
    ) -> None:
        """Packed popcount intersection counting (one tile).

        Each query packs into ``n_words`` uint64 words over the store
        vocabulary (out-of-vocabulary cells, e.g. Algorithm 6 IDs,
        intersect nothing and drop out), and one
        ``popcount(matrix & q)`` sweep yields the exact int64 counts
        for every series — bit-identical to the bincount and GEMM
        kernels once copied into the float64 counters.
        """
        store = self._bitset_store()
        n_queries = len(query_sets)
        n_series, n_words = store.matrix.shape
        with span(
            "kernel.bitset", rows=n_series * n_queries, words=n_words
        ):
            if n_words == 0:
                counts.fill(0.0)
                return
            packed = np.stack([store.pack(qs) for qs in query_sets])
            # Broadcast whole query blocks against the matrix at once;
            # the block size keeps the (block, n_series, n_words) AND
            # scratch within ~16 MiB regardless of shape.
            block = max(1, 2_000_000 // (n_series * n_words))
            for start in range(0, n_queries, block):
                sub = packed[start : start + block]
                inter = sub[:, None, :] & store.matrix[None, :, :]
                counts[start : start + block, :] = store._popcount(inter).sum(
                    axis=2, dtype=np.int64
                )

    # -- tile driver -----------------------------------------------------

    def _run_tile(
        self,
        query_sets: list[np.ndarray],
        q_lens: np.ndarray,
        q_cells: np.ndarray,
        left: np.ndarray,
        run_lens: np.ndarray,
        total_pairs: int,
        k: int,
        kernel: str,
    ) -> list[QueryResult]:
        n_queries = len(query_sets)
        n_series = len(self.searcher.sets)
        size = n_queries * n_series

        # Counters live in float64: every count is a small integer
        # (exact), and |S|+|Q|-count stays integer-valued, so the final
        # float64 division is bit-identical to the scalar int64 path.
        with span("filter", kernel=kernel):
            counts = self.workspace.buffer("counts", size, np.float64).reshape(
                n_queries, n_series
            )
            self.last_kernels.append(kernel)
            if kernel == "dense":
                self._counts_dense(counts, q_lens, q_cells)
            elif kernel == "bitset":
                self._counts_bitset(counts, query_sets)
            else:
                self._counts_sparse(counts, q_lens, left, run_lens, total_pairs)

        with span("refine"):
            union = self.workspace.buffer("union", size, np.float64).reshape(
                n_queries, n_series
            )
            np.subtract(self._lengths_f64[None, :], counts, out=union)
            np.add(union, q_lens.astype(np.float64)[:, None], out=union)
            sims = self.workspace.buffer("sims", size, np.float64).reshape(
                n_queries, n_series
            )
            # Scalar parity: sims = where(union > 0, counts / max(union, 1), 1).
            # union == 0 only when query AND series sets are both empty
            # (Jaccard of two empty sets is defined as 1), so the patch-up
            # passes are skipped entirely on indexes without empty sets.
            if self._has_empty_set:
                empty = self.workspace.buffer("empty", size, np.bool_).reshape(
                    n_queries, n_series
                )
                np.equal(union, 0.0, out=empty)
                np.maximum(union, 1.0, out=union)
                np.divide(counts, union, out=sims)
                sims[empty] = 1.0
            else:
                np.divide(counts, union, out=sims)
            touched = np.count_nonzero(counts, axis=1)

        with span("select_topk"):
            results: list[QueryResult] = []
            for row in range(n_queries):
                row_sims = sims[row]
                order = top_k_indices(row_sims, k)
                neighbors = [
                    Neighbor(similarity=float(row_sims[i]), index=int(i))
                    for i in order
                ]
                stats = SearchStats(
                    candidates=n_series,
                    exact_computations=int(touched[row]),
                    pruned=int(n_series - touched[row]),
                    final_candidates=len(neighbors),
                )
                results.append(QueryResult(neighbors=neighbors, stats=stats))
        return results


def batch_query(
    searcher,
    query_sets: list[np.ndarray],
    k: int = 1,
    workspace: QueryWorkspace | None = None,
    kernel: str = "auto",
) -> list[QueryResult]:
    """One-shot convenience wrapper around :class:`BatchQueryEngine`."""
    engine = BatchQueryEngine(searcher, workspace=workspace, kernel=kernel)
    return engine.query_batch(query_sets, k=k)
