"""Hypothesis stateful test of STS3Database against a naive model.

The rule machine interleaves in-bound inserts, out-of-bound inserts,
explicit flushes, segment compactions, and queries through every
method, checking after each
query that the database's best answer matches a model that just stores
all series and compares transformed sets directly.  This hunts for
state bugs the example-based tests can't reach: stale caches after
inserts, index drift across buffer flushes, bound-expansion mistakes.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro import STS3Database
from repro.core.jaccard import jaccard

LENGTH = 24


def _series(rng_seed: int, spike: float = 0.0) -> np.ndarray:
    rng = np.random.default_rng(rng_seed)
    out = rng.normal(size=LENGTH)
    if spike:
        out[int(rng.integers(0, LENGTH))] = spike
    return out


class DatabaseMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**20))
    def build(self, seed):
        self.seed = seed
        self.next_spike = 50.0
        base = [_series(seed + i) for i in range(4)]
        # normalize=False so out-of-bound inserts are actually possible
        self.db = STS3Database(
            base, sigma=2, epsilon=0.5, normalize=False, buffer_capacity=3
        )
        self.model = list(self.db.series)

    @rule(offset=st.integers(0, 1000))
    def insert_in_bound(self, offset):
        """A series within the current value bound joins directly."""
        series = 0.5 * _series(self.seed + 10_000 + offset)
        series = np.clip(series, self.db.grid.bound.x_min[0], self.db.grid.bound.x_max[0])
        self.db.insert(series)
        self.model.append(series)

    @rule(offset=st.integers(0, 1000))
    def insert_out_of_bound(self, offset):
        """A spiked series exceeds the bound and goes through the buffer."""
        self.next_spike += 10.0  # always breaks even an expanded bound
        series = _series(self.seed + 20_000 + offset, spike=self.next_spike)
        self.db.insert(series)
        self.model.append(series)

    @rule()
    def flush(self):
        self.db.flush()

    @rule()
    def compact(self):
        """Merging segments must preserve sizes, integrity, and indices."""
        self.db.compact()

    @invariant()
    def sizes_agree(self):
        assert len(self.db) == len(self.model)

    @invariant()
    def internals_consistent(self):
        assert self.db.verify_integrity() == []

    @rule(
        offset=st.integers(0, 1000),
        method=st.sampled_from(["naive", "index", "pruning"]),
        k=st.integers(1, 4),
    )
    def query_matches_model(self, offset, method, k):
        """Exact methods must return the model's best similarities."""
        query = _series(self.seed + 30_000 + offset)
        result = self.db.query(query, k=k, method=method)

        # Model: transform against each segment's grid and the buffer
        # grid exactly as the database documents, then rank globally.
        from repro.core.setrep import transform_query

        sims = []
        for segment in self.db.catalog.segments:
            segment_q = transform_query(query, segment.grid)
            sims += [jaccard(s, segment_q) for s in segment.sets]
        buffer_q = transform_query(query, self.db.buffer.grid)
        sims += [jaccard(s, buffer_q) for s in self.db.buffer.sets]
        expected = sorted(
            ((sim, i) for i, sim in enumerate(sims)), key=lambda t: (-t[0], t[1])
        )[: min(k, len(sims))]
        got = [(n.similarity, n.index) for n in result.neighbors]
        assert [round(s, 12) for s, _ in got] == [round(s, 12) for s, _ in expected]
        assert [i for _, i in got] == [i for _, i in expected]

    @rule(offset=st.integers(0, 1000))
    def query_self_found(self, offset):
        """Any stored series is its own nearest neighbour (sim 1.0)."""
        if not self.model:
            return
        index = offset % len(self.model)
        result = self.db.query(self.model[index], k=1, method="naive")
        assert result.best.similarity == 1.0


TestDatabaseStateful = DatabaseMachine.TestCase
TestDatabaseStateful.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
