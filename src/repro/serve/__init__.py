"""Asyncio query service for STS3 (docs/serving.md, DESIGN.md §14).

The serving layer turns one :class:`~repro.core.database.STS3Database`
into a network service without touching the engine's answer semantics:

- :mod:`repro.serve.protocol` — length-prefixed binary framing with
  raw float64 series blobs, plus error codes and result serialization,
- :mod:`repro.serve.service` — the transport-agnostic core: request
  coalescing into batch-kernel tiles, admission control (bounded
  in-flight, per-client token buckets), deadline anchoring at arrival,
  graceful drain,
- :mod:`repro.serve.server` — the asyncio TCP server and HTTP+JSON
  adapter, an embeddable :class:`ServerThread`, and the ``sts3 serve``
  entry coroutine,
- :mod:`repro.serve.client` — the blocking client library.

The contract that makes all of it safe: every served answer is
bit-identical to the same call made directly on the database.
Coalescing rides on the engine's scalar/batch parity guarantee, so the
server is free to regroup concurrent work for throughput.
"""

from .client import ServeClient
from .protocol import (
    DEFAULT_PORT,
    ERROR_CODES,
    HTTP_STATUS,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    pack_message,
    read_message,
    result_from_wire,
    result_to_wire,
    unpack_payload,
    write_message,
)
from .server import STS3Server, ServerThread, serve
from .service import QueryService, ServiceConfig

__all__ = [
    "DEFAULT_PORT",
    "ERROR_CODES",
    "HTTP_STATUS",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryService",
    "STS3Server",
    "ServeClient",
    "ServeError",
    "ServerThread",
    "ServiceConfig",
    "pack_message",
    "read_message",
    "result_from_wire",
    "result_to_wire",
    "serve",
    "unpack_payload",
    "write_message",
]
