"""Packed-bitset store: popcount kernels vs the sorted-merge truth.

The contract under test is *bit-identity*: every popcount path — the
full sweep, gathered rows, per-zone masked counts, and the batch
engine's ``kernel="bitset"`` — must produce the same integers as
``np.intersect1d`` and hence the same float64 Jaccard values and the
same deterministic tie-breaks as every scalar path.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BitsetStore, NaiveSearcher, PruningSearcher
from repro.core.batch import BatchQueryEngine, batch_query
from repro.core.bitset import HAVE_BITWISE_COUNT, popcount_u64, popcount_u64_lut
from repro.core.grid import Bound, Grid
from repro.core.indexed import IndexedSearcher
from repro.core.pruning import zone_histogram
from repro.core.setrep import transform, transform_query
from repro.exceptions import ParameterError

#: a sorted unique cell set over a deliberately small ID space (forces
#: overlap) with occasional huge IDs (Algorithm 6's out-of-bound space).
cell_set = st.lists(
    st.one_of(
        st.integers(min_value=0, max_value=120),
        st.integers(min_value=10**6, max_value=10**6 + 40),
    ),
    min_size=0,
    max_size=60,
).map(lambda ids: np.unique(np.asarray(ids, dtype=np.int64)))

database = st.lists(cell_set, min_size=1, max_size=12)


def merge_counts(sets, query):
    return np.asarray(
        [np.intersect1d(s, query, assume_unique=True).size for s in sets],
        dtype=np.int64,
    )


class TestPopcount:
    def test_lut_matches_ufunc_on_word_extremes(self):
        words = np.array(
            [0, 1, 2, 0xFF, 2**63, 2**64 - 1, 0x5555555555555555],
            dtype=np.uint64,
        )
        expected = np.array([0, 1, 1, 8, 1, 64, 32], dtype=np.int64)
        assert np.array_equal(popcount_u64_lut(words), expected)
        assert np.array_equal(popcount_u64(words), expected)

    def test_lut_preserves_shape(self):
        words = np.arange(12, dtype=np.uint64).reshape(3, 4)
        out = popcount_u64_lut(words)
        assert out.shape == (3, 4)
        assert out.dtype == np.int64

    @pytest.mark.skipif(not HAVE_BITWISE_COUNT, reason="needs numpy >= 2.0")
    def test_lut_matches_bitwise_count_randomized(self):
        rng = np.random.default_rng(3)
        words = rng.integers(0, 2**63, size=500, dtype=np.uint64) * np.uint64(2) + (
            rng.integers(0, 2, size=500).astype(np.uint64)
        )
        assert np.array_equal(
            popcount_u64_lut(words), np.bitwise_count(words).astype(np.int64)
        )

    def test_use_lut_false_requires_ufunc(self):
        if HAVE_BITWISE_COUNT:
            BitsetStore([np.array([1], dtype=np.int64)], use_lut=False)
        else:
            with pytest.raises(ParameterError):
                BitsetStore([np.array([1], dtype=np.int64)], use_lut=False)


class TestStoreEquivalence:
    @given(sets=database, query=cell_set)
    @settings(max_examples=120)
    def test_counts_match_intersect1d(self, sets, query):
        store = BitsetStore(sets)
        assert np.array_equal(store.intersection_counts(query), merge_counts(sets, query))

    @given(sets=database, query=cell_set)
    @settings(max_examples=60)
    def test_lut_path_matches_ufunc_path(self, sets, query):
        lut = BitsetStore(sets, use_lut=True)
        assert np.array_equal(lut.intersection_counts(query), merge_counts(sets, query))

    @given(sets=database, query=cell_set)
    @settings(max_examples=60)
    def test_row_gather_matches_full_sweep(self, sets, query):
        store = BitsetStore(sets)
        q_words = store.pack(query)
        rows = np.arange(len(sets) - 1, -1, -1, dtype=np.int64)  # reversed
        gathered = store.intersection_counts_rows(rows, q_words)
        assert np.array_equal(gathered, merge_counts(sets, query)[rows])

    def test_single_cell_vocabulary(self):
        sets = [np.array([7], dtype=np.int64), np.empty(0, dtype=np.int64)]
        store = BitsetStore(sets)
        assert store.vocab.tolist() == [7]
        assert store.matrix.shape == (2, 1)
        assert store.intersection_counts(np.array([7], dtype=np.int64)).tolist() == [1, 0]
        assert store.intersection_counts(np.array([8], dtype=np.int64)).tolist() == [0, 0]

    def test_all_empty_sets(self):
        sets = [np.empty(0, dtype=np.int64)] * 3
        store = BitsetStore(sets)
        assert store.matrix.shape == (3, 0)
        counts = store.intersection_counts(np.array([1, 2], dtype=np.int64))
        assert counts.tolist() == [0, 0, 0]
        assert store.verify_against(sets) == []

    def test_out_of_bound_query_ids_from_transform_query(self):
        rng = np.random.default_rng(11)
        series = [rng.normal(size=48) for _ in range(20)]
        bound = Bound.of_database(series)
        grid = Grid.from_cell_sizes(bound, 2, 0.4)
        sets = [transform(s, grid) for s in series]
        store = BitsetStore(sets)
        spiked = rng.normal(size=48)
        spiked[3] = 40.0  # escapes the bound: Algorithm 6 ID space
        query = transform_query(spiked, grid)
        assert query.max() >= grid.n_cells  # the premise: out-of-bound IDs
        assert np.array_equal(store.intersection_counts(query), merge_counts(sets, query))

    @given(sets=database, query=cell_set)
    @settings(max_examples=60)
    def test_masked_counts_match_zone_histogram(self, sets, query):
        rng = np.random.default_rng(0)
        store = BitsetStore(sets)
        n_groups = 5
        groups = rng.integers(0, n_groups, size=store.vocab.size)
        masks = store.column_masks(groups, n_groups)
        hist = store.masked_counts(store.pack(query), masks)
        in_vocab = query[np.isin(query, store.vocab, assume_unique=True)]
        ranks = np.searchsorted(store.vocab, in_vocab)
        expected = np.bincount(groups[ranks], minlength=n_groups)
        assert np.array_equal(hist, expected)

    def test_from_parts_round_trip(self):
        sets = [np.array([1, 5, 9], dtype=np.int64), np.array([5], dtype=np.int64)]
        store = BitsetStore(sets)
        clone = BitsetStore.from_parts(store.vocab, store.matrix, store.lengths)
        query = np.array([5, 9, 77], dtype=np.int64)
        assert np.array_equal(
            clone.intersection_counts(query), store.intersection_counts(query)
        )
        assert clone.verify_against(sets) == []

    def test_from_parts_rejects_mismatched_shapes(self):
        sets = [np.array([1, 5, 9], dtype=np.int64)]
        store = BitsetStore(sets)
        with pytest.raises(ParameterError):
            BitsetStore.from_parts(
                store.vocab, store.matrix[:, :0], store.lengths
            )

    def test_nbytes_counts_matrix_and_vocab(self):
        sets = [np.arange(100, dtype=np.int64)]
        store = BitsetStore(sets)
        assert store.nbytes == store.matrix.nbytes + store.vocab.nbytes + store.lengths.nbytes


def _ecg_sets(n=40, length=64, seed=5):
    rng = np.random.default_rng(seed)
    series = [rng.normal(size=length).cumsum() for _ in range(n)]
    bound = Bound.of_database(series)
    grid = Grid.from_cell_sizes(bound, 2, 0.6)
    return series, grid, [transform(s, grid) for s in series]


class TestSearcherParity:
    """Bitset-assisted searchers answer bit-for-bit like scalar ones."""

    def test_naive_with_bitset_matches_scalar(self):
        _, grid, sets = _ecg_sets()
        plain = NaiveSearcher(sets)
        packed = NaiveSearcher(sets, bitset=BitsetStore(sets))
        for qi in (0, 7, 23):
            for k in (1, 3, 11):
                a = plain.query(sets[qi], k=k)
                b = packed.query(sets[qi], k=k)
                assert [(n.index, n.similarity) for n in a.neighbors] == [
                    (n.index, n.similarity) for n in b.neighbors
                ]

    def test_pruning_with_bitset_matches_scalar(self):
        _, grid, sets = _ecg_sets()
        plain = PruningSearcher(sets, grid, scale=5)
        packed = PruningSearcher(sets, grid, scale=5, bitset=BitsetStore(sets))
        for qi in (0, 11, 31):
            for k in (1, 4):
                a = plain.query(sets[qi], k=k)
                b = packed.query(sets[qi], k=k)
                assert [(n.index, n.similarity) for n in a.neighbors] == [
                    (n.index, n.similarity) for n in b.neighbors
                ]
                # The bounds (and hence the pruning account) are unchanged.
                assert a.stats.pruned == b.stats.pruned
                assert a.stats.exact_computations == b.stats.exact_computations

    def test_pruning_zone_histogram_identical_with_bitset(self):
        rng = np.random.default_rng(2)
        _, grid, sets = _ecg_sets()
        searcher = PruningSearcher(sets, grid, scale=6, bitset=BitsetStore(sets))
        spiked = rng.normal(size=64).cumsum()
        spiked[5] = 90.0  # out-of-bound: exercises the bincount remainder
        query = transform_query(spiked, grid)
        assert np.array_equal(
            searcher._query_zone_histogram(query),
            zone_histogram(query, grid, 6),
        )


class TestBatchKernelParity:
    """Forced kernel="bitset" matches "sparse" and "dense" bit-for-bit."""

    def _results(self, sets, queries, kernel, k=4):
        searcher = IndexedSearcher(sets)
        return batch_query(searcher, queries, k=k, kernel=kernel)

    def test_three_kernels_bit_identical(self):
        _, grid, sets = _ecg_sets(n=50)
        rng = np.random.default_rng(9)
        queries = [sets[i] for i in (0, 9, 33)] + [
            np.unique(rng.integers(0, grid.n_cells, size=30)).astype(np.int64),
            np.empty(0, dtype=np.int64),
        ]
        by_kernel = {
            kernel: self._results(sets, queries, kernel)
            for kernel in ("sparse", "dense", "bitset")
        }
        reference = by_kernel["sparse"]
        for kernel in ("dense", "bitset"):
            for ref, got in zip(reference, by_kernel[kernel]):
                assert [(n.index, n.similarity) for n in ref.neighbors] == [
                    (n.index, n.similarity) for n in got.neighbors
                ]

    def test_forced_bitset_records_choice(self):
        _, _, sets = _ecg_sets(n=30)
        engine = BatchQueryEngine(IndexedSearcher(sets), kernel="bitset")
        engine.query_batch([sets[0], sets[1]], k=2)
        assert set(engine.last_kernels) == {"bitset"}

    def test_injected_store_is_used(self):
        _, _, sets = _ecg_sets(n=20)
        store = BitsetStore(sets)
        engine = BatchQueryEngine(
            IndexedSearcher(sets), kernel="bitset", bitset_store=store
        )
        engine.query_batch([sets[3]], k=1)
        assert engine._bitset_store() is store

    def test_supplier_declining_builds_own_store(self):
        _, _, sets = _ecg_sets(n=10)
        engine = BatchQueryEngine(
            IndexedSearcher(sets), kernel="bitset", bitset_store=lambda: None
        )
        results = engine.query_batch([sets[0]], k=1)
        assert results[0].neighbors[0].index == 0
        assert isinstance(engine._bitset_store(), BitsetStore)

    def test_auto_prefers_bitset_when_gemm_is_gated(self):
        # A tiny vocabulary shared by every series makes the gathered
        # pair count explode.  With the GEMM workspace priced out by
        # ``dense_limit`` the packed matrix (64x smaller, one word wide
        # here) is the only dense-style option left, and the cost model
        # must pick it over the sparse gather.
        rng = np.random.default_rng(4)
        sets = [
            np.unique(rng.integers(0, 50, size=40)).astype(np.int64)
            for _ in range(300)
        ]
        engine = BatchQueryEngine(
            IndexedSearcher(sets), kernel="auto", dense_limit=10_000
        )
        engine.query_batch(sets[:32], k=3)
        assert set(engine.last_kernels) == {"bitset"}

    def test_auto_prefers_gemm_when_feasible(self):
        # Same dense-overlap shape, default gates: the float32 GEMM is
        # cheaper than the popcount sweep whenever its workspace fits
        # (one word covers 64 columns but costs more than 64 flops).
        rng = np.random.default_rng(4)
        sets = [
            np.unique(rng.integers(0, 50, size=40)).astype(np.int64)
            for _ in range(300)
        ]
        engine = BatchQueryEngine(IndexedSearcher(sets), kernel="auto")
        engine.query_batch(sets[:32], k=3)
        assert set(engine.last_kernels) == {"dense"}


class TestPlannerKernelRecording:
    def test_query_batch_records_kernel_on_plan(self, small_db, small_workload):
        small_db.query_batch(list(small_workload.queries[:4]), k=2, method="index")
        plans = small_db.planner.last_plans
        assert plans
        assert plans[0].kernel in {"sparse", "dense", "bitset"}

    def test_scalar_query_records_scalar_kernel(self, small_db, small_workload):
        small_db.query(small_workload.queries[0], k=1, method="pruning")
        assert [p.kernel for p in small_db.planner.last_plans] == ["scalar"]
