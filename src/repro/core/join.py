"""All-pairs similarity join over set representations.

STS3 reduces time series to sets under Jaccard similarity, which makes
the classic *set-similarity join* machinery (Chaudhuri/Ganti/Kaushik's
prefix filter; Xiao et al.'s PPJoin) directly applicable to time-series
data: find every pair of series with ``Jaccard ≥ threshold`` without
comparing all O(N²) pairs.

The implementation is the standard exact pipeline:

1. **Canonical token order** — cells are re-ranked by ascending global
   frequency, so prefixes hold the rarest (most selective) cells.
2. **Length filter** — ``J(A, B) ≥ t`` forces
   ``|B| ≥ ⌈t·|A|⌉``; sets are processed in ascending size so each
   probe only meets candidates within the valid size band.
3. **Prefix filter** — two sets can only reach the threshold if their
   ``(|S| − ⌈t·|S|⌉ + 1)``-prefixes share a token; an inverted index
   over prefixes generates the candidates.
4. **Verification** — surviving pairs get an exact merge count.

The result is exact: the tests compare against the brute-force O(N²)
join on randomized inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil

import numpy as np

from ..exceptions import ParameterError
from .jaccard import jaccard_from_intersection

__all__ = ["JoinPair", "similarity_join"]


@dataclass(frozen=True, order=True)
class JoinPair:
    """One joined pair (indices into the input list) and its similarity."""

    similarity: float
    first: int
    second: int


def _canonical_order(sets: list[np.ndarray]) -> list[np.ndarray]:
    """Re-map cell IDs to ranks by ascending global frequency.

    Rarest cells get the smallest ranks, so set prefixes (under sorted
    rank order) are maximally selective.
    """
    all_cells = np.concatenate(sets)
    cells, counts = np.unique(all_cells, return_counts=True)
    # rank by (frequency, cell) for determinism
    order = np.lexsort((cells, counts))
    rank = np.empty(len(cells), dtype=np.int64)
    rank[order] = np.arange(len(cells))
    # cells is sorted, so searchsorted maps each set's IDs to positions
    return [np.sort(rank[np.searchsorted(cells, s)]) for s in sets]


def similarity_join(
    sets: list[np.ndarray],
    threshold: float,
) -> list[JoinPair]:
    """All pairs ``(i, j)`` with ``Jaccard(sets[i], sets[j]) ≥ threshold``.

    Returns pairs sorted by descending similarity (ties by indices),
    with ``first < second`` position-wise in the *original* list.
    Empty sets never join (their similarity to anything non-empty is 0
    and pairing two empty sets is of no analytical interest).
    """
    if not 0.0 < threshold <= 1.0:
        raise ParameterError(f"threshold must be in (0, 1], got {threshold}")
    if len(sets) < 2:
        return []

    non_empty = [i for i, s in enumerate(sets) if len(s)]
    if len(non_empty) < 2:
        return []
    ranked = _canonical_order([sets[i] for i in non_empty])
    # ascending size order (the length filter's processing order)
    by_size = sorted(range(len(ranked)), key=lambda i: len(ranked[i]))

    # token -> list of (position-in-processing-order, set) whose prefix
    # contains the token
    prefix_index: dict[int, list[int]] = {}
    results: list[JoinPair] = []

    processed: list[int] = []
    for pos, local in enumerate(by_size):
        probe = ranked[local]
        size = len(probe)
        min_size = ceil(threshold * size - 1e-12)
        prefix_len = size - min_size + 1
        # gather candidates from the prefix index
        candidate_positions: set[int] = set()
        for token in probe[:prefix_len].tolist():
            candidate_positions.update(prefix_index.get(token, ()))
        for other_pos in candidate_positions:
            other_local = processed[other_pos]
            other = ranked[other_local]
            # length filter (processing order guarantees len(other) <= size)
            if len(other) < min_size:
                continue
            inter = int(np.intersect1d(probe, other, assume_unique=True).size)
            similarity = jaccard_from_intersection(size, len(other), inter)
            if similarity >= threshold - 1e-12:
                i = non_empty[local]
                j = non_empty[other_local]
                results.append(JoinPair(similarity, min(i, j), max(i, j)))
        # register this set's prefix for future probes
        for token in probe[:prefix_len].tolist():
            prefix_index.setdefault(token, []).append(pos)
        processed.append(local)

    results.sort(key=lambda p: (-p.similarity, p.first, p.second))
    return results
