# Convenience targets for the STS3 reproduction.

PYTHON ?= python

.PHONY: install test bench bench-full examples clean

install:
	$(PYTHON) setup.py develop

test:
	$(PYTHON) -m pytest tests/

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# paper-size workloads (slow; hours for the DTW-family baselines)
bench-full:
	REPRO_SCALE=1 $(PYTHON) -m pytest benchmarks/ --benchmark-only

examples:
	for script in examples/*.py; do echo "== $$script"; $(PYTHON) $$script || exit 1; done

clean:
	rm -rf build dist src/*.egg-info .pytest_cache benchmarks/results
	find . -name __pycache__ -type d -exec rm -rf {} +
