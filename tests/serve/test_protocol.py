"""Wire-format tests: framing, fidelity, and hostile inputs."""

from __future__ import annotations

import json
import struct

import numpy as np
import pytest

from repro.core.result import Neighbor, QueryResult, SearchStats
from repro.serve import (
    ERROR_CODES,
    HTTP_STATUS,
    MAX_FRAME_BYTES,
    ProtocolError,
    ServeError,
    pack_message,
    result_from_wire,
    result_to_wire,
    unpack_payload,
)


def _payload(frame: bytes) -> bytes:
    """Strip the outer length prefix of a packed frame."""
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    return frame[4:]


class TestFraming:
    def test_round_trip_header_and_arrays(self):
        arrays = [
            np.arange(12, dtype=np.float64).reshape(3, 4),
            np.array([1.5, -2.25], dtype=np.float64),
        ]
        frame = pack_message({"op": "query", "k": 3}, arrays)
        header, decoded = unpack_payload(_payload(frame))
        assert header["op"] == "query" and header["k"] == 3
        assert len(decoded) == 2
        for original, received in zip(arrays, decoded):
            assert received.dtype == original.dtype
            assert received.shape == original.shape
            np.testing.assert_array_equal(received, original)

    def test_blobs_are_bit_exact(self):
        # Adversarial float values: subnormals, negative zero, huge.
        series = np.array([5e-324, -0.0, 1e308, 1 / 3, np.pi])
        frame = pack_message({"op": "query"}, [series])
        _, (received,) = unpack_payload(_payload(frame))
        assert received.tobytes() == series.tobytes()

    def test_arrays_are_writable_copies(self):
        frame = pack_message({}, [np.zeros(4)])
        _, (received,) = unpack_payload(_payload(frame))
        received[0] = 1.0  # must not raise: not a read-only buffer view

    def test_non_contiguous_arrays_pack(self):
        strided = np.arange(20, dtype=np.float64)[::2]
        frame = pack_message({}, [strided])
        _, (received,) = unpack_payload(_payload(frame))
        np.testing.assert_array_equal(received, strided)

    def test_empty_message(self):
        header, arrays = unpack_payload(_payload(pack_message({"op": "ping"})))
        assert header["op"] == "ping"
        assert arrays == []

    def test_oversized_message_refused(self):
        with pytest.raises(ProtocolError, match="frame limit"):
            pack_message(
                {}, [np.zeros(MAX_FRAME_BYTES // 8 + 1, dtype=np.float64)]
            )


class TestHostilePayloads:
    def test_truncated_header_length(self):
        with pytest.raises(ProtocolError, match="missing header length"):
            unpack_payload(b"\x00")

    def test_header_claims_more_than_available(self):
        with pytest.raises(ProtocolError, match="truncated payload"):
            unpack_payload(struct.pack(">I", 100) + b"{}")

    def test_header_not_json(self):
        bad = b"not json"
        with pytest.raises(ProtocolError, match="not valid JSON"):
            unpack_payload(struct.pack(">I", len(bad)) + bad)

    def test_header_not_object(self):
        bad = b"[1,2]"
        with pytest.raises(ProtocolError, match="JSON object"):
            unpack_payload(struct.pack(">I", len(bad)) + bad)

    def test_truncated_array_blob(self):
        frame = pack_message({}, [np.zeros(8)])
        with pytest.raises(ProtocolError, match="truncated payload"):
            unpack_payload(_payload(frame)[:-8])

    def test_trailing_garbage(self):
        frame = pack_message({}, [np.zeros(8)])
        with pytest.raises(ProtocolError, match="trailing bytes"):
            unpack_payload(_payload(frame) + b"xx")

    def test_bad_array_descriptor(self):
        head = json.dumps({"arrays": [{"dtype": "nope", "shape": [1]}]})
        raw = struct.pack(">I", len(head)) + head.encode()
        with pytest.raises(ProtocolError, match="bad array descriptor"):
            unpack_payload(raw)


class TestResultSerialization:
    def _result(self) -> QueryResult:
        return QueryResult(
            neighbors=[
                Neighbor(similarity=0.8461538461538461, index=17),
                Neighbor(similarity=1 / 3, index=2),
            ],
            stats=SearchStats(
                candidates=40, exact_computations=9, pruned=31,
                filter_rounds=3, final_candidates=9,
            ),
            complete=False,
            skipped_segments=["segment-2"],
            degraded_reason="deadline",
        )

    def test_round_trip_is_lossless(self):
        original = self._result()
        # Through actual JSON text, as the wire does it.
        restored = result_from_wire(
            json.loads(json.dumps(result_to_wire(original)))
        )
        assert restored.neighbors == original.neighbors
        assert restored.stats == original.stats
        assert restored.complete is original.complete
        assert restored.skipped_segments == original.skipped_segments
        assert restored.degraded_reason == original.degraded_reason

    def test_similarities_survive_bit_exactly(self):
        original = self._result()
        restored = result_from_wire(
            json.loads(json.dumps(result_to_wire(original)))
        )
        for a, b in zip(original.neighbors, restored.neighbors):
            assert a.similarity.hex() == b.similarity.hex()

    def test_malformed_result_payload(self):
        with pytest.raises(ProtocolError, match="malformed result"):
            result_from_wire({"neighbors": []})


class TestErrorModel:
    def test_every_code_has_an_http_status(self):
        assert set(HTTP_STATUS) == set(ERROR_CODES)

    def test_serve_error_keeps_its_code(self):
        err = ServeError("BUSY", "queue full")
        assert err.code == "BUSY"
        assert "queue full" in str(err)

    def test_unknown_code_rejected(self):
        with pytest.raises(ValueError, match="unknown serve error code"):
            ServeError("TEAPOT", "nope")
