"""QueryService behavior: coalescing parity, admission control, drain.

The load-bearing contract (ISSUE acceptance): answers served through
the coalescing path are *bit-identical* to direct ``db.query`` calls —
including deadline-degraded and cache-hit answers.
"""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core import STS3Database
from repro.obs import get_registry
from repro.serve import QueryService, ServeError, ServiceConfig

from .conftest import ticking_clock


def run(coro):
    return asyncio.run(coro)


def assert_same_result(served, direct):
    """Bit-identical: neighbours (order, index, similarity bits) + stats."""
    assert len(served.neighbors) == len(direct.neighbors)
    for s, d in zip(served.neighbors, direct.neighbors):
        assert s.index == d.index
        assert s.similarity.hex() == d.similarity.hex()
    assert served.stats == direct.stats
    assert served.complete == direct.complete
    assert served.skipped_segments == direct.skipped_segments
    assert served.degraded_reason == direct.degraded_reason


def window_snapshot():
    return get_registry().histogram("sts3_server_window_queries").series_snapshot()


class TestCoalescing:
    def test_concurrent_queries_share_one_window(self, db, queries):
        direct = [db.query(q, k=5, method="index") for q in queries]
        service = QueryService(db, ServiceConfig(coalesce_window_ms=100.0))

        async def scenario():
            try:
                return await asyncio.gather(
                    *(service.query(q, k=5, method="index") for q in queries)
                )
            finally:
                await service.drain()
                service.close()

        served = run(scenario())
        for s, d in zip(served, direct):
            assert_same_result(s, d)
        # All twelve queries coalesced into a single engine batch.
        windows = window_snapshot()
        assert windows["count"] == 1
        assert windows["sum"] == len(queries)

    def test_mixed_signatures_split_into_windows(self, db, queries):
        direct_k3 = [db.query(q, k=3, method="index") for q in queries[:4]]
        direct_k7 = [db.query(q, k=7, method="index") for q in queries[4:8]]
        service = QueryService(db, ServiceConfig(coalesce_window_ms=100.0))

        async def scenario():
            try:
                k3 = [service.query(q, k=3, method="index") for q in queries[:4]]
                k7 = [service.query(q, k=7, method="index") for q in queries[4:8]]
                return await asyncio.gather(*k3, *k7)
            finally:
                await service.drain()
                service.close()

        served = run(scenario())
        for s, d in zip(served, direct_k3 + direct_k7):
            assert_same_result(s, d)
        # k is answer-affecting, so the two groups must not mix.
        assert window_snapshot()["count"] == 2

    def test_lone_query_uses_scalar_path(self, db, queries):
        direct = db.query(queries[0], k=5, method="index")
        service = QueryService(db, ServiceConfig(coalesce_window_ms=5.0))

        async def scenario():
            try:
                return await service.query(queries[0], k=5, method="index")
            finally:
                await service.drain()
                service.close()

        assert_same_result(run(scenario()), direct)
        windows = window_snapshot()
        assert windows["count"] == 1 and windows["sum"] == 1

    def test_max_coalesce_flushes_early(self, db, queries):
        service = QueryService(
            db, ServiceConfig(coalesce_window_ms=10_000.0, max_coalesce=4)
        )

        async def scenario():
            try:
                # A window that would wait 10s flushes at 4 occupants,
                # so this completes promptly.
                return await asyncio.wait_for(
                    asyncio.gather(
                        *(service.query(q, k=5, method="index")
                          for q in queries[:4])
                    ),
                    timeout=5.0,
                )
            finally:
                await service.drain(grace_s=5.0)
                service.close()

        served = run(scenario())
        assert len(served) == 4
        assert window_snapshot()["sum"] == 4

    def test_window_disabled_still_parity(self, db, queries):
        direct = [db.query(q, k=5, method="index") for q in queries[:3]]
        service = QueryService(db, ServiceConfig(coalesce_window_ms=0.0))

        async def scenario():
            try:
                return await asyncio.gather(
                    *(service.query(q, k=5, method="index")
                      for q in queries[:3])
                )
            finally:
                await service.drain()
                service.close()

        for s, d in zip(run(scenario()), direct):
            assert_same_result(s, d)
        assert window_snapshot()["count"] == 0  # no windows opened


class TestDeadlines:
    def test_degraded_answer_is_bit_identical(self):
        # 60 ms per clock tick against a 100 ms budget degrades the
        # plan deterministically; served and direct runs see identical
        # clock sequences, so they must degrade identically.
        from .conftest import make_multiseg_db

        db, query = make_multiseg_db()
        db.planner.clock = ticking_clock(0.06)
        direct = db.query(query, k=5, method="index", deadline_ms=100)
        assert direct.complete is False  # the scenario really degrades

        db.planner.clock = ticking_clock(0.06)
        service = QueryService(db, ServiceConfig(coalesce_window_ms=100.0))

        async def scenario():
            try:
                return await service.query(
                    query, k=5, method="index", deadline_ms=100
                )
            finally:
                await service.drain()
                service.close()

        served = run(scenario())
        assert_same_result(served, direct)
        # Deadline queries bypass the micro-batching window.
        assert window_snapshot()["count"] == 0

    def test_queue_wait_counts_against_budget(self):
        # The serving layer anchors the budget at arrival
        # (deadline_start); a stamp far in the clock's past must burn
        # the whole budget even though the engine itself is instant.
        from .conftest import make_multiseg_db

        db, query = make_multiseg_db()
        db.planner.clock = ticking_clock(0.0001)
        fresh = db.query(
            query, k=5, method="index", deadline_ms=150, deadline_start=None
        )
        assert fresh.complete is True  # fast engine, fresh anchor: fine
        db.planner.clock = ticking_clock(0.0001)
        stale = db.query(
            query, k=5, method="index", deadline_ms=150, deadline_start=-10.0
        )
        # Anchored 10 s in the past: over budget before planning, so
        # everything after the always-run first segment is skipped.
        assert stale.complete is False
        assert stale.degraded_reason == "deadline"
        assert len(stale.skipped_segments) == 2


class TestCacheHits:
    def test_cached_answer_is_bit_identical(self, workload, queries):
        db = STS3Database(
            workload.database, sigma=3, epsilon=0.5, cache_bytes=4 << 20
        )
        direct = db.query(queries[0], k=5, method="index")  # warms the cache
        assert db.result_cache is not None
        service = QueryService(db, ServiceConfig(coalesce_window_ms=5.0))

        async def scenario():
            try:
                first = await service.query(queries[0], k=5, method="index")
                second = await service.query(queries[0], k=5, method="index")
                return first, second
            finally:
                await service.drain()
                service.close()

        first, second = run(scenario())
        assert_same_result(first, direct)
        assert_same_result(second, direct)

    def test_coalesced_batch_also_hits_cache(self, workload, queries):
        db = STS3Database(
            workload.database, sigma=3, epsilon=0.5, cache_bytes=4 << 20
        )
        direct = [db.query(q, k=5, method="index") for q in queries[:4]]
        service = QueryService(db, ServiceConfig(coalesce_window_ms=100.0))

        async def scenario():
            try:
                return await asyncio.gather(
                    *(service.query(q, k=5, method="index")
                      for q in queries[:4])
                )
            finally:
                await service.drain()
                service.close()

        for s, d in zip(run(scenario()), direct):
            assert_same_result(s, d)


class TestAdmission:
    def test_busy_when_queue_full(self, db, queries):
        service = QueryService(
            db, ServiceConfig(coalesce_window_ms=10_000.0, max_pending=1)
        )

        async def scenario():
            first = asyncio.ensure_future(
                service.query(queries[0], k=5, method="index")
            )
            await asyncio.sleep(0)  # let it park in the open window
            with pytest.raises(ServeError) as excinfo:
                await service.query(queries[1], k=5, method="index")
            assert excinfo.value.code == "BUSY"
            await service.drain(grace_s=5.0)  # flushes the open window
            await first
            service.close()

        run(scenario())
        rejected = get_registry().counter("sts3_server_rejected_total")
        assert rejected.value(reason="queue_full") == 1

    def test_rate_limit_per_client(self, db, queries):
        service = QueryService(
            db,
            ServiceConfig(
                coalesce_window_ms=0.0, rate_limit=1.0, rate_burst=2
            ),
        )
        service.clock = lambda: 0.0  # frozen: buckets never refill

        async def scenario():
            try:
                await service.query(queries[0], k=5, client="alice")
                await service.query(queries[1], k=5, client="alice")
                with pytest.raises(ServeError) as excinfo:
                    await service.query(queries[2], k=5, client="alice")
                assert excinfo.value.code == "RATE_LIMITED"
                # An unrelated client has its own bucket.
                await service.query(queries[3], k=5, client="bob")
            finally:
                service._draining = True
                service.close()

        run(scenario())
        rejected = get_registry().counter("sts3_server_rejected_total")
        assert rejected.value(reason="rate_limited") == 1

    def test_bucket_refills_with_time(self, db, queries):
        service = QueryService(
            db,
            ServiceConfig(
                coalesce_window_ms=0.0, rate_limit=10.0, rate_burst=1
            ),
        )
        clock = ticking_clock(0.5)  # 0.5 s between admissions
        service.clock = clock

        async def scenario():
            try:
                # burst of 1, but 0.5 s at 10 tokens/s refills plenty.
                for q in queries[:3]:
                    await service.query(q, k=5, client="alice")
            finally:
                service._draining = True
                service.close()

        run(scenario())  # no ServeError: refill kept pace

    def test_batch_costs_its_size_in_tokens(self, db, queries):
        service = QueryService(
            db,
            ServiceConfig(
                coalesce_window_ms=0.0, rate_limit=1.0, rate_burst=4
            ),
        )
        service.clock = lambda: 0.0

        async def scenario():
            try:
                await service.query_batch(queries[:3], k=5, client="alice")
                with pytest.raises(ServeError) as excinfo:
                    await service.query_batch(queries[:3], k=5, client="alice")
                assert excinfo.value.code == "RATE_LIMITED"
            finally:
                service._draining = True
                service.close()

        run(scenario())


class TestDrain:
    def test_drain_flushes_open_windows(self, db, queries):
        service = QueryService(
            db, ServiceConfig(coalesce_window_ms=10_000.0)
        )

        async def scenario():
            parked = [
                asyncio.ensure_future(service.query(q, k=5, method="index"))
                for q in queries[:3]
            ]
            await asyncio.sleep(0)
            finished = await service.drain(grace_s=10.0)
            assert finished is True
            results = await asyncio.gather(*parked)
            service.close()
            return results

        results = run(scenario())
        assert len(results) == 3
        direct = [db.query(q, k=5, method="index") for q in queries[:3]]
        for s, d in zip(results, direct):
            assert_same_result(s, d)

    def test_draining_rejects_new_work(self, db, queries):
        service = QueryService(db, ServiceConfig(coalesce_window_ms=0.0))

        async def scenario():
            await service.drain()
            with pytest.raises(ServeError) as excinfo:
                await service.query(queries[0], k=5)
            assert excinfo.value.code == "DRAINING"
            service.close()

        run(scenario())
        rejected = get_registry().counter("sts3_server_rejected_total")
        assert rejected.value(reason="draining") == 1


class TestBookkeeping:
    def test_request_metrics(self, db, queries):
        service = QueryService(db, ServiceConfig(coalesce_window_ms=0.0))

        async def scenario():
            try:
                await service.query(queries[0], k=5)
                await service.query_batch(queries[:2], k=5)
                await service.insert(queries[0])
                await service.verify()
            finally:
                await service.drain()
                service.close()

        run(scenario())
        requests = get_registry().counter("sts3_server_requests_total")
        assert requests.value(op="query", status="ok") == 1
        assert requests.value(op="batch", status="ok") == 1
        assert requests.value(op="insert", status="ok") == 1
        assert requests.value(op="verify", status="ok") == 1
        assert get_registry().gauge("sts3_server_inflight").value() == 0

    def test_insert_reports_destination(self, db, queries):
        service = QueryService(db, ServiceConfig(coalesce_window_ms=0.0))

        async def scenario():
            try:
                return await service.insert(queries[0])
            finally:
                await service.drain()
                service.close()

        report = run(scenario())
        assert report["n_series"] == len(db)
        assert report["path"] in ("direct", "buffered")
        assert report["sealed_segment"] in (True, False)

    def test_batch_engine_size_histogram(self, db, queries):
        # The coalescing hook in core/batch.py: every engine invocation
        # records how many queries it amortized.
        db.query_batch(list(queries[:6]), k=5, method="index")
        sizes = get_registry().histogram(
            "sts3_batch_engine_queries"
        ).series_snapshot()
        assert sizes["count"] == 1
        assert sizes["sum"] == 6
