"""Named synthetic stand-ins for the paper's evaluation datasets.

The efficiency and comprehensive-comparison experiments name six UCR
datasets (Table 1 and Table 7): CBF, CinC_ECG_torso (CET),
ElectricDevices (ED), ChlorineConcentration (CC),
NonInvasiveFatalECG_Thorax1 (NIFE), plus the accuracy-scenario datasets
discussed in Section 7.2.2.  This registry maps each name to a synthetic
generator with the *paper's* sizes (query count, series count, length,
class count); a ``scale`` factor shrinks the instance counts so the
whole suite runs on a laptop while keeping lengths and class structure
intact (``scale=1.0`` reproduces paper-size datasets).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..exceptions import DatasetError, ParameterError
from ..types import ClassificationDataset, Workload
from . import ucr_like
from .ecg import ECGConfig, ecg_stream
from .normalize import z_normalize
from .ucr_like import template_classes

__all__ = ["DatasetSpec", "dataset_names", "load_dataset", "paper_workload"]


@dataclass(frozen=True)
class DatasetSpec:
    """Paper-reported shape of a dataset plus its synthetic factory."""

    name: str
    n_train: int
    n_test: int
    length: int
    n_classes: int
    factory: Callable[[int, int, int, int, int], ClassificationDataset]

    def build(self, scale: float, seed: int) -> ClassificationDataset:
        if scale <= 0:
            raise ParameterError(f"scale must be positive, got {scale}")
        train_pc = max(2, round(self.n_train * scale / self.n_classes))
        test_pc = max(2, round(self.n_test * scale / self.n_classes))
        return self.factory(train_pc, test_pc, self.length, self.n_classes, seed)


def _ecg_template_factory(beat_periods: list[int]) -> Callable:
    """Classes are ECG streams with distinct beat periods (CET/NIFE-like)."""

    def factory(
        train_pc: int, test_pc: int, length: int, n_classes: int, seed: int
    ) -> ClassificationDataset:
        rng = np.random.default_rng(seed)
        templates = []
        for i in range(n_classes):
            period = beat_periods[i % len(beat_periods)]
            config = ECGConfig(beat_period=period, noise_std=0.0)
            stream = ecg_stream(length, seed=int(rng.integers(0, 2**31)), config=config)
            templates.append(z_normalize(stream))
        return template_classes(
            "ecg-template",
            templates,
            train_pc,
            test_pc,
            seed=int(rng.integers(0, 2**31)),
            shift_std=length * 0.01,
            warp_strength=0.02,
            noise_std=0.12,
        )

    return factory


def _cbf_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.cbf(train_pc, test_pc, length=length, seed=seed)


def _device_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.device_profiles(
        n_classes=n_classes,
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


def _shapes_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.smooth_outlines(
        n_classes=n_classes,
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


def _noisy_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.noisy_templates(
        n_classes=n_classes,
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


def _two_close_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.two_close_classes(
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


def _synthetic_control_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.synthetic_control(
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


def _two_patterns_factory(train_pc, test_pc, length, n_classes, seed):
    return ucr_like.two_patterns(
        n_train_per_class=train_pc,
        n_test_per_class=test_pc,
        length=length,
        seed=seed,
    )


#: Paper dataset shapes (Table 1, Table 7, Table 8 rows we reproduce).
_SPECS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("CBF", 900, 30, 128, 3, _cbf_factory),
        DatasetSpec("CET", 1380, 40, 1639, 4, _ecg_template_factory([140, 180, 230, 300])),
        DatasetSpec("ED", 8926, 7711, 96, 7, _device_factory),
        DatasetSpec("CC", 3840, 467, 166, 3, _shapes_factory),
        DatasetSpec("NIFE", 1965, 1800, 750, 42, _ecg_template_factory([60, 75, 90, 110, 130, 160])),
        DatasetSpec("Device", 250, 250, 720, 3, _device_factory),
        DatasetSpec("Shapes", 600, 600, 512, 60, _shapes_factory),
        DatasetSpec("Noisy", 214, 1896, 1024, 39, _noisy_factory),
        DatasetSpec("TwoClose", 370, 1000, 2709, 2, _two_close_factory),
        DatasetSpec("synthetic_control", 300, 300, 60, 6, _synthetic_control_factory),
        DatasetSpec("Two_Patterns", 1000, 4000, 128, 4, _two_patterns_factory),
        # Broader Table 8 coverage: each row mapped to the scenario
        # family that matches the real dataset's regime (see the
        # factory choice), at the paper-reported shapes.
        DatasetSpec("50words", 450, 455, 270, 50, _shapes_factory),
        DatasetSpec("Adiac", 390, 391, 176, 37, _shapes_factory),
        DatasetSpec("Beef", 30, 30, 470, 5, _shapes_factory),
        DatasetSpec("Car", 60, 60, 577, 4, _shapes_factory),
        DatasetSpec("Computers", 250, 250, 720, 2, _device_factory),
        DatasetSpec("ECG200", 100, 100, 96, 2, _ecg_template_factory([80, 110])),
        DatasetSpec("ECG5000", 500, 4500, 140, 5, _ecg_template_factory([60, 80, 100, 120, 140])),
        DatasetSpec("FISH", 175, 175, 463, 7, _shapes_factory),
        DatasetSpec("Herring", 64, 64, 512, 2, _shapes_factory),
        DatasetSpec("LargeKitchenAppliances", 375, 375, 720, 3, _device_factory),
        DatasetSpec("Phoneme", 214, 1896, 1024, 39, _noisy_factory),
        DatasetSpec("RefrigerationDevices", 375, 375, 720, 3, _device_factory),
        DatasetSpec("ScreenType", 375, 375, 720, 3, _device_factory),
        DatasetSpec("ShapesAll", 600, 600, 512, 60, _shapes_factory),
        DatasetSpec("SmallKitchenAppliances", 375, 375, 720, 3, _device_factory),
        DatasetSpec("SwedishLeaf", 500, 625, 128, 15, _shapes_factory),
        DatasetSpec("yoga", 300, 3000, 426, 2, _two_close_factory),
    )
}


def dataset_names() -> list[str]:
    """Names accepted by :func:`load_dataset`."""
    return sorted(_SPECS)


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> ClassificationDataset:
    """Build the named synthetic stand-in at the given size ``scale``.

    ``scale=1.0`` matches the paper's train/test counts; smaller values
    shrink instance counts proportionally (lengths and class counts are
    never scaled, since the algorithms' behaviour depends on them).
    """
    spec = _SPECS.get(name)
    if spec is None:
        raise DatasetError(f"unknown dataset {name!r}; known: {dataset_names()}")
    return spec.build(scale, seed)


def paper_workload(name: str, scale: float = 1.0, seed: int = 0) -> Workload:
    """Dataset as a search workload, per the paper's Section 7.4.6 rule.

    "Each dataset has two sub-datasets and we chose the one containing
    fewer time series as the query and the other as the database."
    Labels are dropped; only the series matter for a search workload.
    """
    dataset = load_dataset(name, scale=scale, seed=seed)
    parts = sorted(
        (dataset.train.series, dataset.test.series), key=len, reverse=True
    )
    return Workload(
        database=list(parts[0]),
        queries=list(parts[1]),
        name=name,
        metadata={"scale": scale, "length": dataset.length},
    )
