"""Unit and property tests for the Jaccard similarity (Section 3.3)."""

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.jaccard import (
    intersection_size,
    jaccard,
    jaccard_distance,
    jaccard_from_intersection,
    size_upper_bound,
)

id_sets = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: np.unique(np.asarray(xs, dtype=np.int64)))


def _set(*values):
    return np.asarray(sorted(values), dtype=np.int64)


class TestIntersectionSize:
    def test_disjoint(self):
        assert intersection_size(_set(1, 2), _set(3, 4)) == 0

    def test_partial(self):
        assert intersection_size(_set(1, 2, 3), _set(2, 3, 4)) == 2

    def test_identical(self):
        assert intersection_size(_set(5, 6, 7), _set(5, 6, 7)) == 3

    def test_empty(self):
        assert intersection_size(_set(), _set(1)) == 0


class TestJaccard:
    def test_paper_example(self):
        """Figure 2(a): sets (3,4,5,6,9,13) vs (6,7,9,10,13) → 3/8."""
        a = _set(3, 4, 5, 6, 9, 13)
        b = _set(6, 7, 9, 10, 13)
        assert jaccard(a, b) == 3 / 8

    def test_identical_sets(self):
        assert jaccard(_set(1, 2, 3), _set(1, 2, 3)) == 1.0

    def test_disjoint_sets(self):
        assert jaccard(_set(1), _set(2)) == 0.0

    def test_both_empty_defined_as_one(self):
        assert jaccard(_set(), _set()) == 1.0

    def test_one_empty(self):
        assert jaccard(_set(), _set(1, 2)) == 0.0

    def test_from_intersection_consistent(self):
        a, b = _set(1, 2, 3, 4), _set(3, 4, 5)
        inter = intersection_size(a, b)
        assert jaccard(a, b) == jaccard_from_intersection(len(a), len(b), inter)

    @given(id_sets, id_sets)
    def test_range(self, a, b):
        assert 0.0 <= jaccard(a, b) <= 1.0

    @given(id_sets, id_sets)
    def test_symmetry(self, a, b):
        assert jaccard(a, b) == jaccard(b, a)

    @given(id_sets)
    def test_self_similarity_is_one(self, a):
        assert jaccard(a, a) == 1.0

    @given(id_sets, id_sets, id_sets)
    def test_distance_triangle_inequality(self, a, b, c):
        """1 − Jaccard is a metric (Levandowsky & Winter 1971)."""
        dab = jaccard_distance(a, b)
        dbc = jaccard_distance(b, c)
        dac = jaccard_distance(a, c)
        assert dac <= dab + dbc + 1e-12


class TestSizeUpperBound:
    def test_bound_holds(self):
        a, b = _set(1, 2, 3, 4), _set(3, 4)
        assert jaccard(a, b) <= size_upper_bound(len(a), len(b))

    def test_equal_sizes_bound_is_one(self):
        assert size_upper_bound(5, 5) == 1.0

    def test_empty_sets(self):
        assert size_upper_bound(0, 0) == 1.0
        assert size_upper_bound(0, 3) == 0.0

    @given(id_sets, id_sets)
    def test_always_admissible(self, a, b):
        assert jaccard(a, b) <= size_upper_bound(len(a), len(b)) + 1e-12
