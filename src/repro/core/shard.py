"""Sharded multi-process execution engine (docs/sharding.md).

:class:`ShardedDatabase` partitions a series collection across N
persistent worker processes by consistent hashing on series id.  Each
worker owns a shard-local :class:`~repro.core.database.STS3Database`
opened with ``mmap=True`` (cold start is a manifest parse; payload
bytes fault in on first touch and are page-cache shared with every
other process mapping the same archive).  The parent holds no series
at all — it routes, scatters, and merges.

The design lifts the planner's per-segment contract one level, exactly
as ROADMAP item 1 describes:

- **Scatter**: every query goes to all shards (data is partitioned,
  queries are not) over the pipe RPC of :mod:`repro.core.rpc`, which
  reuses the serving layer's frame format — queries travel as raw
  float64 blobs, results as repr-round-trip JSON.
- **Gather**: per-shard top-k answers merge through the same
  deterministic :class:`~repro.core.heap.KnnHeap` ``(similarity desc,
  id asc)`` ordering the planner uses across segments, so on a static
  corpus the sharded engine is **bit-identical** to the single-process
  engine: all shards share one base grid (computed over the full
  collection, exactly as ``Segment.build`` would), disjoint partitions
  searched exactly and merged deterministically are the global top-k.
- **Inserts** route by hash on their assigned global id and ride the
  owning shard's own WAL; each insert is journaled alongside a
  ``note`` record carrying its global id, which is how a restarted
  worker rebuilds its local→global id table without the parent
  persisting anything per-insert.
- **Failure**: a dead worker surfaces as an RPC EOF/timeout; the query
  *degrades* (``complete=False``, the missing partition named in
  ``skipped_shards``, mirroring the deadline ladder's contract) while
  the engine restarts the worker via
  :func:`~repro.core.persistence.recover_database` — WAL replay means
  no acknowledged write is lost.

Archive layout — a directory, not a file::

    <dir>/shard-manifest.json     # shard count, hash seed, params
    <dir>/shard-00.sts3           # standard v4 archive (+ id extras)
    <dir>/shard-00.sts3.wal/      # that shard's WAL generations
    <dir>/shard-01.sts3
    ...

Every ``shard-NN.sts3`` is a plain v4 archive: ``sts3 verify`` /
``sts3 inspect`` work on each shard file unchanged.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import threading
import time
from bisect import bisect_right
from pathlib import Path

import numpy as np

from .. import faults
from ..exceptions import ParameterError, ReproError
from ..obs import get_registry, span
from ..serve.protocol import result_to_wire
from ..types import as_series
from .grid import Bound
from .heap import KnnHeap
from .result import Neighbor, QueryResult, SearchStats
from .rpc import RpcError, WorkerDied, recv_frame, send_frame, send_packed
from ..serve.protocol import pack_message
from .segment import grid_for_bound

__all__ = [
    "DEFAULT_HASH_SEED",
    "DEFAULT_VNODES",
    "HashRing",
    "ShardError",
    "ShardedDatabase",
    "shard_manifest_path",
]

_METHODS = ("naive", "index", "pruning", "approximate", "minhash", "auto")

MANIFEST_NAME = "shard-manifest.json"
MANIFEST_FORMAT = "sts3-sharded"
#: v2 adds replication state: ``replicas`` (followers per shard),
#: ``epochs`` (per-shard fencing epoch, bumped *before* a promotion is
#: attempted), and ``wal_dirs`` (per-shard live WAL directory name —
#: None means the default ``<file>.wal``; after a failover it names the
#: promoted follower's mirror).  v1 manifests open fine: the fields
#: default on read.
MANIFEST_VERSION = 2

#: seed of the hash ring when none is given ("SW" again, like the
#: protocol port); recorded in the shard manifest so reopening a
#: sharded archive always rebuilds the identical ring.
DEFAULT_HASH_SEED = 0x5753

#: virtual nodes per shard.  64 keeps the worst shard within a few
#: percent of the mean on realistic collection sizes while the ring
#: stays small enough to rebuild in microseconds.
DEFAULT_VNODES = 64

_MASK64 = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


class ShardError(ReproError):
    """A sharded-engine operation failed (routing, worker, manifest)."""


def shard_manifest_path(directory: str | Path) -> Path:
    """The manifest file that marks ``directory`` as a sharded archive."""
    return Path(directory) / MANIFEST_NAME


def _splitmix64(x: int) -> int:
    """The splitmix64 finalizer: integer in, well-mixed 64-bit out.

    Pure integer arithmetic — no Python ``hash()`` (salted per process)
    and no floats — so placement is identical across runs, platforms,
    and interpreter versions.  The routing property test pins golden
    values to keep it that way.
    """
    x = (x + _GOLDEN) & _MASK64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _MASK64
    return x ^ (x >> 31)


class HashRing:
    """Seeded consistent-hash ring mapping series ids to shards.

    Each shard contributes ``vnodes`` points; a series id hashes to a
    position and is owned by the first ring point clockwise of it.
    Consistent hashing (rather than ``id % n``) keeps placement stable
    under future resharding: growing from N to N+1 shards moves only
    the keys falling into the new shard's arcs.
    """

    def __init__(
        self,
        n_shards: int,
        seed: int = DEFAULT_HASH_SEED,
        vnodes: int = DEFAULT_VNODES,
    ):
        if n_shards < 1:
            raise ParameterError(f"need >= 1 shard, got {n_shards}")
        if vnodes < 1:
            raise ParameterError(f"need >= 1 vnode per shard, got {vnodes}")
        self.n_shards = int(n_shards)
        self.seed = int(seed) & _MASK64
        self.vnodes = int(vnodes)
        self._key_salt = _splitmix64(self.seed ^ 0xC0FFEE)
        points: list[tuple[int, int]] = []
        for shard in range(self.n_shards):
            stream = _splitmix64(self.seed ^ (shard + 1))
            for vnode in range(self.vnodes):
                points.append((_splitmix64(stream + vnode), shard))
        points.sort()
        self._positions = [position for position, _ in points]
        self._owners = [shard for _, shard in points]

    def owner(self, series_id: int) -> int:
        """The shard owning ``series_id`` (deterministic, total)."""
        key = _splitmix64((int(series_id) & _MASK64) ^ self._key_salt)
        slot = bisect_right(self._positions, key) % len(self._owners)
        return self._owners[slot]

    def partition(self, series_ids) -> list[list[int]]:
        """Split ``series_ids`` into per-shard id lists (order kept)."""
        parts: list[list[int]] = [[] for _ in range(self.n_shards)]
        for series_id in series_ids:
            parts[self.owner(series_id)].append(series_id)
        return parts


# -- the shard-local id table -------------------------------------------


class _ShardIdTable:
    """Local index → global id mapping for one shard.

    A shard database's global index order is "stored segments, then
    update buffer" — and a *direct* insert lands before the buffered
    tail, so one flat list in arrival order would drift.  Two lists
    mirror the database's structural transitions exactly: direct
    inserts append to ``stored``, buffered ones to ``buffered``, and a
    seal moves the buffered block to the end of ``stored`` — the same
    move the catalog makes with the series themselves.
    """

    __slots__ = ("stored", "buffered")

    def __init__(self, stored=None, buffered=None):
        self.stored: list[int] = [int(i) for i in (stored or [])]
        self.buffered: list[int] = [int(i) for i in (buffered or [])]

    def __len__(self) -> int:
        return len(self.stored) + len(self.buffered)

    def insert(self, series_id: int, path: str, sealed: bool) -> None:
        if path == "direct":
            self.stored.append(int(series_id))
        else:
            self.buffered.append(int(series_id))
            if sealed:
                self.seal()

    def seal(self) -> None:
        self.stored.extend(self.buffered)
        self.buffered = []

    def global_id(self, local_index: int) -> int:
        if local_index < len(self.stored):
            return self.stored[local_index]
        return self.buffered[local_index - len(self.stored)]

    def all_ids(self) -> list[int]:
        return self.stored + self.buffered

    def max_id(self) -> int:
        ids = self.all_ids()
        return max(ids) if ids else -1

    def to_extras(self) -> dict:
        return {"stored": list(self.stored), "buffered": list(self.buffered)}

    @classmethod
    def from_extras(cls, extras: dict) -> "_ShardIdTable":
        return cls(extras.get("stored", []), extras.get("buffered", []))


# -- the worker process --------------------------------------------------


def _replay_id_table(shard_id, table: _ShardIdTable, replayed) -> None:
    """Re-apply observed WAL records to the id table.

    ``replayed`` is the ``(record, info)`` stream an
    :func:`~repro.core.persistence.apply_wal_records` observer
    collected.  Shared by worker recovery and replication followers —
    both rebuild the same local→global mapping from the same journal.
    """
    where = f"shard {shard_id}" if shard_id is not None else "follower"
    pending_id: int | None = None
    for record, info in replayed:
        op = record["op"]
        if op == "note":
            pending_id = int(record["id"])
        elif op == "insert":
            if pending_id is None:
                raise ShardError(
                    f"{where}: WAL insert at seq "
                    f"{record['seq']} has no preceding id note"
                )
            table.insert(pending_id, info["path"], info["sealed"])
            pending_id = None
        elif op == "flush" and info and info["sealed"]:
            table.seal()
        # compact/merge preserve stored order: nothing to track


def _shard_worker_main(conn, options: dict) -> None:
    """One shard's serving loop: recover the shard, answer the pipe.

    Runs in a dedicated process.  Startup recovers the shard archive
    (``mmap=True``: manifest parse now, payload bytes on first touch)
    and replays its WAL tail, rebuilding the id table from the
    checkpointed extras plus the journaled ``note`` records; then the
    loop serves one request at a time until shutdown or EOF (parent
    gone).  A :class:`~repro.faults.SimulatedCrash` at the
    ``shard.worker.request`` fault point exits the process hard —
    that is the deterministic stand-in for ``kill -9``.
    """
    shard_id = options["shard_id"]
    # A terminal Ctrl-C delivers SIGINT to the whole foreground process
    # group; shutdown is the parent's call (a shutdown frame or pipe
    # EOF), so workers must not die to the shared signal first.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    epoch = int(options.get("epoch", 0))
    try:
        from .persistence import recover_database

        replayed: list[tuple[dict, dict | None]] = []
        db = recover_database(
            options["archive"],
            wal_dir=options.get("wal_dir"),
            fsync_batch=options.get("fsync_batch"),
            mmap=True,
            observer=lambda record, info: replayed.append((record, info)),
        )
        table = _ShardIdTable.from_extras(
            getattr(db, "archive_extras", {}).get("shard", {})
        )
        _replay_id_table(shard_id, table, replayed)
        if len(table) != len(db):
            raise ShardError(
                f"shard {shard_id}: id table covers {len(table)} series, "
                f"database holds {len(db)}"
            )
    except BaseException as exc:  # noqa: BLE001 - report, then die
        try:
            send_frame(
                conn,
                {"op": "ready", "status": "error", "error": f"{exc}"},
            )
        except Exception:
            pass
        conn.close()
        return

    send_frame(
        conn,
        {"op": "ready", "status": "ok", "epoch": epoch, **_worker_status(db, table)},
    )

    try:
        while True:
            try:
                header, arrays = recv_frame(conn, None)
            except WorkerDied:
                break  # parent closed its end
            try:
                faults.fault_point("shard.worker.request")
            except faults.SimulatedCrash:
                os._exit(17)  # the injected kill -9
            op = header.get("op")
            try:
                if op == "shutdown":
                    send_frame(conn, {"op": "ack", "epoch": epoch})
                    break
                reply, reply_arrays = _worker_handle(
                    db, table, options, header, arrays
                )
                # every reply carries the worker's fencing epoch; the
                # parent rejects stale ones (zombie-primary protection)
                reply.setdefault("epoch", epoch)
                send_frame(conn, reply, reply_arrays)
            except Exception as exc:  # noqa: BLE001 - answer, keep serving
                send_frame(conn, {"op": "error", "error": f"{exc}", "epoch": epoch})
    finally:
        db.close()
        conn.close()


def _worker_status(db, table: _ShardIdTable) -> dict:
    return {
        "n_series": len(db),
        "stored": len(table.stored),
        "buffered": len(table.buffered),
        "segments": len(db.catalog.segments),
        "max_id": table.max_id(),
        "wal_lag": (
            db.wal.records_since_checkpoint if db.wal is not None else 0
        ),
        "wal_seq": db.wal.last_seq if db.wal is not None else db.wal_seq,
        "checkpoint_seq": (
            db.wal.checkpoint_seq if db.wal is not None else db.wal_seq
        ),
    }


def _worker_handle(db, table, options, header, arrays):
    """Dispatch one request; returns ``(response_header, response_arrays)``."""
    op = header.get("op")
    if op == "ping":
        return {"op": "pong", **_worker_status(db, table)}, ()
    if op == "status":
        return {"op": "status", **_worker_status(db, table)}, ()
    if op == "verify":
        return {"op": "verify", "problems": db.verify_integrity()}, ()
    if op == "query":
        results = db.query_batch(
            list(arrays),
            k=int(header["k"]),
            method=header.get("method", "auto"),
            scale=header.get("scale"),
            max_scale=header.get("max_scale"),
            deadline_ms=header.get("deadline_ms"),
        )
        wired = []
        for result in results:
            # Translate shard-local indices to global ids here, where
            # the table lives; the parent merges on ids alone.
            result.neighbors = [
                Neighbor(similarity=n.similarity, index=table.global_id(n.index))
                for n in result.neighbors
            ]
            wired.append(result_to_wire(result))
        return {"op": "result", "results": wired}, ()
    if op == "insert":
        series_id = int(header["id"])
        prepared = db._prepare(arrays[0])
        # The id note precedes the insert record, so a replayed WAL
        # prefix always pairs them (a torn tail can orphan a note,
        # never an insert).
        if db.wal is not None:
            db.wal.append("note", id=series_id)
        buffered_before = len(db.buffer)
        rebuilds_before = db.rebuild_count
        db._insert_prepared(prepared)
        if len(db.buffer) == buffered_before + 1:
            path, sealed = "buffered", False
        elif db.rebuild_count > rebuilds_before:
            path, sealed = "buffered", True
        else:
            path, sealed = "direct", False
        table.insert(series_id, path, sealed)
        return {
            "op": "ack",
            "id": series_id,
            "path": path,
            "sealed_segment": sealed,
            **_worker_status(db, table),
        }, ()
    if op == "checkpoint":
        db.checkpoint(
            options["archive"], extras={"shard": table.to_extras()}
        )
        return {"op": "ack", **_worker_status(db, table)}, ()
    raise ShardError(f"unknown shard RPC op {op!r}")


# -- the parent-side engine ----------------------------------------------


class _WorkerHandle:
    """Parent-side view of one live worker: process + pipe + counters."""

    __slots__ = ("shard_id", "process", "conn", "n_series")

    def __init__(self, shard_id, process, conn, n_series):
        self.shard_id = shard_id
        self.process = process
        self.conn = conn
        self.n_series = n_series


class _PlannerShim:
    """Duck-typed stand-in for ``db.planner`` (the serving layer reads
    ``db.planner.clock`` to anchor arrival-time deadlines)."""

    def __init__(self):
        self.clock = time.monotonic


class ShardedDatabase:
    """Scatter-gather k-NN over N shard worker processes.

    Construct with :meth:`build` (fresh, from raw series),
    :meth:`from_database` (re-partition an existing single-process
    database), or :meth:`open` (an existing sharded archive
    directory).  The instance is a context manager; :meth:`close`
    shuts the workers down.

    Thread-safe but serialized: one RPC conversation runs at a time
    (the serving layer coalesces concurrent requests into batches
    before they reach the engine, so the lock is not the bottleneck).
    """

    def __init__(
        self,
        directory: str | Path,
        manifest: dict,
        rpc_timeout: float = 30.0,
        fsync_batch: int = 1,
        start: bool = True,
        replicas: int | None = None,
        read_preference: str = "primary",
        max_replica_lag: int = 0,
    ):
        self.directory = Path(directory)
        self.manifest = manifest
        self.n_shards = int(manifest["shards"])
        # v1 manifests predate replication: default its fields in one
        # place so every constructor path sees a v2-shaped manifest.
        manifest.setdefault("replicas", 0)
        manifest.setdefault("epochs", [0] * self.n_shards)
        manifest.setdefault("wal_dirs", [None] * self.n_shards)
        self.ring = HashRing(
            self.n_shards, int(manifest["hash_seed"]), int(manifest["vnodes"])
        )
        self.rpc_timeout = float(rpc_timeout)
        if read_preference not in ("primary", "replica", "nearest"):
            raise ParameterError(
                f"unknown read preference {read_preference!r}; "
                "one of ('primary', 'replica', 'nearest')"
            )
        #: default endpoint policy for reads (docs/replication.md):
        #: ``primary`` never touches followers; ``replica`` stripes the
        #: batch across caught-up followers (primary only as fallback);
        #: ``nearest`` stripes across primary and followers alike.
        self.read_preference = read_preference
        #: bounded staleness: a follower more than this many records
        #: behind its primary is not an eligible read endpoint.
        self.max_replica_lag = int(max_replica_lag)
        #: default 1 — a sharded insert is acknowledged only once its
        #: WAL records are fsynced, which is what makes the worker-kill
        #: contract ("no acked write lost") unconditional.  Raise it to
        #: trade the per-insert fsync for the single-process engine's
        #: batched-cadence semantics.
        self.fsync_batch = int(fsync_batch)
        self.planner = _PlannerShim()
        self.maintenance = None
        self._workers: list[_WorkerHandle | None] = [None] * self.n_shards
        #: highest WAL seq each primary has acknowledged — the yardstick
        #: follower lag is measured against.
        self._primary_seq: list[int] = [0] * self.n_shards
        #: each primary's checkpoint watermark.  A follower applied
        #: below it can never catch up by shipping (the generations it
        #: needs were retired) — the gap is invisible to an idle WAL
        #: tail, so shipping consults this to force the re-bootstrap.
        self._primary_ckpt: list[int] = [0] * self.n_shards
        self._next_id = 0
        self._lock = threading.RLock()
        self._closed = False
        available = mp.get_all_start_methods()
        self._ctx = mp.get_context("fork" if "fork" in available else None)
        n_replicas = (
            int(manifest["replicas"]) if replicas is None else int(replicas)
        )
        self._replicas = None
        if start:
            failures = []
            for shard_id in range(self.n_shards):
                try:
                    self._spawn_worker(shard_id)
                except ShardError as exc:
                    failures.append(str(exc))
            if failures:
                self.close()
                raise ShardError(
                    "sharded open failed: " + "; ".join(failures)
                )
            if n_replicas > 0:
                from .replication import ReplicaSet

                self._replicas = ReplicaSet(self, n_replicas)
                self._replicas.start_all()

    # -- construction ---------------------------------------------------

    @classmethod
    def build(
        cls,
        series,
        n_shards: int,
        directory: str | Path,
        sigma: float,
        epsilon,
        normalize: bool = True,
        value_padding: float = 0.0,
        buffer_capacity: int = 32,
        default_scale: int = 6,
        default_max_scale: int = 4,
        hash_seed: int = DEFAULT_HASH_SEED,
        vnodes: int = DEFAULT_VNODES,
        prepared: bool = False,
        rpc_timeout: float = 30.0,
        fsync_batch: int = 1,
        replicas: int = 0,
        read_preference: str = "primary",
        max_replica_lag: int = 0,
    ) -> "ShardedDatabase":
        """Partition ``series`` into a sharded archive and open it.

        All shards share one **base grid**, computed over the *whole*
        collection exactly as a single-process build would
        (``Bound.of_database`` + the σ/ε grid) — that shared reference
        frame is the bit-identity contract: per-shard similarities are
        computed under the same grid the unsharded engine uses, so the
        gathered top-k matches it bit for bit on the static corpus.

        ``prepared=True`` marks ``series`` as already normalized
        (:meth:`from_database`'s path — z-normalization is not bitwise
        idempotent, so it must never run twice).
        """
        from ..data.normalize import z_normalize
        from .database import STS3Database
        from .persistence import save_database

        series = [as_series(s) for s in series]
        if not series:
            raise ParameterError("cannot shard an empty collection")
        if normalize and not prepared:
            series = [z_normalize(s) for s in series]
        epsilon = (
            tuple(float(e) for e in epsilon)
            if isinstance(epsilon, (tuple, list))
            else float(epsilon)
        )
        bound = Bound.of_database(series, value_padding=value_padding)
        grid = grid_for_bound(bound, sigma, epsilon)
        ring = HashRing(n_shards, hash_seed, vnodes)
        parts = ring.partition(range(len(series)))
        empty = [i for i, part in enumerate(parts) if not part]
        if empty:
            raise ParameterError(
                f"shards {empty} would own no series ({len(series)} series "
                f"across {n_shards} shards); use fewer shards or more series"
            )
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        for shard_id, ids in enumerate(parts):
            shard_db = STS3Database.from_segments(
                [([series[i] for i in ids], grid)],
                sigma=sigma,
                epsilon=epsilon,
                normalize=normalize,
                value_padding=value_padding,
                buffer_capacity=buffer_capacity,
                default_scale=default_scale,
                default_max_scale=default_max_scale,
            )
            save_database(
                shard_db,
                directory / cls.shard_file(shard_id),
                extras={"shard": {"stored": list(ids), "buffered": []}},
            )
        manifest = {
            "format": MANIFEST_FORMAT,
            "version": MANIFEST_VERSION,
            "shards": int(n_shards),
            "hash_seed": int(hash_seed),
            "vnodes": int(vnodes),
            "series_total": len(series),
            "next_id": len(series),
            "files": [cls.shard_file(i) for i in range(n_shards)],
            "replicas": int(replicas),
            "epochs": [0] * int(n_shards),
            "wal_dirs": [None] * int(n_shards),
            "params": {
                "sigma": float(sigma),
                "epsilon": list(epsilon) if isinstance(epsilon, tuple) else epsilon,
                "epsilon_is_tuple": isinstance(epsilon, tuple),
                "normalize": bool(normalize),
                "value_padding": float(value_padding),
                "buffer_capacity": int(buffer_capacity),
                "default_scale": int(default_scale),
                "default_max_scale": int(default_max_scale),
            },
        }
        cls._write_manifest(directory, manifest)
        return cls(
            directory,
            manifest,
            rpc_timeout=rpc_timeout,
            fsync_batch=fsync_batch,
            read_preference=read_preference,
            max_replica_lag=max_replica_lag,
        )

    @classmethod
    def from_database(
        cls, db, n_shards: int, directory: str | Path, **options
    ) -> "ShardedDatabase":
        """Re-partition an existing single-process database.

        Series come out already prepared (stored series are normalized
        at insert time), so they partition as-is.  Note the shards are
        built under a *fresh* shared base grid over the full collection
        — for a single-segment source database that grid is identical
        to the source's and answers are bit-identical; a multi-segment
        source is re-gridded (the same thing ``compact()`` would do).
        """
        series = db.catalog.all_series() + list(db.buffer.series)
        return cls.build(
            series,
            n_shards,
            directory,
            sigma=db.sigma,
            epsilon=db.epsilon,
            normalize=db.normalize,
            value_padding=db.value_padding,
            buffer_capacity=db.buffer.capacity,
            default_scale=db.default_scale,
            default_max_scale=db.default_max_scale,
            prepared=True,
            **options,
        )

    @classmethod
    def open(
        cls,
        directory: str | Path,
        rpc_timeout: float = 30.0,
        fsync_batch: int = 1,
        replicas: int | None = None,
        read_preference: str = "primary",
        max_replica_lag: int = 0,
    ) -> "ShardedDatabase":
        """Open a sharded archive directory: spawn + recover every worker.

        Each worker replays its own WAL tail, so opening after a crash
        *is* recovery — there is no separate recover entry point.
        ``replicas`` overrides the manifest's follower count for this
        open (None keeps the manifest's).
        """
        manifest = cls.read_manifest(directory)
        return cls(
            directory,
            manifest,
            rpc_timeout=rpc_timeout,
            fsync_batch=fsync_batch,
            replicas=replicas,
            read_preference=read_preference,
            max_replica_lag=max_replica_lag,
        )

    @staticmethod
    def shard_file(shard_id: int) -> str:
        return f"shard-{shard_id:02d}.sts3"

    @staticmethod
    def read_manifest(directory: str | Path) -> dict:
        path = shard_manifest_path(directory)
        if not path.exists():
            raise ShardError(f"no shard manifest at {path}")
        try:
            manifest = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ShardError(f"unreadable shard manifest at {path}: {exc}") from exc
        if manifest.get("format") != MANIFEST_FORMAT:
            raise ShardError(f"{path} is not a sharded STS3 archive manifest")
        return manifest

    @staticmethod
    def _write_manifest(directory: Path, manifest: dict) -> None:
        from .persistence import _atomic_write

        data = json.dumps(manifest, indent=2).encode()
        _atomic_write(
            shard_manifest_path(directory),
            lambda fh: fh.write(data),
            "shard-manifest",
        )

    def shard_wal_dir(self, shard_id: int) -> Path:
        """This shard's *live* WAL directory (the one its primary writes).

        The default is the archive-derived ``shard-NN.sts3.wal``; after
        a failover the manifest points it at the promoted follower's
        mirror instead — the mirror *is* the shard's history now.
        """
        name = self.manifest["wal_dirs"][shard_id]
        if name:
            return self.directory / name
        return self.directory / (self.manifest["files"][shard_id] + ".wal")

    # -- worker lifecycle -----------------------------------------------

    def _spawn_worker(self, shard_id: int) -> dict:
        """Start (or restart) one worker; returns its ready status."""
        archive = self.directory / self.manifest["files"][shard_id]
        options = {
            "shard_id": shard_id,
            "archive": str(archive),
            "wal_dir": str(self.shard_wal_dir(shard_id)),
            "fsync_batch": self.fsync_batch,
            "epoch": int(self.manifest["epochs"][shard_id]),
        }
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shard_worker_main,
            args=(child_conn, options),
            name=f"sts3-shard-{shard_id}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        try:
            ready, _ = recv_frame(parent_conn, max(self.rpc_timeout, 30.0))
        except RpcError as exc:
            parent_conn.close()
            process.join(timeout=5.0)
            raise ShardError(f"shard {shard_id} failed to start: {exc}") from exc
        if ready.get("status") != "ok":
            parent_conn.close()
            process.join(timeout=5.0)
            raise ShardError(
                f"shard {shard_id} failed to start: {ready.get('error')}"
            )
        self._workers[shard_id] = _WorkerHandle(
            shard_id, process, parent_conn, int(ready["n_series"])
        )
        self._next_id = max(self._next_id, int(ready["max_id"]) + 1)
        self._primary_seq[shard_id] = int(ready.get("wal_seq", 0))
        self._primary_ckpt[shard_id] = int(ready.get("checkpoint_seq", 0))
        self._set_live_gauge()
        return ready

    def _epoch_ok(self, shard_id: int, reply: dict) -> bool:
        """Fencing check on a primary's reply; False means zombie.

        A worker that was presumed dead and replaced answers with the
        epoch it was spawned under; the manifest's epoch moved past it
        when its successor was promoted, so its late acks must not be
        believed (the write is only durable if the *current* primary
        has it).
        """
        seen = reply.get("epoch")
        if seen is None or int(seen) == int(self.manifest["epochs"][shard_id]):
            return True
        get_registry().counter(
            "sts3_fenced_replies_total",
            "primary replies rejected for a stale fencing epoch",
        ).inc(shard=str(shard_id))
        return False

    def _set_live_gauge(self) -> None:
        get_registry().gauge(
            "sts3_shard_workers_live", "shard worker processes currently serving"
        ).set(sum(1 for h in self._workers if h is not None))

    def _reap_worker(self, shard_id: int) -> None:
        handle = self._workers[shard_id]
        if handle is None:
            return
        self._workers[shard_id] = None
        try:
            handle.conn.close()
        except OSError:
            pass
        if handle.process.is_alive():
            handle.process.kill()
        handle.process.join(timeout=5.0)
        self._set_live_gauge()

    def _restart_worker(self, shard_id: int) -> dict | None:
        """Reap + respawn one worker; None when the restart itself fails."""
        with span("shard.restart", shard=shard_id):
            self._reap_worker(shard_id)
            get_registry().counter(
                "sts3_shard_restarts_total", "shard worker restarts, by shard"
            ).inc(shard=str(shard_id))
            try:
                return self._spawn_worker(shard_id)
            except ShardError:
                return None

    def _worker_failed(self, shard_id: int, error: str) -> dict | None:
        get_registry().counter(
            "sts3_shard_failures_total", "shard RPC failures, by shard and kind"
        ).inc(shard=str(shard_id), kind=error)
        if self._replicas is not None:
            # With followers standing by, a dead primary is a failover,
            # not an outage: promote the freshest caught-up follower
            # and keep answering complete.  Restart-from-archive is the
            # fallback when no follower can be promoted.
            ready = self._failover(shard_id)
            if ready is not None:
                return ready
        return self._restart_worker(shard_id)

    def _failover(self, shard_id: int) -> dict | None:
        """Promote the freshest follower to primary; None when impossible.

        Order matters for safety: the dead primary is reaped first, the
        fencing epoch is bumped *and persisted* second (from here on no
        reply from the old epoch is believed anywhere), and only then
        is the follower caught up from the dead primary's on-disk WAL
        and promoted.  An acked write was fsynced before its ack, so
        the catch-up ship reads it — zero acked-write loss.
        """
        if self._replicas is None:
            return None
        with span("replication.promote", shard=shard_id):
            try:
                faults.fault_point("replication.promote")
            except faults.SimulatedCrash:
                return None  # promotion aborted; caller falls back
            self._reap_worker(shard_id)
            candidate = self._replicas.freshest(shard_id)
            if candidate is None:
                return None
            epoch = int(self.manifest["epochs"][shard_id]) + 1
            self.manifest["epochs"][shard_id] = epoch
            self._write_manifest(self.directory, self.manifest)
            reply = self._replicas.promote(shard_id, candidate, epoch)
            if reply is None:
                return None
            self._replicas.detach(shard_id, candidate.replica_id)
            self._workers[shard_id] = _WorkerHandle(
                shard_id, candidate.process, candidate.conn, int(reply["n_series"])
            )
            self.manifest["wal_dirs"][shard_id] = candidate.mirror.name
            self._write_manifest(self.directory, self.manifest)
            self._next_id = max(self._next_id, int(reply["max_id"]) + 1)
            self._primary_seq[shard_id] = int(
                reply.get("wal_seq", reply["applied_seq"])
            )
            self._primary_ckpt[shard_id] = int(
                reply.get("checkpoint_seq", self._primary_ckpt[shard_id])
            )
            get_registry().counter(
                "sts3_failovers_total", "follower promotions to primary, by shard"
            ).inc(shard=str(shard_id))
            # surviving followers now tail the new primary's WAL (the
            # mirror); their watermarks carry over — shipped frames are
            # identical bytes regardless of which primary wrote them
            from .wal import WalTail

            new_dir = self.shard_wal_dir(shard_id)
            for handle in self._replicas.live(shard_id):
                handle.tail = WalTail(new_dir, from_seq=handle.applied_seq)
            self._set_live_gauge()
            return reply

    def promote(self, shard_id: int) -> dict:
        """Manually promote a follower of ``shard_id`` (runbook op).

        Drains replication (ships every journaled record), shuts the
        current primary down cleanly, and runs the same failover path
        an unplanned death takes — so drills and real failovers
        exercise identical code.  Raises :class:`ShardError` when no
        follower can be promoted (the old primary is then restarted).
        """
        with self._lock:
            self._require_open()
            if self._replicas is None:
                raise ShardError("no replicas configured; nothing to promote")
            handle = self._workers[shard_id]
            if handle is not None:
                self._replicas.ship(shard_id)
                try:
                    send_frame(handle.conn, {"op": "shutdown"})
                    recv_frame(handle.conn, 5.0)
                except RpcError:
                    pass
                self._reap_worker(shard_id)
            ready = self._failover(shard_id)
            if ready is None:
                restarted = self._restart_worker(shard_id)
                raise ShardError(
                    f"shard {shard_id}: no follower could be promoted"
                    + ("" if restarted else " and the primary failed to restart")
                )
            return ready

    def _ensure_worker(self, shard_id: int) -> _WorkerHandle:
        handle = self._workers[shard_id]
        if handle is None:
            self._restart_worker(shard_id)
            handle = self._workers[shard_id]
        if handle is None:
            raise ShardError(f"shard {shard_id} is down and failed to restart")
        return handle

    def kill_worker(self, shard_id: int) -> None:
        """SIGKILL one worker (fault drills; see docs/sharding.md).

        The handle is left in place: the next RPC touching the shard
        observes the EOF, degrades its answer, and restarts the worker
        — exactly the path an unplanned death takes.
        """
        handle = self._workers[shard_id]
        if handle is not None and handle.process.is_alive():
            handle.process.kill()
            handle.process.join(timeout=5.0)

    # -- queries ---------------------------------------------------------

    def __len__(self) -> int:
        return sum(h.n_series for h in self._workers if h is not None)

    def query(
        self,
        series,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
        read_preference: str | None = None,
    ) -> QueryResult:
        """Scatter one k-NN query to every shard and gather the merge.

        Same semantics as :meth:`STS3Database.query`, with
        ``Neighbor.index`` carrying *global series ids* (for a built
        collection, its position in the build order).  On a shard
        failure the answer degrades instead of raising: the missing
        partition is named in ``result.skipped_shards`` (with replicas
        configured, failover is attempted first and the query retried
        against the promoted follower).
        """
        return self.query_batch(
            [series], k=k, method=method, scale=scale, max_scale=max_scale,
            deadline_ms=deadline_ms, deadline_start=deadline_start,
            read_preference=read_preference,
        )[0]

    def query_batch(
        self,
        queries,
        k: int = 1,
        method: str = "auto",
        scale: int | None = None,
        max_scale: int | None = None,
        deadline_ms: float | None = None,
        deadline_start: float | None = None,
        read_preference: str | None = None,
    ) -> list[QueryResult]:
        """Scatter a query batch to all shards; gather per-query merges.

        The batch is the unit of shard parallelism: every worker runs
        the whole batch over its partition (the vectorized index kernel
        where applicable) while the others do the same, so N shards cut
        wall-clock by ~N on CPU-bound batches — the lever
        ``benchmarks/bench_shard.py`` gates.

        ``read_preference`` (default: the engine's) widens the endpoint
        set per shard: under ``replica``/``nearest`` the batch is
        *striped* across that shard's caught-up endpoints (query ``i``
        to endpoint ``i % E``), so followers add read throughput the
        way shards do — more processes each searching the same
        partition for a disjoint slice of the batch.  A caught-up
        follower answers bit-identically to its primary (same archive,
        same applied WAL, same grid), so striping preserves the merge
        contract; any endpoint failure falls the whole shard back to
        its primary.
        """
        if method not in _METHODS:
            raise ParameterError(f"unknown method {method!r}; one of {_METHODS}")
        if not queries:
            return []
        pref = self.read_preference if read_preference is None else read_preference
        if pref not in ("primary", "replica", "nearest"):
            raise ParameterError(
                f"unknown read preference {pref!r}; "
                "one of ('primary', 'replica', 'nearest')"
            )
        arrays = [
            np.ascontiguousarray(as_series(q), dtype=np.float64) for q in queries
        ]
        remaining_ms = deadline_ms
        if deadline_ms is not None and deadline_start is not None:
            elapsed = (self.planner.clock() - deadline_start) * 1000.0
            remaining_ms = max(deadline_ms - elapsed, 0.0)
        header = {
            "op": "query",
            "k": int(k),
            "method": method,
            "scale": scale,
            "max_scale": max_scale,
            "deadline_ms": remaining_ms,
        }
        # Queries are not partitioned: every shard receives the whole
        # batch, so the frame is packed once and the same bytes fan out.
        packed = pack_message(header, arrays)
        requests = get_registry().counter(
            "sts3_shard_requests_total", "shard RPCs issued, by op and shard"
        )
        with self._lock:
            self._require_open()
            if pref != "primary" and self._replicas is not None:
                responses, failed = self._striped_scatter(
                    arrays, header, pref, requests
                )
                results = self._merge(len(arrays), k, responses, failed)
                get_registry().counter(
                    "sts3_shard_queries_total",
                    "queries answered by the sharded engine",
                ).inc(len(arrays), method=method)
                if failed:
                    get_registry().counter(
                        "sts3_shard_skipped_total",
                        "queries answered with at least one shard missing",
                    ).inc(len(arrays))
                return results
            sent: list[int] = []
            failed: list[int] = []
            responses: list[tuple[int, dict]] = []
            with span("shard.scatter", shards=self.n_shards, queries=len(arrays)):
                for shard_id in range(self.n_shards):
                    handle = self._workers[shard_id]
                    if handle is None and self._restart_worker(shard_id) is None:
                        if self._failover(shard_id) is None:
                            failed.append(shard_id)
                            continue
                    handle = self._workers[shard_id]
                    try:
                        send_packed(handle.conn, packed)
                        requests.inc(op="query", shard=str(shard_id))
                        sent.append(shard_id)
                    except WorkerDied:
                        reply = self._recover_and_retry(
                            shard_id, "send-eof", packed, requests
                        )
                        if reply is not None:
                            responses.append((shard_id, reply))
                        else:
                            failed.append(shard_id)
            with span("shard.gather", shards=len(sent)):
                for shard_id in sent:
                    handle = self._workers[shard_id]
                    try:
                        reply, _ = recv_frame(handle.conn, self.rpc_timeout)
                    except RpcError as exc:
                        kind = (
                            "timeout" if not isinstance(exc, WorkerDied) else "eof"
                        )
                        reply = self._recover_and_retry(
                            shard_id, kind, packed, requests
                        )
                        if reply is None:
                            failed.append(shard_id)
                            continue
                    if not self._epoch_ok(shard_id, reply):
                        failed.append(shard_id)
                        continue
                    if reply.get("op") == "error":
                        raise ShardError(
                            f"shard {shard_id} query failed: {reply.get('error')}"
                        )
                    responses.append((shard_id, reply))
            results = self._merge(len(arrays), k, responses, failed)
        get_registry().counter(
            "sts3_shard_queries_total", "queries answered by the sharded engine"
        ).inc(len(arrays), method=method)
        if failed:
            get_registry().counter(
                "sts3_shard_skipped_total",
                "queries answered with at least one shard missing",
            ).inc(len(arrays))
        return results

    def _recover_and_retry(self, shard_id, kind, packed, requests) -> dict | None:
        """Handle a mid-query worker failure; retry only after failover.

        Without replicas the contract is unchanged from the original
        sharded engine — the query degrades while the worker restarts
        in the background.  With replicas, by the time
        :meth:`_worker_failed` returns the freshest follower has been
        promoted, so the same query bytes are re-sent once and the
        answer stays complete.
        """
        ready = self._worker_failed(shard_id, kind)
        if ready is None or self._replicas is None:
            return None
        handle = self._workers[shard_id]
        if handle is None:
            return None
        try:
            send_packed(handle.conn, packed)
            requests.inc(op="query", shard=str(shard_id))
            reply, _ = recv_frame(handle.conn, self.rpc_timeout)
        except RpcError:
            return None
        if reply.get("op") != "result" or not self._epoch_ok(shard_id, reply):
            return None
        return reply

    def _striped_scatter(self, arrays, header, pref, requests):
        """Fan one batch across each shard's eligible read endpoints.

        Query ``i`` of a shard's sub-batch goes to endpoint ``i % E``
        (``replica``: the caught-up followers, primary only as
        fallback; ``nearest``: primary and followers alike), and every
        send completes before any receive, so endpoints overlap both
        within and across shards.  Replies are re-knit into original
        query order; any endpoint failure falls the whole shard back
        to one full-batch primary query.  Returns the ``(responses,
        failed)`` shape :meth:`_merge` consumes.
        """
        plan: list[tuple[int, list[dict]]] = []
        failed: list[int] = []
        responses: list[tuple[int, dict]] = []
        for shard_id in range(self.n_shards):
            primary = self._workers[shard_id]
            if primary is None:
                self._restart_worker(shard_id)
                primary = self._workers[shard_id]
            eligible = self._replicas.endpoints(shard_id, self.max_replica_lag)
            if pref == "replica" and eligible:
                endpoints: list = list(eligible)
            else:  # nearest, or replica with no caught-up follower
                endpoints = ([primary] if primary is not None else []) + list(
                    eligible
                )
            if not endpoints:
                if self._failover(shard_id) is None:
                    failed.append(shard_id)
                    continue
                endpoints = [self._workers[shard_id]]
            n_endpoints = len(endpoints)
            entries = []
            for j, endpoint in enumerate(endpoints):
                indices = list(range(j, len(arrays), n_endpoints))
                if not indices:
                    continue
                entries.append(
                    {
                        "endpoint": endpoint,
                        "indices": indices,
                        "packed": pack_message(
                            header, [arrays[i] for i in indices]
                        ),
                        "sent": False,
                    }
                )
            plan.append((shard_id, entries))
        with span(
            "shard.scatter",
            shards=len(plan),
            queries=len(arrays),
            striped=True,
        ):
            for shard_id, entries in plan:
                for entry in entries:
                    try:
                        send_packed(entry["endpoint"].conn, entry["packed"])
                        entry["sent"] = True
                        requests.inc(op="query", shard=str(shard_id))
                    except RpcError:
                        pass
        with span("shard.gather", shards=len(plan), striped=True):
            for shard_id, entries in plan:
                slots: list = [None] * sum(len(e["indices"]) for e in entries)
                healthy = True
                for entry in entries:
                    endpoint = entry["endpoint"]
                    if not entry["sent"]:
                        healthy = False
                        self._endpoint_failed(shard_id, endpoint)
                        continue
                    try:
                        reply, _ = recv_frame(endpoint.conn, self.rpc_timeout)
                    except RpcError:
                        healthy = False
                        self._endpoint_failed(shard_id, endpoint)
                        continue
                    if reply.get("op") != "result":
                        healthy = False
                        continue
                    if isinstance(endpoint, _WorkerHandle) and not self._epoch_ok(
                        shard_id, reply
                    ):
                        healthy = False
                        continue
                    for slot, wire in zip(entry["indices"], reply["results"]):
                        slots[slot] = wire
                if healthy and all(s is not None for s in slots):
                    responses.append((shard_id, {"results": slots}))
                    continue
                reply = self._full_primary_query(shard_id, header, arrays, requests)
                if reply is None:
                    failed.append(shard_id)
                else:
                    responses.append((shard_id, reply))
        return responses, failed

    def _endpoint_failed(self, shard_id, endpoint) -> None:
        """A read endpoint broke mid-query: recover it for next time."""
        if isinstance(endpoint, _WorkerHandle):
            self._worker_failed(shard_id, "eof")
        else:
            self._replicas.reap(shard_id, endpoint.replica_id)
            self._replicas.spawn(shard_id, endpoint.replica_id)

    def _full_primary_query(self, shard_id, header, arrays, requests) -> dict | None:
        """Fallback: the primary answers the whole batch for one shard."""
        handle = self._workers[shard_id]
        if handle is None:
            if (
                self._restart_worker(shard_id) is None
                and self._failover(shard_id) is None
            ):
                return None
            handle = self._workers[shard_id]
        packed = pack_message(header, arrays)
        try:
            send_packed(handle.conn, packed)
            requests.inc(op="query", shard=str(shard_id))
            reply, _ = recv_frame(handle.conn, self.rpc_timeout)
        except RpcError as exc:
            kind = "timeout" if not isinstance(exc, WorkerDied) else "eof"
            return self._recover_and_retry(shard_id, kind, packed, requests)
        if reply.get("op") != "result" or not self._epoch_ok(shard_id, reply):
            return None
        return reply

    def _merge(
        self,
        n_queries: int,
        k: int,
        responses: list[tuple[int, dict]],
        failed: list[int],
    ) -> list[QueryResult]:
        """The deterministic gather: per-query KnnHeap over shard answers.

        Workers return global ids, and :class:`KnnHeap`'s ``(similarity
        desc, id asc)`` order is consideration-order independent, so
        the merged top-k equals the single-process answer whenever
        every shard reported (the bit-identity contract).

        Merges straight off the wire dicts (``[id, similarity]`` pairs
        and stats counters) rather than materializing a
        :class:`QueryResult` per shard per query — the gather runs on
        the parent's critical path, after the parallel part is over.
        """
        total = len(self)
        k_eff = max(1, min(int(k), total)) if total else int(k)
        ordered = sorted(responses)
        skipped_shards = [f"shard-{shard_id}" for shard_id in sorted(set(failed))]
        merged: list[QueryResult] = []
        for qi in range(n_queries):
            heap = KnnHeap(k_eff)
            consider = heap.consider
            counters = [0, 0, 0, 0, 0]
            complete = not skipped_shards
            reasons: set[str] = set(("shard",) if skipped_shards else ())
            skipped_segments: list[str] = []
            for shard_id, reply in ordered:
                wire = reply["results"][qi]
                for index, similarity in wire["neighbors"]:
                    consider(similarity, index)
                stats = wire["stats"]
                counters[0] += stats["candidates"]
                counters[1] += stats["exact_computations"]
                counters[2] += stats["pruned"]
                counters[3] += stats["filter_rounds"]
                counters[4] += stats["final_candidates"]
                if not wire["complete"]:
                    complete = False
                    if wire["degraded_reason"]:
                        reasons.update(wire["degraded_reason"].split("+"))
                skipped_segments.extend(
                    f"shard-{shard_id}:{name}"
                    for name in wire["skipped_segments"]
                )
            merged.append(
                QueryResult(
                    neighbors=heap.neighbors(),
                    stats=SearchStats(*counters),
                    complete=complete,
                    skipped_segments=skipped_segments,
                    degraded_reason="+".join(sorted(reasons)) or None,
                    skipped_shards=list(skipped_shards),
                )
            )
        return merged

    # -- updates ----------------------------------------------------------

    def insert(self, series) -> dict:
        """Insert one series; routes to the shard owning its new id.

        Returns a routing report ``{"id", "shard", "path",
        "sealed_segment", "n_series", "buffered"}``.  The acknowledged
        insert is durable in the owning shard's WAL (id note + series
        record, fsynced at the shard's cadence — every record at the
        default ``fsync_batch=1``), so a worker killed right after the
        ack recovers the write on restart; an insert whose RPC *fails*
        reconciles on restart instead: if the journaled write survived
        it is committed, otherwise it never happened.
        """
        arr = np.ascontiguousarray(as_series(series), dtype=np.float64)
        with self._lock:
            self._require_open()
            series_id = self._next_id
            shard_id = self.ring.owner(series_id)
            handle = self._ensure_worker(shard_id)
            expected = handle.n_series
            get_registry().counter(
                "sts3_shard_requests_total", "shard RPCs issued, by op and shard"
            ).inc(op="insert", shard=str(shard_id))
            try:
                send_frame(handle.conn, {"op": "insert", "id": series_id}, [arr])
                reply, _ = recv_frame(handle.conn, self.rpc_timeout)
            except RpcError as exc:
                kind = "timeout" if not isinstance(exc, WorkerDied) else "eof"
                ready = self._worker_failed(shard_id, kind)
                # At-least-once reconciliation: the worker journals the
                # insert before acking, so a death in the ack window can
                # leave the write durable.  The restarted worker's WAL
                # replay tells us which world we are in.
                if ready is not None and int(ready["n_series"]) == expected + 1:
                    self._next_id = series_id + 1
                    self._primary_seq[shard_id] = int(ready.get("wal_seq", 0))
                    if self._replicas is not None:
                        self._replicas.ship(shard_id)
                    return {
                        "id": series_id,
                        "shard": shard_id,
                        "path": "recovered",
                        "sealed_segment": False,
                        "n_series": len(self),
                        "buffered": int(ready["buffered"]),
                    }
                raise ShardError(
                    f"insert failed on shard {shard_id}: {exc}"
                ) from exc
            if not self._epoch_ok(shard_id, reply):
                raise ShardError(
                    f"insert ack on shard {shard_id} rejected: stale fencing "
                    f"epoch (a newer primary was promoted; the write is not "
                    f"acknowledged)"
                )
            if reply.get("op") == "error":
                raise ShardError(
                    f"insert failed on shard {shard_id}: {reply.get('error')}"
                )
            handle.n_series = int(reply["n_series"])
            self._next_id = series_id + 1
            self._primary_seq[shard_id] = int(reply.get("wal_seq", 0))
            # the write is durable on the primary; stream it out while
            # the engine lock is still held, so follower lag is bounded
            # by one insert in the healthy steady state
            if self._replicas is not None:
                self._replicas.ship(shard_id)
            return {
                "id": series_id,
                "shard": shard_id,
                "path": reply["path"],
                "sealed_segment": bool(reply["sealed_segment"]),
                "n_series": len(self),
                "buffered": int(reply["buffered"]),
            }

    # -- persistence -------------------------------------------------------

    def save(self) -> None:
        """Checkpoint every shard archive and rewrite the manifest.

        Each worker saves its own v4 archive (with the id table in the
        manifest extras) and retires its WAL generations; the top-level
        manifest then records the new totals.  Requires every shard up
        — a checkpoint that silently skipped a shard would not be a
        checkpoint.
        """
        with self._lock:
            self._require_open()
            if self._replicas is not None:
                # drain replication first: a checkpoint retires the WAL
                # generations the followers are tailing, and a follower
                # left behind one would need a full re-bootstrap
                self._replicas.ship_all()
            for shard_id in range(self.n_shards):
                handle = self._ensure_worker(shard_id)
                send_frame(handle.conn, {"op": "checkpoint"})
                reply, _ = recv_frame(handle.conn, max(self.rpc_timeout, 60.0))
                if reply.get("op") != "ack":
                    raise ShardError(
                        f"checkpoint failed on shard {shard_id}: "
                        f"{reply.get('error')}"
                    )
                if not self._epoch_ok(shard_id, reply):
                    raise ShardError(
                        f"checkpoint ack on shard {shard_id} rejected: "
                        f"stale fencing epoch"
                    )
                handle.n_series = int(reply["n_series"])
                self._primary_seq[shard_id] = int(
                    reply.get("wal_seq", self._primary_seq[shard_id])
                )
                self._primary_ckpt[shard_id] = int(
                    reply.get("checkpoint_seq", self._primary_ckpt[shard_id])
                )
            self.manifest["series_total"] = len(self)
            self.manifest["next_id"] = self._next_id
            self._write_manifest(self.directory, self.manifest)

    checkpoint = save

    # -- introspection -----------------------------------------------------

    def status(self) -> dict:
        """Per-shard health: series counts, segments, WAL lag, liveness."""
        with self._lock:
            self._require_open()
            shards = []
            for shard_id in range(self.n_shards):
                entry = {
                    "shard": shard_id,
                    "file": self.manifest["files"][shard_id],
                    "alive": False,
                }
                handle = self._workers[shard_id]
                if handle is not None:
                    try:
                        send_frame(handle.conn, {"op": "status"})
                        reply, _ = recv_frame(handle.conn, self.rpc_timeout)
                        entry.update(reply)
                        entry["alive"] = True
                        entry.pop("op", None)
                    except RpcError:
                        self._worker_failed(shard_id, "status")
                shards.append(entry)
            status = {
                "shards": self.n_shards,
                "hash_seed": self.manifest["hash_seed"],
                "vnodes": self.manifest["vnodes"],
                "series_total": len(self),
                "next_id": self._next_id,
                "workers_live": sum(1 for h in self._workers if h is not None),
                "per_shard": shards,
            }
            if self._replicas is not None:
                status["replicas"] = self._replicas.n_replicas
                status["epochs"] = list(self.manifest["epochs"])
                status["replication"] = self.replica_status()
            return status

    def replica_status(self) -> list[dict]:
        """Per-shard replication detail: watermark, lag, liveness.

        Empty when no replicas are configured.  The lag figures are the
        same ones the ``sts3_replication_lag_records`` /
        ``sts3_replication_lag_seconds`` gauges export.
        """
        with self._lock:
            self._require_open()
            if self._replicas is None:
                return []
            return [
                {
                    "shard": shard_id,
                    "epoch": int(self.manifest["epochs"][shard_id]),
                    "primary_seq": int(self._primary_seq[shard_id]),
                    "wal_dir": self.shard_wal_dir(shard_id).name,
                    "replicas": self._replicas.status(shard_id),
                }
                for shard_id in range(self.n_shards)
            ]

    def ship_replication(self) -> None:
        """Drive one shipping round to every follower (test/ops hook).

        Shipping normally happens inline after each insert; this lets
        a drill or an operator push pending frames out without writing.
        """
        with self._lock:
            self._require_open()
            if self._replicas is not None:
                self._replicas.ship_all()

    def maintenance_status(self) -> dict:
        """Shard-level health in the shape ``/healthz`` renders.

        Matches the single-process key set (``/healthz`` reads these
        unconditionally); per-shard segment and WAL detail lives behind
        :meth:`status`, which asks the workers.
        """
        with self._lock:
            live = sum(1 for h in self._workers if h is not None)
            replicas_live = (
                sum(
                    1
                    for row in self._replicas.handles
                    for h in row
                    if h is not None
                )
                if self._replicas is not None
                else 0
            )
        return {
            "engine": "sharded",
            "replicas": (
                self._replicas.n_replicas if self._replicas is not None else 0
            ),
            "replicas_live": replicas_live,
            "wal_lag": None,
            "live_segments": None,
            "max_segments": None,
            "resident_bytes": 0,
            "memory_budget_bytes": None,
            "pinned_snapshots": 0,
            "shards": self.n_shards,
            "workers_live": live,
            "series_total": len(self),
        }

    def verify_integrity(self) -> list[str]:
        """Every shard's self-check, problems prefixed with the shard."""
        problems: list[str] = []
        with self._lock:
            self._require_open()
            for shard_id in range(self.n_shards):
                handle = self._workers[shard_id]
                if handle is None:
                    problems.append(f"shard-{shard_id}: worker down")
                    continue
                try:
                    send_frame(handle.conn, {"op": "verify"})
                    reply, _ = recv_frame(handle.conn, max(self.rpc_timeout, 60.0))
                except RpcError as exc:
                    problems.append(f"shard-{shard_id}: verify RPC failed ({exc})")
                    continue
                problems.extend(
                    f"shard-{shard_id}: {p}" for p in reply.get("problems", ())
                )
        return problems

    # -- lifecycle ---------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise ShardError("sharded database is closed")

    def close(self) -> None:
        """Shut every worker down (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            if self._replicas is not None:
                self._replicas.close()
                self._replicas = None
            for shard_id in range(self.n_shards):
                handle = self._workers[shard_id]
                if handle is None:
                    continue
                try:
                    send_frame(handle.conn, {"op": "shutdown"})
                    recv_frame(handle.conn, 5.0)
                except RpcError:
                    pass
                self._reap_worker(shard_id)

    def __enter__(self) -> "ShardedDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
