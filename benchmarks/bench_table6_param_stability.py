"""Table 6: best scale / maxScale stability across query counts.

Paper Section 7.4.1: "the parameter leading to maximal efficiency is
relatively stable and robust for #query", which justifies tuning
``scale`` and ``maxScale`` on a small sample of queries.  We sweep the
query count, pick the best parameter per count, and report the spread.
"""

from __future__ import annotations

import pytest

from repro.bench import render_table, scaled
from repro.core import STS3Database, tune_max_scale, tune_scale
from repro.data.workloads import ecg_workload

QUERY_COUNTS_PAPER = [1000, 2000, 4000, 8000]
SCALE_CANDIDATES = [5, 10, 20, 30]
MAX_SCALE_CANDIDATES = [2, 3, 4, 5, 6, 7]


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(20_000, minimum=200)
    counts = [scaled(c, minimum=5) for c in QUERY_COUNTS_PAPER]
    workload = ecg_workload(n_series, max(counts), length=500, seed=6)
    db = STS3Database(workload.database, sigma=3, epsilon=0.58, normalize=False)

    rows = []
    best_scales = []
    best_max_scales = []
    for count in counts:
        queries = workload.queries[:count]
        scale_result = tune_scale(db, queries, scales=SCALE_CANDIDATES)
        max_scale_result = tune_max_scale(
            db, queries, max_scales=MAX_SCALE_CANDIDATES
        )
        rows.append(
            [
                count,
                scale_result.best,
                scale_result.speedup,
                max_scale_result.best,
                max_scale_result.speedup,
            ]
        )
        best_scales.append(scale_result.best)
        best_max_scales.append(max_scale_result.best)
    report(
        "table6_param_stability",
        render_table(
            ["#query", "best scale", "speed-up", "best maxScale", "speed-up"],
            rows,
            title=f"Table 6: parameter stability vs #query (#series={n_series})",
        ),
    )
    # Stability claim: the winning parameters span a narrow band.
    assert max(best_max_scales) - min(best_max_scales) <= 5
    return db, workload


def test_bench_tune_scale(benchmark, experiment):
    db, workload = experiment
    benchmark.pedantic(
        lambda: tune_scale(db, workload.queries[:5], scales=[5, 20]),
        rounds=1,
        iterations=1,
    )
