"""Pruning-based STS3 (Algorithm 4): zone-histogram upper bounds.

The plane is divided into ``scale × scale`` zones.  For each zone ``i``,
``min(|S_i|, |Q_i|)`` bounds ``|S_i ∩ Q_i|`` from above (a shared cell
must lie in the same zone on both sides), so the sum over zones bounds
``|S ∩ Q|`` and hence the Jaccard similarity:

    J(S, Q) ≤ ub / (|S| + |Q| − ub),   ub = Σ_i min(|S_i|, |Q_i|).

Candidates whose bound cannot beat the current k-th best similarity are
skipped without touching their cell sets.  Zone histograms of database
series are precomputed offline (``Dzone`` in the paper).

Beyond the paper's literal loop, candidates are visited in descending
bound order: once the bound of the next candidate falls below the heap
threshold, *all* remaining candidates are pruned at once.  This
preserves exactness (the bound is admissible) and is the natural
best-first engineering of line 9; ``sort_candidates=False`` restores
the paper's literal scan order for comparison.

With a :class:`~repro.core.bitset.BitsetStore` attached, two inner
loops turn into popcount kernels without changing a single bound or
result: the query's zone histogram becomes per-zone *masked* popcounts
(``popcount(q & zone_mask)``, plus a bincount over the few cells
outside the store vocabulary, so ``Σ min(|S_i|, |Q_i|)`` is unchanged),
and each best-first chunk's exact Jaccard evaluations become one
gathered popcount sweep instead of a merge per candidate.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import span
from .grid import Grid
from .heap import KnnHeap
from .jaccard import jaccard
from .result import Neighbor, QueryResult, SearchStats
from .selection import top_k_indices

__all__ = ["PruningSearcher", "zone_histogram"]


def zone_histogram(cell_set: np.ndarray, grid: Grid, scale: int) -> np.ndarray:
    """Number of cells of ``cell_set`` in each of the ``scale²`` zones."""
    zones = grid.zones_of_cells(cell_set, scale)
    return np.bincount(zones, minlength=scale * scale).astype(np.int64)


class PruningSearcher:
    """Zone-bound-pruned k-NN search over a list of cell-ID sets."""

    def __init__(
        self,
        sets: list[np.ndarray],
        grid: Grid,
        scale: int = 6,
        sort_candidates: bool = True,
        bitset=None,
    ):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        if scale < 1:
            raise ParameterError(f"scale must be >= 1, got {scale}")
        self.sets = sets
        self.grid = grid
        self.scale = int(scale)
        self.sort_candidates = sort_candidates
        self.bitset = bitset
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        #: ``Dzone``: one zone histogram per database series, offline.
        #: int32 keeps the (N, scale²) matrix half-sized at paper scale
        #: (20k series x scale 50 → 2500 zones) with no overflow risk —
        #: a zone count is bounded by the series length.
        self.zone_counts = np.stack(
            [zone_histogram(s, grid, scale) for s in sets]
        ).astype(np.int32)
        #: per-zone uint64 masks over the store vocabulary, built lazily
        #: on the first bitset-assisted query.
        self._zone_masks: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self.sets)

    def _query_zone_histogram(self, query_set: np.ndarray) -> np.ndarray:
        """The query's zone histogram, identical to :func:`zone_histogram`.

        With a bitset store the in-vocabulary cells are counted by
        per-zone masked popcounts; the (typically empty) remainder —
        unseen database cells and Algorithm 6 out-of-bound IDs — falls
        back to the decode + bincount path, so the sum matches the
        scalar histogram cell for cell.
        """
        if self.bitset is None:
            return zone_histogram(query_set, self.grid, self.scale)
        if self._zone_masks is None:
            zones = self.grid.zones_of_cells(self.bitset.vocab, self.scale)
            self._zone_masks = self.bitset.column_masks(
                zones, self.scale * self.scale
            )
        q_words = self.bitset.pack(query_set)
        hist = self.bitset.masked_counts(q_words, self._zone_masks)
        outside = query_set[
            ~np.isin(query_set, self.bitset.vocab, assume_unique=True)
        ]
        if outside.size:
            hist = hist + np.bincount(
                self.grid.zones_of_cells(outside, self.scale),
                minlength=self.scale * self.scale,
            )
        return hist

    def upper_bounds(self, query_set: np.ndarray) -> np.ndarray:
        """Jaccard upper bound of every database series vs the query.

        Vectorized lines 5-9 of Algorithm 4: zone-wise minimum sums and
        the bound ``ub / (|S| + |Q| − ub)``.
        """
        q_hist = self._query_zone_histogram(query_set)
        inter_bound = np.minimum(self.zone_counts, q_hist).sum(axis=1)
        union_lower = self.lengths + len(query_set) - inter_bound
        return np.where(
            union_lower > 0, inter_bound / np.maximum(union_lower, 1), 1.0
        )

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        """Return the ``k`` most Jaccard-similar sets to ``query_set``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        with span("filter"):
            bounds = self.upper_bounds(query_set)
        stats = SearchStats(candidates=len(self.sets))
        if self.sort_candidates:
            return self._query_sorted(query_set, k, bounds, stats)
        return self._query_scan(query_set, k, bounds, stats)

    def _query_sorted(
        self, query_set: np.ndarray, k: int, bounds: np.ndarray, stats: SearchStats
    ) -> QueryResult:
        """Best-first scan with chunked, selection-based admission.

        Candidates are evaluated in descending-bound order in growing
        chunks; after each chunk the k-th best *exact* similarity so far
        (obtained by O(n) selection, not a per-candidate heap) is
        compared against the bound of the next candidate.  Because
        bounds are admissible and non-increasing from that point, a
        failed comparison prunes every remaining candidate at once —
        the same stop rule as the historical heap loop, amortized over
        chunks instead of paid per candidate.
        """
        n = len(bounds)
        q_words = (
            self.bitset.pack(query_set) if self.bitset is not None else None
        )
        with span("refine"):
            order = np.lexsort((np.arange(n), -bounds))
            sims = np.empty(n, dtype=np.float64)
            evaluated = 0
            chunk = max(k, 32)
            while evaluated < n:
                if evaluated >= k:
                    top = top_k_indices(
                        sims[:evaluated], k, tie_break=order[:evaluated]
                    )
                    kth = top[-1]
                    kth_key = (float(sims[kth]), -int(order[kth]))
                    nxt = int(order[evaluated])
                    if (float(bounds[nxt]), -nxt) <= kth_key:
                        # Bounds are non-increasing from here on: prune all.
                        stats.pruned += n - evaluated
                        break
                end = min(evaluated + chunk, n)
                if q_words is not None:
                    # One gathered popcount sweep scores the whole chunk.
                    rows = order[evaluated:end]
                    counts = self.bitset.intersection_counts_rows(
                        rows, q_words
                    )
                    union = self.lengths[rows] + len(query_set) - counts
                    sims[evaluated:end] = np.where(
                        union > 0, counts / np.maximum(union, 1), 1.0
                    )
                else:
                    for position in range(evaluated, end):
                        sims[position] = jaccard(
                            self.sets[int(order[position])], query_set
                        )
                stats.exact_computations += end - evaluated
                evaluated = end
                chunk *= 2
        with span("select_topk"):
            top = top_k_indices(sims[:evaluated], k, tie_break=order[:evaluated])
            neighbors = [
                Neighbor(similarity=float(sims[i]), index=int(order[i])) for i in top
            ]
        stats.final_candidates = len(neighbors)
        return QueryResult(neighbors=neighbors, stats=stats)

    def _query_scan(
        self, query_set: np.ndarray, k: int, bounds: np.ndarray, stats: SearchStats
    ) -> QueryResult:
        """The paper's literal scan order (Algorithm 4, line 9)."""
        heap = KnnHeap(k)
        with span("refine"):
            for index in range(len(bounds)):
                if heap.full and not heap.qualifies(float(bounds[index]), index):
                    stats.pruned += 1
                    continue
                similarity = jaccard(self.sets[index], query_set)
                stats.exact_computations += 1
                heap.consider(similarity, index)
        stats.final_candidates = len(heap)
        with span("select_topk"):
            neighbors = heap.neighbors()
        return QueryResult(neighbors=neighbors, stats=stats)
