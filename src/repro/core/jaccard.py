"""Jaccard similarity over sorted unique cell-ID arrays (Section 3.3).

``Jaccard(S, Q) = |S ∩ Q| / |S ∪ Q|``.  With both sides stored as
sorted unique arrays the intersection is a linear merge;
``numpy.intersect1d(assume_unique=True)`` performs it in C.  The
module also exposes the size-based upper bound used for early stopping
(a candidate whose length ratio already falls below the current k-th
best similarity can never qualify).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "intersection_size",
    "jaccard",
    "jaccard_distance",
    "jaccard_from_intersection",
    "size_upper_bound",
]


def intersection_size(a: np.ndarray, b: np.ndarray) -> int:
    """``|a ∩ b|`` for sorted unique int arrays, via a linear merge."""
    return int(np.intersect1d(a, b, assume_unique=True).size)


def jaccard_from_intersection(len_a: int, len_b: int, inter: int) -> float:
    """Jaccard similarity from set sizes and intersection size.

    ``|A ∪ B| = |A| + |B| − |A ∩ B|``; two empty sets are defined to
    have similarity 1.0 (they are identical).
    """
    union = len_a + len_b - inter
    if union == 0:
        return 1.0
    return inter / union


def jaccard(a: np.ndarray, b: np.ndarray) -> float:
    """Jaccard similarity of two sorted unique cell-ID arrays."""
    return jaccard_from_intersection(len(a), len(b), intersection_size(a, b))


def jaccard_distance(a: np.ndarray, b: np.ndarray) -> float:
    """``1 − Jaccard(a, b)`` — a true metric on finite sets."""
    return 1.0 - jaccard(a, b)


def size_upper_bound(len_a: int, len_b: int) -> float:
    """Upper bound on Jaccard from sizes alone: ``min/max``.

    The intersection is at most ``min(|A|, |B|)`` and the union at
    least ``max(|A|, |B|)``, so ``J ≤ min/max``.  This is the cheap
    filter behind the "early-stopping strategy" applied to the naive
    scan in Section 7.1.
    """
    if len_a == 0 and len_b == 0:
        return 1.0
    return min(len_a, len_b) / max(len_a, len_b)
