"""Synthetic stand-ins for the UCR classification datasets.

The paper's accuracy experiments (Tables 4, 8; Figures 4-5) run on the
UCR Time Series Classification Archive, which cannot be downloaded in
this offline environment.  This module generates labeled train/test
datasets that reproduce the *structural regimes* the paper's analysis
relies on, so every accuracy experiment exercises the identical code
path on data with the same qualitative behaviour:

- :func:`cbf` — the Cylinder-Bell-Funnel family *is* synthetic in the
  archive; we generate it from its standard published definition.
- :func:`device_profiles` — the "suitable scenario" of Section 6.2:
  near-zero baselines with a few class-characteristic bursts under a
  large global time shift (Computers / RefrigerationDevices /
  ScreenType stand-in).
- :func:`smooth_outlines` — image-outline-like smooth curves with only
  slight shift (shapesAll / Herring stand-in), the paper's other
  suitable scenario.
- :func:`noisy_templates` — heavily noised templates, the *unsuitable*
  scenario (phoneme stand-in) where DTW should win.
- :func:`two_close_classes` — two nearly identical classes
  (HandOutlines stand-in) where the grid cannot separate classes.
- :func:`gesture3d` — three correlated value dimensions per series
  (cricket_X/Y/Z stand-in) for the multi-dimensional study of
  Section 5.1 / Figure 4(b-d).
- :func:`faces_family` — two datasets drawn from one generator family
  (FacesUCR / FaceAll stand-in) for Figure 4(e-f).

Every generator takes a single integer seed and returns a
:class:`~repro.types.ClassificationDataset` with z-normalized series.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..exceptions import ParameterError
from ..types import ClassificationDataset, LabeledDataset
from .generators import add_noise, ensure_rng, gaussian_bump, random_warp, time_shift
from .normalize import z_normalize

__all__ = [
    "template_classes",
    "cbf",
    "device_profiles",
    "smooth_outlines",
    "noisy_templates",
    "two_close_classes",
    "gesture3d",
    "faces_family",
    "synthetic_control",
    "two_patterns",
]


def _make_labeled(
    name: str,
    make_instance: Callable[[int, np.random.Generator], np.ndarray],
    n_classes: int,
    n_per_class: int,
    rng: np.random.Generator,
) -> LabeledDataset:
    """Draw ``n_per_class`` instances of each class and shuffle them."""
    series: list[np.ndarray] = []
    labels: list[int] = []
    for label in range(n_classes):
        for _ in range(n_per_class):
            series.append(z_normalize(make_instance(label, rng)))
            labels.append(label)
    order = rng.permutation(len(series))
    return LabeledDataset(
        series=[series[i] for i in order],
        labels=np.asarray(labels)[order],
        name=name,
    )


def template_classes(
    name: str,
    templates: list[np.ndarray],
    n_train_per_class: int,
    n_test_per_class: int,
    seed: int = 0,
    shift_std: float = 2.0,
    warp_strength: float = 0.02,
    noise_std: float = 0.1,
) -> ClassificationDataset:
    """Generic labeled dataset: one template per class plus distortions.

    Each instance is its class template after (1) an integer time shift
    drawn from ``N(0, shift_std)``, (2) a smooth random time warp, and
    (3) additive Gaussian noise.  All accuracy-oriented families below
    are specializations of this recipe; exposing it publicly lets users
    build custom regimes (e.g. for parameter-sensitivity studies).
    """
    if not templates:
        raise ParameterError("need at least one class template")
    rng = ensure_rng(seed)

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        out = templates[label]
        shift = int(round(rng.normal(0.0, shift_std))) if shift_std > 0 else 0
        out = time_shift(out, shift)
        if warp_strength > 0:
            out = random_warp(out, rng, strength=warp_strength)
        return add_noise(out, rng, noise_std)

    train = _make_labeled(name, make_instance, len(templates), n_train_per_class, rng)
    test = _make_labeled(name, make_instance, len(templates), n_test_per_class, rng)
    return ClassificationDataset(name=name, train=train, test=test)


def cbf(
    n_train_per_class: int = 10,
    n_test_per_class: int = 100,
    length: int = 128,
    seed: int = 0,
) -> ClassificationDataset:
    """Cylinder-Bell-Funnel, per the standard synthetic definition.

    c(t) = (6+η)·χ[a,b](t) + ε(t);  the bell ramps up over [a, b] and
    the funnel ramps down; a ~ U(16, 32), b−a ~ U(32, 96), η, ε ~ N(0,1).
    """
    rng = ensure_rng(seed)

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        a = rng.uniform(length / 8.0, length / 4.0)
        b = a + rng.uniform(length / 4.0, length * 3.0 / 4.0)
        b = min(b, length - 1.0)
        t = np.arange(length, dtype=np.float64)
        mask = ((t >= a) & (t <= b)).astype(np.float64)
        level = 6.0 + rng.normal()
        if label == 0:  # cylinder
            shape = mask
        elif label == 1:  # bell: linear ramp up
            shape = mask * (t - a) / (b - a)
        else:  # funnel: linear ramp down
            shape = mask * (b - t) / (b - a)
        return level * shape + rng.normal(0.0, 1.0, size=length)

    train = _make_labeled("CBF", make_instance, 3, n_train_per_class, rng)
    test = _make_labeled("CBF", make_instance, 3, n_test_per_class, rng)
    return ClassificationDataset(name="CBF", train=train, test=test)


def device_profiles(
    n_classes: int = 3,
    n_train_per_class: int = 60,
    n_test_per_class: int = 60,
    length: int = 720,
    seed: int = 0,
    shift_fraction: float = 0.25,
    noise_std: float = 0.02,
) -> ClassificationDataset:
    """Electricity-usage-like profiles: the paper's suitable scenario.

    Each class is a distinct pattern of on/off power bursts over a
    near-zero baseline.  Instances of a class share the burst pattern
    but start at a large random time offset (up to ``shift_fraction`` of
    the series), so "the time series have a global shift, but only a
    few points have different values" (Section 7.2.2).
    """
    rng = ensure_rng(seed)
    if n_classes < 2:
        raise ParameterError("device_profiles needs at least 2 classes")

    # Per class: a fixed set of bursts (position fraction, width, level).
    class_bursts: list[list[tuple[float, float, float]]] = []
    for _ in range(n_classes):
        n_bursts = int(rng.integers(1, 4))
        bursts = [
            (
                float(rng.uniform(0.1, 0.6)),
                float(rng.uniform(0.02, 0.08) * length),
                float(rng.uniform(1.0, 4.0)),
            )
            for _ in range(n_bursts)
        ]
        class_bursts.append(bursts)

    max_shift = int(shift_fraction * length)

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        out = np.zeros(length, dtype=np.float64)
        offset = int(rng.integers(0, max_shift + 1))
        for pos_frac, width, level in class_bursts[label]:
            center = pos_frac * length + offset
            # Square-ish burst: a clipped wide Gaussian reads as on/off.
            out += level * np.clip(
                3.0 * gaussian_bump(length, center, width), 0.0, 1.0
            )
        return add_noise(out, rng, noise_std)

    train = _make_labeled("Device", make_instance, n_classes, n_train_per_class, rng)
    test = _make_labeled("Device", make_instance, n_classes, n_test_per_class, rng)
    return ClassificationDataset(name="Device", train=train, test=test)


def _harmonic_template(length: int, rng: np.random.Generator, n_harmonics: int = 6) -> np.ndarray:
    """A random smooth closed-curve-like template (Fourier descriptors)."""
    t = np.arange(length, dtype=np.float64)
    out = np.zeros(length, dtype=np.float64)
    for i in range(1, n_harmonics + 1):
        amp = rng.normal(0.0, 1.0 / i)
        phase = rng.uniform(0.0, 2.0 * np.pi)
        out += amp * np.sin(2.0 * np.pi * i * t / length + phase)
    return out


def smooth_outlines(
    n_classes: int = 6,
    n_train_per_class: int = 20,
    n_test_per_class: int = 20,
    length: int = 256,
    seed: int = 0,
    noise_std: float = 0.08,
) -> ClassificationDataset:
    """Image-outline-like smooth curves with only slight shift.

    Stand-in for shapesAll / Herring: distinct smooth templates, small
    time shift, modest noise — STS3's first suitable scenario.
    """
    rng = ensure_rng(seed)
    templates = [_harmonic_template(length, rng) for _ in range(n_classes)]
    return template_classes(
        "Shapes",
        templates,
        n_train_per_class,
        n_test_per_class,
        seed=int(rng.integers(0, 2**31)),
        shift_std=length * 0.01,
        warp_strength=0.01,
        noise_std=noise_std,
    )


def noisy_templates(
    n_classes: int = 8,
    n_train_per_class: int = 15,
    n_test_per_class: int = 15,
    length: int = 256,
    seed: int = 0,
    noise_std: float = 1.2,
) -> ClassificationDataset:
    """Heavily noised templates — the unsuitable scenario (phoneme-like).

    The signal-to-noise ratio is low and the point shift large, so
    "the small cells cannot handle noise and the large cells cannot
    distinguish different time series" (Section 7.2.2): DTW should beat
    STS3 here, and our benchmarks check that it does.
    """
    rng = ensure_rng(seed)
    templates = [_harmonic_template(length, rng) for _ in range(n_classes)]
    return template_classes(
        "Noisy",
        templates,
        n_train_per_class,
        n_test_per_class,
        seed=int(rng.integers(0, 2**31)),
        shift_std=length * 0.05,
        warp_strength=0.06,
        noise_std=noise_std,
    )


def two_close_classes(
    n_train_per_class: int = 40,
    n_test_per_class: int = 40,
    length: int = 512,
    seed: int = 0,
    difference_scale: float = 0.25,
    noise_std: float = 0.15,
    shift_std: float | None = None,
    warp_strength: float = 0.03,
) -> ClassificationDataset:
    """Two nearly identical classes (HandOutlines stand-in).

    Class 1 equals class 0 except for a small localized perturbation of
    relative size ``difference_scale``; with shift and noise on top, the
    grid cannot hold the shift while still separating the classes.
    """
    rng = ensure_rng(seed)
    base = _harmonic_template(length, rng)
    bump = gaussian_bump(length, center=0.62 * length, width=0.02 * length)
    templates = [base, base + difference_scale * bump]
    return template_classes(
        "TwoClose",
        templates,
        n_train_per_class,
        n_test_per_class,
        seed=int(rng.integers(0, 2**31)),
        shift_std=length * 0.02 if shift_std is None else shift_std,
        warp_strength=warp_strength,
        noise_std=noise_std,
    )


def gesture3d(
    n_classes: int = 12,
    n_train_per_class: int = 30,
    n_test_per_class: int = 30,
    length: int = 300,
    seed: int = 0,
    noise_std: float = 0.15,
) -> tuple[ClassificationDataset, dict[str, ClassificationDataset]]:
    """Cricket-like 3-dimensional gestures.

    Returns the full 3-D dataset (series of shape ``(length, 3)``) plus
    per-axis 1-D projections named ``"Cricket_X"``, ``"Cricket_Y"``,
    ``"Cricket_Z"`` — the form used by Figure 4(b-d).  A time shift is
    applied *jointly* across the three axes, matching the paper's
    observation that "if a point has time shift in one dimension, the
    time shift will also happen in other dimensions".
    """
    rng = ensure_rng(seed)
    # Per class: three correlated templates (shared base + axis detail).
    class_templates: list[np.ndarray] = []
    for _ in range(n_classes):
        base = _harmonic_template(length, rng)
        axes = [base + 0.5 * _harmonic_template(length, rng) for _ in range(3)]
        class_templates.append(np.stack(axes, axis=1))

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        template = class_templates[label]
        shift = int(round(rng.normal(0.0, length * 0.02)))
        out = np.stack(
            [time_shift(template[:, d], shift) for d in range(3)], axis=1
        )
        return add_noise(out, rng, noise_std)

    train = _make_labeled("Cricket3D", make_instance, n_classes, n_train_per_class, rng)
    test = _make_labeled("Cricket3D", make_instance, n_classes, n_test_per_class, rng)
    full = ClassificationDataset(name="Cricket3D", train=train, test=test)

    projections: dict[str, ClassificationDataset] = {}
    for d, axis in enumerate("XYZ"):
        name = f"Cricket_{axis}"
        projections[name] = ClassificationDataset(
            name=name,
            train=LabeledDataset(
                [z_normalize(s[:, d]) for s in train.series], train.labels, name
            ),
            test=LabeledDataset(
                [z_normalize(s[:, d]) for s in test.series], test.labels, name
            ),
        )
    return full, projections


def synthetic_control(
    n_train_per_class: int = 50,
    n_test_per_class: int = 50,
    length: int = 60,
    seed: int = 0,
) -> ClassificationDataset:
    """The UCR ``synthetic_control`` dataset, from its published recipe.

    Alcock & Manolopoulos's control-chart generator: six classes over a
    baseline ``m=30`` with noise ``r ~ N(0, 2²)`` —

    1. normal:          m + r
    2. cyclic:          m + r + a·sin(2πt/T)
    3. increasing:      m + r + g·t
    4. decreasing:      m + r − g·t
    5. upward shift:    m + r + k·x·(t ≥ t₀)
    6. downward shift:  m + r − k·x·(t ≥ t₀)

    with a ∈ [10,15], T ∈ [10,15], g ∈ [0.2,0.5], x ∈ [7.5,20] and
    shift point t₀ ∈ [length/3, 2·length/3].  This dataset is *itself*
    synthetic in the UCR archive, so this stand-in is faithful rather
    than approximate.
    """
    rng = ensure_rng(seed)
    baseline = 30.0

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        t = np.arange(length, dtype=np.float64)
        out = baseline + rng.normal(0.0, 2.0, size=length)
        if label == 1:  # cyclic
            amplitude = rng.uniform(10.0, 15.0)
            period = rng.uniform(10.0, 15.0)
            out += amplitude * np.sin(2.0 * np.pi * t / period)
        elif label == 2:  # increasing trend
            out += rng.uniform(0.2, 0.5) * t
        elif label == 3:  # decreasing trend
            out -= rng.uniform(0.2, 0.5) * t
        elif label in (4, 5):  # shifts
            magnitude = rng.uniform(7.5, 20.0)
            start = int(rng.uniform(length / 3.0, 2.0 * length / 3.0))
            step = np.where(t >= start, magnitude, 0.0)
            out += step if label == 4 else -step
        return out

    train = _make_labeled("synthetic_control", make_instance, 6, n_train_per_class, rng)
    test = _make_labeled("synthetic_control", make_instance, 6, n_test_per_class, rng)
    return ClassificationDataset(name="synthetic_control", train=train, test=test)


def two_patterns(
    n_train_per_class: int = 250,
    n_test_per_class: int = 1000,
    length: int = 128,
    seed: int = 0,
) -> ClassificationDataset:
    """The UCR ``Two_Patterns`` dataset, from its published recipe.

    Geurts's generator: background noise ``N(0,1)`` carrying two
    temporal patterns — an *upward step* (−5 then +5) or a *downward
    step* (+5 then −5) — at random non-overlapping positions; the four
    classes are the pattern-pair orderings UU, UD, DU, DD.  Another
    natively synthetic UCR dataset, so the stand-in is faithful.
    """
    rng = ensure_rng(seed)
    pattern_len = max(4, length // 8)

    def _write(out: np.ndarray, start: int, upward: bool) -> None:
        half = pattern_len // 2
        lo, hi = (-5.0, 5.0) if upward else (5.0, -5.0)
        out[start : start + half] = lo
        out[start + half : start + pattern_len] = hi

    def make_instance(label: int, rng: np.random.Generator) -> np.ndarray:
        out = rng.normal(0.0, 1.0, size=length)
        first_up = label in (0, 1)
        second_up = label in (0, 2)
        start1 = int(rng.integers(0, length // 2 - pattern_len))
        start2 = int(rng.integers(length // 2, length - pattern_len))
        _write(out, start1, first_up)
        _write(out, start2, second_up)
        return out

    train = _make_labeled("Two_Patterns", make_instance, 4, n_train_per_class, rng)
    test = _make_labeled("Two_Patterns", make_instance, 4, n_test_per_class, rng)
    return ClassificationDataset(name="Two_Patterns", train=train, test=test)


def faces_family(
    seed: int = 0,
    length: int = 131,
    n_classes: int = 14,
) -> tuple[ClassificationDataset, ClassificationDataset]:
    """Two datasets from one family (FacesUCR / FaceAll stand-ins).

    Both use the *same* class templates and noise regime but different
    instance draws and sizes, so parameter-sensitivity curves computed
    on them should look alike — the phenomenon Figure 4(e-f) reports.
    """
    rng = ensure_rng(seed)
    templates = [_harmonic_template(length, rng, n_harmonics=8) for _ in range(n_classes)]

    def build(name: str, n_train: int, n_test: int, sub_seed: int) -> ClassificationDataset:
        return template_classes(
            name,
            templates,
            n_train,
            n_test,
            seed=sub_seed,
            shift_std=length * 0.015,
            warp_strength=0.02,
            noise_std=0.25,
        )

    faces_ucr = build("FacesUCR", 14, 40, int(rng.integers(0, 2**31)))
    face_all = build("FaceAll", 40, 40, int(rng.integers(0, 2**31)))
    return faces_ucr, face_all
