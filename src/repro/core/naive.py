"""Naive STS3 (Algorithm 2): a full scan over set representations.

The query's set representation is compared with every database set and
the k best Jaccard similarities are kept in a min-heap.  Following
Section 7.1 ("the naive STS3 combined with an early-stopping strategy")
the scan can skip candidates whose size-based upper bound
``min(|S|,|Q|)/max(|S|,|Q|)`` already falls below the current k-th best
similarity — the bound is exact to compute and admissible, so the
result is unchanged.

With a :class:`~repro.core.bitset.BitsetStore` attached, the scan's
per-candidate sorted merges collapse into one popcount sweep over the
packed matrix: every ``|S_i ∩ Q|`` at once, then a vectorized Jaccard
and the usual deterministic top-k.  Answers are bit-identical; only the
scan bookkeeping changes (every candidate is exactly evaluated, so
nothing is reported as pruned).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import span
from .heap import KnnHeap
from .jaccard import jaccard, size_upper_bound
from .result import Neighbor, QueryResult, SearchStats
from .selection import top_k_indices

__all__ = ["NaiveSearcher"]


class NaiveSearcher:
    """Linear-scan k-NN search over a list of cell-ID sets.

    ``bitset`` optionally supplies a packed
    :class:`~repro.core.bitset.BitsetStore` built over the same sets;
    when present, queries run as a single popcount sweep instead of a
    Python-dispatched merge per candidate (``early_stop`` then has no
    work to skip).
    """

    def __init__(
        self, sets: list[np.ndarray], early_stop: bool = True, bitset=None
    ):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        self.sets = sets
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        self.early_stop = early_stop
        self.bitset = bitset

    def __len__(self) -> int:
        return len(self.sets)

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        """Return the ``k`` most Jaccard-similar sets to ``query_set``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        if self.bitset is not None:
            return self._query_bitset(query_set, k)
        heap = KnnHeap(k)
        stats = SearchStats(candidates=len(self.sets))
        q_len = len(query_set)
        # The naive scan has no separate filter phase: the size bound
        # and the exact merge interleave, so the whole loop is "refine".
        with span("refine"):
            for index, candidate in enumerate(self.sets):
                if self.early_stop and heap.full:
                    bound = size_upper_bound(len(candidate), q_len)
                    if not heap.qualifies(bound, index):
                        stats.pruned += 1
                        continue
                similarity = jaccard(candidate, query_set)
                stats.exact_computations += 1
                heap.consider(similarity, index)
        stats.final_candidates = len(heap)
        with span("select_topk"):
            neighbors = heap.neighbors()
        return QueryResult(neighbors=neighbors, stats=stats)

    def _query_bitset(self, query_set: np.ndarray, k: int) -> QueryResult:
        """One popcount sweep over the packed matrix (bit-identical)."""
        with span("refine"):
            counts = self.bitset.intersection_counts(query_set)
            union = self.lengths + len(query_set) - counts
            # union == 0 only for two empty sets (Jaccard defined as 1).
            sims = np.where(union > 0, counts / np.maximum(union, 1), 1.0)
        stats = SearchStats(
            candidates=len(self.sets),
            exact_computations=len(self.sets),
        )
        with span("select_topk"):
            order = top_k_indices(sims, k)
            neighbors = [
                Neighbor(similarity=float(sims[i]), index=int(i)) for i in order
            ]
        stats.final_candidates = len(neighbors)
        return QueryResult(neighbors=neighbors, stats=stats)
