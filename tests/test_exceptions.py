"""Tests for the exception hierarchy contract."""

import pytest

from repro.exceptions import (
    DatasetError,
    EmptyDatabaseError,
    GridError,
    ParameterError,
    ReproError,
)


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc in (ParameterError, GridError, EmptyDatabaseError, DatasetError):
            assert issubclass(exc, ReproError)

    def test_builtin_compatibility(self):
        """Callers catching built-in categories keep working."""
        assert issubclass(ParameterError, ValueError)
        assert issubclass(GridError, ValueError)
        assert issubclass(DatasetError, ValueError)
        assert issubclass(EmptyDatabaseError, LookupError)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ParameterError("bad")

    def test_catchable_as_builtin(self):
        with pytest.raises(ValueError):
            raise GridError("bad")


class TestPublicApiRaises:
    """Failure injection: malformed inputs fail loudly with our types."""

    def test_database_rejects_nan_series(self):
        import numpy as np

        from repro import STS3Database

        with pytest.raises(DatasetError):
            STS3Database([np.array([1.0, float("nan")])], sigma=1, epsilon=1)

    def test_database_rejects_nan_query(self):
        import numpy as np

        from repro import STS3Database

        db = STS3Database([np.arange(8.0)], sigma=1, epsilon=1)
        with pytest.raises(DatasetError):
            db.query(np.array([1.0, float("inf")] * 4))

    def test_database_rejects_empty_series(self):
        import numpy as np

        from repro import STS3Database

        with pytest.raises(DatasetError):
            STS3Database([np.array([])], sigma=1, epsilon=1)

    def test_database_rejects_nan_insert(self):
        import numpy as np

        from repro import STS3Database

        db = STS3Database([np.arange(8.0)], sigma=1, epsilon=1)
        with pytest.raises(DatasetError):
            db.insert(np.array([float("nan")] * 8))
