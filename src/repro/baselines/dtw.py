"""Dynamic Time Warping, full and Sakoe-Chiba-banded.

DTW aligns two series by a monotone warping path minimizing the summed
point-wise squared differences; the Sakoe-Chiba band restricts the path
to ``|i - j| <= window``.  We return the square root of the accumulated
squared cost (the UCR convention, comparable with Euclidean distance).

The distance-only computation (:func:`dtw`) runs on **anti-diagonals**:
cells on diagonal ``i + j = d`` depend only on diagonals ``d-1`` and
``d-2``, so each diagonal updates as one vectorized numpy expression —
orders of magnitude faster than a scalar double loop in Python, while
computing the identical recurrence.  A ``cutoff`` enables early
abandoning: once every reachable cell of a diagonal exceeds the cutoff,
the final distance must too.

:func:`dtw_with_path` is the dictionary-based variant used by FastDTW,
which needs both an explicit warping path and support for arbitrary
(non-band) search windows.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError

__all__ = ["dtw", "dtw_independent", "dtw_with_path", "sakoe_chiba_window"]

_INF = np.inf


def _point_costs(a: np.ndarray, b: np.ndarray, i_values: np.ndarray, j_values: np.ndarray) -> np.ndarray:
    """Squared distances between ``a[i]`` and ``b[j]`` pairs."""
    if a.ndim == 1:
        diff = a[i_values] - b[j_values]
        return diff * diff
    diff = a[i_values] - b[j_values]
    return np.einsum("ij,ij->i", diff, diff)


def dtw(
    a: np.ndarray,
    b: np.ndarray,
    window: int | None = None,
    cutoff: float = _INF,
) -> float:
    """DTW distance between ``a`` and ``b``.

    ``window`` is the Sakoe-Chiba band half-width in samples (``None``
    for unconstrained warping).  If the distance provably exceeds
    ``cutoff``, ``inf`` is returned instead (early abandoning).
    """
    a = np.ascontiguousarray(a, dtype=np.float64)
    b = np.ascontiguousarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ParameterError("DTW requires non-empty series")
    if window is not None:
        if window < 0:
            raise ParameterError(f"window must be >= 0, got {window}")
        # A band narrower than the length difference admits no path.
        if abs(n - m) > window:
            return float("inf")
    limit = cutoff * cutoff if np.isfinite(cutoff) else _INF

    # prev1[i] = dp value of cell (i, d-1-i); prev2[i] = (i, d-2-i).
    prev1 = np.full(n, _INF)
    prev2 = np.full(n, _INF)
    prev_min = _INF
    indices = np.arange(n)
    for d in range(n + m - 1):
        i_lo = max(0, d - m + 1)
        i_hi = min(n - 1, d)
        if window is not None:
            # |i - j| <= window with j = d - i  →  (d-w)/2 <= i <= (d+w)/2
            i_lo = max(i_lo, (d - window + 1) // 2)
            i_hi = min(i_hi, (d + window) // 2)
        if i_lo > i_hi:
            prev2, prev1 = prev1, np.full(n, _INF)
            continue
        ivals = indices[i_lo : i_hi + 1]
        cost = _point_costs(a, b, ivals, d - ivals)

        cur = np.full(n, _INF)
        if d == 0:
            cur[0] = cost[0]
        else:
            left = prev1[ivals]  # cell (i, j-1)
            up = np.where(ivals > 0, prev1[ivals - 1], _INF)  # (i-1, j)
            diag = np.where(ivals > 0, prev2[ivals - 1], _INF)  # (i-1, j-1)
            best = np.minimum(np.minimum(left, up), diag)
            cur[ivals] = cost + best
        cur_min = float(cur[ivals].min())
        if np.isfinite(limit) and cur_min > limit and prev_min > limit:
            # A warping path cannot skip two consecutive diagonals, and
            # accumulated cost only grows, so every path exceeds cutoff.
            return float("inf")
        prev2, prev1, prev_min = prev1, cur, cur_min

    total = prev1[n - 1]
    if not np.isfinite(total) or total > limit:
        return float("inf")
    return float(np.sqrt(total))


def dtw_independent(
    a: np.ndarray,
    b: np.ndarray,
    window: int | None = None,
) -> float:
    """Independent multivariate DTW: per-dimension DTWs, summed.

    :func:`dtw` on ``(n, d)`` series is the *dependent* strategy (one
    shared warping path over d-dimensional point costs); the
    independent strategy warps each dimension separately and sums the
    squared per-dimension distances — the other standard convention in
    the multivariate-DTW literature, useful when dimensions drift out
    of phase with each other.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.ndim == 1:
        return dtw(a, b, window=window)
    if b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ParameterError("series must share their dimensionality")
    total = 0.0
    for d in range(a.shape[1]):
        per_dim = dtw(a[:, d], b[:, d], window=window)
        if per_dim == float("inf"):
            return float("inf")
        total += per_dim * per_dim
    return float(np.sqrt(total))


def sakoe_chiba_window(length: int, fraction: float) -> int:
    """Band half-width as a fraction of the series length.

    The paper follows the UCR convention of quoting warping windows as
    percentages (e.g. "the warping length used for LCSS is 10% of the
    time series length").
    """
    if not 0.0 <= fraction <= 1.0:
        raise ParameterError(f"fraction must be in [0, 1], got {fraction}")
    return max(0, int(round(length * fraction)))


def dtw_with_path(
    a: np.ndarray,
    b: np.ndarray,
    window_cells: set[tuple[int, int]] | None = None,
) -> tuple[float, list[tuple[int, int]]]:
    """DTW distance plus an optimal warping path.

    ``window_cells`` restricts the search to an explicit cell set (as
    FastDTW's projected windows require); ``None`` searches the full
    matrix.  Cell (0, 0) and (n-1, m-1) must be inside the window.
    Returns ``(distance, path)`` with the path from (0, 0) to
    (n-1, m-1) inclusive.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    n, m = len(a), len(b)
    if n == 0 or m == 0:
        raise ParameterError("DTW requires non-empty series")

    if window_cells is None:
        cells = [(i, j) for i in range(n) for j in range(m)]
    else:
        cells = sorted(window_cells)
        if (0, 0) not in window_cells or (n - 1, m - 1) not in window_cells:
            raise ParameterError("window must contain the path endpoints")

    def point_cost(i: int, j: int) -> float:
        if a.ndim == 1:
            diff = a[i] - b[j]
            return diff * diff
        diff = a[i] - b[j]
        return float(np.dot(diff, diff))

    dp: dict[tuple[int, int], float] = {}
    parent: dict[tuple[int, int], tuple[int, int] | None] = {}
    for i, j in cells:
        cost = point_cost(i, j)
        if i == 0 and j == 0:
            dp[(i, j)] = cost
            parent[(i, j)] = None
            continue
        best = _INF
        best_from: tuple[int, int] | None = None
        for prev in ((i - 1, j - 1), (i - 1, j), (i, j - 1)):
            value = dp.get(prev, _INF)
            if value < best:
                best = value
                best_from = prev
        if best is _INF or not np.isfinite(best):
            continue  # unreachable inside this window
        dp[(i, j)] = cost + best
        parent[(i, j)] = best_from

    end = (n - 1, m - 1)
    if end not in dp:
        raise ParameterError("window admits no warping path")
    path: list[tuple[int, int]] = []
    node: tuple[int, int] | None = end
    while node is not None:
        path.append(node)
        node = parent[node]
    path.reverse()
    return float(np.sqrt(dp[end])), path
