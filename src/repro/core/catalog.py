"""Segment catalog: the index-lifecycle layer (DESIGN.md §10, §15).

:class:`SegmentCatalog` tracks the live, immutable
:class:`~repro.core.segment.Segment` objects in global-index order,
assigns segment IDs, and bumps a generation number on every structural
change (bootstrap, seal, extend, compact, merge).  It replaces the
seed's ad-hoc ``_invalidate``/cached-searcher dance in ``database.py``:
since segments own their searcher caches and never mutate,
"invalidation" is simply replacing a segment, and anything holding a
stale generation number knows to re-plan.

Since PR 8 the catalog is *snapshot-isolated*: every structural change
publishes a new immutable :class:`CatalogSnapshot` (a tuple of
segments plus the generation), and readers that need a consistent view
across multiple accesses :meth:`~SegmentCatalog.pin` the current
snapshot instead of locking out writers.  Mutators copy-and-swap under
a small internal lock, so a background merge can replace a run of
segments while in-flight queries keep reading the snapshot they
pinned; the old snapshot's segments are reclaimed (retirement hooks +
stale ``sts3_bitset_bytes_resident`` labels dropped) only once its
refcount drains.

Lifecycle spans/counters (docs/observability.md): sealing a buffer
emits a ``segment.seal`` span and increments
``sts3_segments_sealed_total``; merging emits ``segment.compact`` and
increments ``sts3_rebuilds_total`` (compaction is where the seed's
full-rebuild cost now lives).  The ``sts3_live_segments`` gauge tracks
the catalog size.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from ..obs import get_registry, span
from .grid import Bound, Grid
from .segment import Segment, count_transforms
from .setrep import transform

__all__ = ["CatalogSnapshot", "QuarantineRecord", "SegmentCatalog"]


@dataclass(frozen=True)
class QuarantineRecord:
    """A segment payload the loader refused to trust (DESIGN.md §12).

    ``name`` is the payload's manifest name (``segment-<position>`` or
    ``buffer``), ``n_series`` how many series the manifest said it held.
    Quarantined payloads are *skipped*, not restored: the surviving
    segments pack consecutively, so global indices shift — queries
    against a quarantined catalog report ``complete=False`` with
    ``degraded_reason="quarantine"`` rather than pretending nothing
    happened.
    """

    name: str
    n_series: int
    reason: str


class CatalogSnapshot:
    """An immutable view of the catalog at one generation.

    Everything the read path needs for one request — the segment tuple,
    the generation (cache-key component), the quarantine list, and the
    per-segment global offsets — frozen at pin time.  Snapshots are
    cheap (they share the segment objects, which never mutate) and are
    handed out by :meth:`SegmentCatalog.pin`; the refcount is owned by
    the catalog and guarded by its lock, never touched directly.
    """

    __slots__ = ("segments", "generation", "quarantined", "_offsets", "_refs")

    def __init__(
        self,
        segments: tuple[Segment, ...],
        generation: int,
        quarantined: tuple[QuarantineRecord, ...],
    ):
        self.segments = tuple(segments)
        self.generation = int(generation)
        self.quarantined = tuple(quarantined)
        self._offsets: tuple[int, ...] | None = None
        self._refs = 0

    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self):
        return iter(self.segments)

    @property
    def n_series(self) -> int:
        """Total series across the snapshot's segments."""
        return sum(len(seg) for seg in self.segments)

    def offsets(self) -> tuple[int, ...]:
        """Global index of each segment's first series.

        Computed lazily; the compute is idempotent over immutable
        state, so the unsynchronized cache fill is benign.
        """
        if self._offsets is None:
            offsets, total = [], 0
            for seg in self.segments:
                offsets.append(total)
                total += len(seg)
            self._offsets = tuple(offsets)
        return self._offsets

    def covering_bound(self) -> Bound:
        """Smallest bound covering every segment's grid bound."""
        if not self.segments:
            raise ParameterError("cannot bound an empty catalog")
        bound = self.segments[0].grid.bound
        for seg in self.segments[1:]:
            bound = bound.union(seg.grid.bound)
        return bound


class SegmentCatalog:
    """Ordered collection of live segments plus their shared parameters.

    Global series index ``g`` lives in the segment at the largest
    offset ``<= g`` (see :meth:`offsets`); segment order therefore
    *is* insertion order, and compaction only ever merges consecutive
    runs so that global indices — the identity queries report — stay
    stable across every lifecycle operation.

    All mutators copy-and-swap the published :class:`CatalogSnapshot`
    under ``_lock``; plain attribute-style reads (``segments``,
    ``generation``, ``offsets()``) go through the current snapshot and
    never block.  Concurrent *mutators* are serialized by the lock, but
    ordering between a journal append and its catalog change is the
    database layer's job (its mutation lock).
    """

    def __init__(self, sigma: float, epsilon, value_padding: float = 0.0):
        self.sigma = float(sigma)
        self.epsilon = epsilon
        self.value_padding = float(value_padding)
        self._next_id = 0
        self._lock = threading.RLock()
        self._segments: list[Segment] = []
        self._quarantined: list[QuarantineRecord] = []
        self._snapshot = CatalogSnapshot((), 0, ())
        #: snapshots no longer current but still pinned by readers.
        self._retired: list[CatalogSnapshot] = []
        #: callables invoked with each Segment whose ID leaves the
        #: catalog for good (no live or pinned snapshot contains it).
        self._retirement_hooks: list = []

    def __len__(self) -> int:
        return len(self._snapshot.segments)

    def __iter__(self):
        return iter(self._snapshot.segments)

    # -- snapshot plumbing ----------------------------------------------

    @property
    def segments(self) -> tuple[Segment, ...]:
        """The current snapshot's segments (immutable tuple)."""
        return self._snapshot.segments

    @property
    def generation(self) -> int:
        """Bumped on every change; cheap staleness check for caches."""
        return self._snapshot.generation

    @property
    def quarantined(self) -> tuple[QuarantineRecord, ...]:
        """Payloads the loader could not verify — see :meth:`quarantine`."""
        return self._snapshot.quarantined

    def current(self) -> CatalogSnapshot:
        """The current snapshot *without* pinning (single-read use)."""
        return self._snapshot

    def pin(self) -> CatalogSnapshot:
        """Pin and return the current snapshot.

        The snapshot's segments stay reclaimable-proof until the
        matching :meth:`release`; pinning is one refcount increment
        under the catalog lock, so readers never wait on a merge.
        """
        with self._lock:
            snapshot = self._snapshot
            snapshot._refs += 1
            return snapshot

    def release(self, snapshot: CatalogSnapshot) -> None:
        """Release a pin; reclaims the snapshot once its refs drain."""
        with self._lock:
            snapshot._refs -= 1
            if snapshot._refs <= 0 and snapshot is not self._snapshot:
                try:
                    self._retired.remove(snapshot)
                except ValueError:
                    return  # already reclaimed (or never retired)
                self._reclaim(snapshot)

    @contextmanager
    def pinned(self):
        """``with catalog.pinned() as snap:`` — pin for the block."""
        snapshot = self.pin()
        try:
            yield snapshot
        finally:
            self.release(snapshot)

    def pinned_snapshots(self) -> int:
        """How many retired snapshots are still pinned (diagnostics)."""
        with self._lock:
            return len(self._retired)

    def add_retirement_hook(self, hook) -> None:
        """Call ``hook(segment)`` when a segment ID leaves the catalog.

        "Leaves" means no current or still-pinned snapshot contains the
        ID any more — i.e. the segment was merged away (not merely
        replaced by :meth:`extend_last`, which reuses the ID) and every
        reader that could still see it has released its pin.  The
        maintenance engine uses this for eviction bookkeeping; the
        catalog itself uses the same path to drop stale
        ``sts3_bitset_bytes_resident{segment=...}`` metric labels.
        """
        self._retirement_hooks.append(hook)

    def _publish(self) -> None:
        """Swap in a new snapshot built from ``_segments`` (lock held)."""
        old = self._snapshot
        self._snapshot = CatalogSnapshot(
            tuple(self._segments), old.generation + 1, tuple(self._quarantined)
        )
        if old._refs > 0:
            self._retired.append(old)
        else:
            self._reclaim(old)

    def _live_ids(self) -> set[int]:
        ids = {seg.segment_id for seg in self._snapshot.segments}
        for snapshot in self._retired:
            ids.update(seg.segment_id for seg in snapshot.segments)
        return ids

    def _reclaim(self, snapshot: CatalogSnapshot) -> None:
        """Retire segments only ``snapshot`` still referenced (lock held)."""
        live = self._live_ids()
        for seg in snapshot.segments:
            if seg.segment_id in live:
                continue
            get_registry().gauge(
                "sts3_bitset_bytes_resident",
                "bytes of bitset/payload currently resident, per segment",
            ).discard_labels(segment=str(seg.segment_id))
            for hook in self._retirement_hooks:
                hook(seg)

    def __getstate__(self) -> dict:
        # A pickled catalog (batch worker processes) carries only the
        # published layout: locks, pins, and hooks are process-local.
        snapshot = self._snapshot
        return {
            "sigma": self.sigma,
            "epsilon": self.epsilon,
            "value_padding": self.value_padding,
            "_next_id": self._next_id,
            "segments": snapshot.segments,
            "generation": snapshot.generation,
            "quarantined": snapshot.quarantined,
        }

    def __setstate__(self, state: dict) -> None:
        self.sigma = state["sigma"]
        self.epsilon = state["epsilon"]
        self.value_padding = state["value_padding"]
        self._next_id = state["_next_id"]
        self._lock = threading.RLock()
        self._segments = list(state["segments"])
        self._quarantined = list(state["quarantined"])
        self._snapshot = CatalogSnapshot(
            tuple(self._segments), state["generation"], tuple(self._quarantined)
        )
        self._retired = []
        self._retirement_hooks = []

    # -- derived views ---------------------------------------------------

    @property
    def n_series(self) -> int:
        """Total series across all segments (excludes any update buffer)."""
        return self._snapshot.n_series

    def offsets(self) -> list[int]:
        """Global index of each segment's first series (cached per snapshot)."""
        return list(self._snapshot.offsets())

    def all_series(self) -> list[np.ndarray]:
        """Every series in global-index order (a fresh list)."""
        return [s for seg in self._snapshot.segments for s in seg.series]

    def _allocate_id(self) -> int:
        segment_id = self._next_id
        self._next_id += 1
        return segment_id

    def _bump(self) -> None:
        """Publish a structural change (lock held by the caller)."""
        self._publish()
        get_registry().gauge(
            "sts3_live_segments", "segments currently in the catalog"
        ).set(len(self._segments))

    def touch(self) -> None:
        """Bump the generation without a structural change.

        Buffered inserts use this: the segment layout is untouched, but
        anything keyed on the generation — calibration, the query-result
        cache — must stop trusting answers computed before the buffer
        changed.
        """
        with self._lock:
            self._publish()

    # -- lifecycle ------------------------------------------------------

    def bootstrap(self, series: list[np.ndarray]) -> Segment:
        """Build the base segment from the initial database series."""
        segment = Segment.build(
            self._allocate_id(), series, self.sigma, self.epsilon,
            value_padding=self.value_padding, context="build",
        )
        with self._lock:
            self._segments.append(segment)
            self._bump()
        return segment

    def seal(
        self, series: list[np.ndarray], grid: Grid, sets: list[np.ndarray]
    ) -> Segment:
        """Seal already-transformed series (a drained buffer) as a segment.

        The buffer's grid and set representations are adopted verbatim,
        so sealing does zero transform work — this is what turns a
        flush from O(|database|) into O(|buffer|).
        """
        with span("segment.seal", series=len(series), segments=len(self._segments) + 1):
            segment = Segment(self._allocate_id(), series, grid, sets)
            with self._lock:
                self._segments.append(segment)
                self._bump()
        get_registry().counter(
            "sts3_segments_sealed_total", "buffer flushes sealed as new segments"
        ).inc()
        return segment

    def extend_last(self, series_item: np.ndarray) -> Segment:
        """Append one in-bound series to the newest segment (direct insert).

        The newest segment is *replaced* (segments are immutable) but
        keeps its segment ID — pinned snapshots go on serving the old
        object, and retirement hooks do not fire for the swap.
        """
        if not self._segments:
            raise ParameterError("cannot extend an empty catalog")
        extended = self._segments[-1].extend(series_item)
        with self._lock:
            self._segments[-1] = extended
            self._bump()
        return extended

    def adopt(self, series: list[np.ndarray], grid: Grid) -> Segment:
        """Append a segment with a *known* grid, re-transforming its series.

        Persistence uses this to reconstruct a catalog bit-identically:
        the archived grid is authoritative (re-deriving it from the
        series would tighten sealed segments' bounds and change
        similarities), only the derived sets are recomputed.
        """
        sets = [transform(s, grid) for s in series]
        count_transforms(len(series), "load")
        segment = Segment(self._allocate_id(), series, grid, sets)
        with self._lock:
            self._segments.append(segment)
            self._bump()
        return segment

    def adopt_lazy(
        self, grid: Grid, size: int, loader, payload_bytes: int = 0
    ) -> Segment:
        """Append a mapped segment whose payload loads on first touch.

        The zero-copy counterpart of :meth:`adopt`: the archived grid
        and manifest size are adopted now (enough for planning, offsets
        and ``len``), while series, sets, and transform accounting are
        deferred to :meth:`Segment._materialize` — an untouched segment
        costs no transforms and no resident payload bytes.
        """
        segment = Segment.lazy(
            self._allocate_id(), grid, size, loader, payload_bytes=payload_bytes
        )
        with self._lock:
            self._segments.append(segment)
            self._bump()
        return segment

    def compact(self, min_size: int | None = None) -> int:
        """Merge segments; returns how many segments were merged away.

        With ``min_size=None`` every segment merges into one (a full
        rebuild: new tight bound + ``value_padding``, every series
        re-transformed — bit-identical to constructing from scratch).
        Otherwise each maximal run of *consecutive* segments smaller
        than ``min_size`` is merged, which bounds catalog growth under
        sustained inserts while leaving big segments untouched.
        """
        with self._lock:
            if min_size is None:
                runs = [(0, len(self._segments))] if len(self._segments) > 1 else []
            else:
                if min_size < 1:
                    raise ParameterError(f"min_size must be >= 1, got {min_size}")
                runs, start = [], None
                for i, seg in enumerate(self._segments):
                    if len(seg) < min_size:
                        start = i if start is None else start
                        continue
                    if start is not None and i - start > 1:
                        runs.append((start, i))
                    start = None
                if start is not None and len(self._segments) - start > 1:
                    runs.append((start, len(self._segments)))
            merged_away = 0
            for start, stop in reversed(runs):
                group = self._segments[start:stop]
                series = [s for seg in group for s in seg.series]
                with span("segment.compact", segments=len(group), series=len(series)):
                    merged = Segment.build(
                        self._allocate_id(), series, self.sigma, self.epsilon,
                        value_padding=self.value_padding, context="compact",
                    )
                    self._segments[start:stop] = [merged]
                get_registry().counter(
                    "sts3_rebuilds_total", "segment-merging rebuilds (compactions)"
                ).inc()
                merged_away += len(group) - 1
            if merged_away:
                self._bump()
        return merged_away

    def merge_run(self, start: int, stop: int) -> Segment:
        """Merge segments ``[start, stop)`` into one (synchronous path).

        Used by WAL replay of journaled background merges and by
        offline ``sts3 maintain``: the merged segment is built under
        the lock, bit-identical to the background path — ``Segment.build``
        over the run's series in global order is deterministic, and the
        ID is allocated at swap time either way, so replaying a
        ``merge`` record reproduces the live mutation exactly.
        """
        with self._lock:
            self._check_run(start, stop)
            group = self._segments[start:stop]
            series = [s for seg in group for s in seg.series]
            with span("segment.compact", segments=len(group), series=len(series)):
                merged = Segment.build(
                    self._allocate_id(), series, self.sigma, self.epsilon,
                    value_padding=self.value_padding, context="compact",
                )
                self._segments[start:stop] = [merged]
            get_registry().counter(
                "sts3_rebuilds_total", "segment-merging rebuilds (compactions)"
            ).inc()
            self._bump()
        return merged

    def build_merged(self, run: tuple[Segment, ...]) -> Segment:
        """Build (but do not publish) the merge of ``run`` — off-lock.

        The background engine calls this against a *pinned* snapshot's
        segments so the expensive rebuild happens without holding any
        lock; the result carries a provisional ID and must go through
        :meth:`splice_run` to enter the catalog.
        """
        series = [s for seg in run for s in seg.series]
        return Segment.build(
            -1, series, self.sigma, self.epsilon,
            value_padding=self.value_padding, context="compact",
        )

    def locate_run(self, run: tuple[Segment, ...]) -> int | None:
        """Position of ``run`` as a consecutive identity-slice, or None.

        None means the layout changed under the builder (a concurrent
        compact/flush replaced one of the run's objects) and the
        pre-built merge must be abandoned.  ``extend_last`` only
        replaces the newest segment, so merge plans that exclude it
        stay locatable across direct inserts.
        """
        with self._lock:
            segments = self._segments
            span_len = len(run)
            for start in range(len(segments) - span_len + 1):
                if segments[start] is run[0]:
                    if all(segments[start + i] is run[i] for i in range(span_len)):
                        return start
                    return None
        return None

    def splice_run(
        self, start: int, run: tuple[Segment, ...], merged: Segment
    ) -> Segment:
        """Publish a pre-built merged segment in place of ``run``.

        Re-verifies the identity slice at ``start`` under the lock (the
        caller's ``locate_run`` answer could be stale unless it holds
        the database mutation lock across both calls), assigns the real
        segment ID, and swaps atomically.
        """
        with self._lock:
            segments = self._segments
            stop = start + len(run)
            if stop > len(segments) or any(
                segments[start + i] is not run[i] for i in range(len(run))
            ):
                raise ParameterError("catalog changed under a pre-built merge")
            merged.segment_id = self._allocate_id()
            self._segments[start:stop] = [merged]
            get_registry().counter(
                "sts3_rebuilds_total", "segment-merging rebuilds (compactions)"
            ).inc()
            self._bump()
        return merged

    def _check_run(self, start: int, stop: int) -> None:
        if not (0 <= start < stop <= len(self._segments)) or stop - start < 2:
            raise ParameterError(
                f"invalid merge run [{start}, {stop}) over "
                f"{len(self._segments)} segments"
            )

    def quarantine(self, record: QuarantineRecord) -> None:
        """Record a payload that failed verification during load.

        The catalog keeps serving the segments that did verify; the
        planner marks every query against it degraded
        (``degraded_reason="quarantine"``), and the
        ``sts3_quarantined_segments`` gauge makes the loss visible to
        operators before anyone notices missing neighbours.
        """
        with self._lock:
            self._quarantined.append(record)
            self._publish()
        get_registry().gauge(
            "sts3_quarantined_segments",
            "archive payloads quarantined by checksum verification",
        ).set(len(self._quarantined))

    # -- diagnostics ----------------------------------------------------

    def covering_bound(self) -> Bound:
        """Smallest bound covering every segment's grid bound."""
        return self._snapshot.covering_bound()

    def describe(self) -> list[dict]:
        """Per-segment stats rows, in global-index order."""
        snapshot = self._snapshot
        rows = []
        for offset, seg in zip(snapshot.offsets(), snapshot.segments):
            row = seg.stats()
            row["offset"] = offset
            rows.append(row)
        return rows
