"""Index-based STS3 (Algorithm 3): inverted list + counter array.

An inverted list maps each cell ID to the series that contain it.  At
query time the lists of the query's cells are concatenated and a
counter array (``intersection`` in the paper) tallies how often each
series appears — which equals ``|S ∩ Q|`` — so the Jaccard similarity
of every intersecting series falls out of one ``bincount``.  Series
sharing no cell with the query are never touched, which is the point:
"most time series in D have little intersection with Q".

Implementation: rather than a dict of Python lists, the postings are
stored as two parallel sorted arrays (``cells``, ``owners``); the
postings of one cell are located by binary search.  An ablation bench
compares this dense layout against a dict-of-arrays variant (also
provided here as :class:`DictInvertedIndex`).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import span
from .result import Neighbor, QueryResult, SearchStats
from .selection import top_k_indices

__all__ = ["IndexedSearcher", "DictInvertedIndex"]


class IndexedSearcher:
    """Inverted-list k-NN search over a list of cell-ID sets."""

    def __init__(self, sets: list[np.ndarray]):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        self.sets = sets
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        owners = np.repeat(
            np.arange(len(sets), dtype=np.int64), self.lengths
        )
        cells = np.concatenate(sets) if sets else np.empty(0, dtype=np.int64)
        order = np.argsort(cells, kind="stable")
        #: postings sorted by cell ID; owners aligned with cells.
        self._cells = cells[order]
        self._owners = owners[order]

    def __len__(self) -> int:
        return len(self.sets)

    def intersection_counts(self, query_set: np.ndarray) -> np.ndarray:
        """``|S_i ∩ Q|`` for every database series ``i`` (lines 1-5).

        The counter-array refresh of Algorithm 3, vectorized: gather
        the postings of each query cell and ``bincount`` the owners.
        """
        left = np.searchsorted(self._cells, query_set, side="left")
        right = np.searchsorted(self._cells, query_set, side="right")
        hits = [self._owners[lo:hi] for lo, hi in zip(left, right) if hi > lo]
        if not hits:
            return np.zeros(len(self.sets), dtype=np.int64)
        return np.bincount(np.concatenate(hits), minlength=len(self.sets))

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        """Return the ``k`` most Jaccard-similar sets to ``query_set``."""
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        with span("filter"):
            counts = self.intersection_counts(query_set)
        with span("refine"):
            q_len = len(query_set)
            union = self.lengths + q_len - counts
            sims = np.where(union > 0, counts / np.maximum(union, 1), 1.0)

        stats = SearchStats(
            candidates=len(self.sets),
            exact_computations=int(np.count_nonzero(counts)),
            pruned=int(len(self.sets) - np.count_nonzero(counts)),
        )
        # Top-k with deterministic ties: similarity desc, index asc —
        # O(n) selection instead of a full lexsort.
        with span("select_topk"):
            order = top_k_indices(sims, k)
            neighbors = [
                Neighbor(similarity=float(sims[i]), index=int(i)) for i in order
            ]
        stats.final_candidates = len(neighbors)
        return QueryResult(neighbors=neighbors, stats=stats)


class DictInvertedIndex:
    """Dict-of-arrays inverted list — the ablation counterpart.

    Functionally identical to :class:`IndexedSearcher`; kept to measure
    the cost of hash lookups versus binary search on the sorted
    postings (DESIGN.md §6).
    """

    def __init__(self, sets: list[np.ndarray]):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        self.sets = sets
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        postings: dict[int, list[int]] = {}
        for owner, cell_set in enumerate(sets):
            for cell in cell_set.tolist():
                postings.setdefault(cell, []).append(owner)
        self._postings = {
            cell: np.asarray(ids, dtype=np.int64) for cell, ids in postings.items()
        }

    def intersection_counts(self, query_set: np.ndarray) -> np.ndarray:
        hits = [
            self._postings[cell]
            for cell in query_set.tolist()
            if cell in self._postings
        ]
        if not hits:
            return np.zeros(len(self.sets), dtype=np.int64)
        return np.bincount(np.concatenate(hits), minlength=len(self.sets))

    def query(self, query_set: np.ndarray, k: int = 1) -> QueryResult:
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        counts = self.intersection_counts(query_set)
        union = self.lengths + len(query_set) - counts
        sims = np.where(union > 0, counts / np.maximum(union, 1), 1.0)
        order = top_k_indices(sims, k)
        neighbors = [Neighbor(similarity=float(sims[i]), index=int(i)) for i in order]
        stats = SearchStats(
            candidates=len(self.sets),
            exact_computations=int(np.count_nonzero(counts)),
            pruned=int(len(self.sets) - np.count_nonzero(counts)),
            final_candidates=len(neighbors),
        )
        return QueryResult(neighbors=neighbors, stats=stats)
