"""FastDTW (Salvador & Chan 2004): linear-time approximate DTW.

Recursively (1) coarsen both series by averaging adjacent pairs,
(2) solve the coarse problem, (3) project its warping path back up and
(4) refine with an exact DTW restricted to the projected cells expanded
by ``radius``.  ``radius=0`` — the setting the paper benchmarks, "which
gives it optimal speed" — keeps only the projected cells themselves
plus their immediate expansion.

Because every level's window has O(n·(8·radius + 14)) cells (the
constant the paper quotes in Section 7.2.1), total work is linear in
the series length, at the price of an approximate distance: FastDTW may
overestimate the true DTW distance, never underestimate it (property
checked by the test suite).
"""

from __future__ import annotations

import numpy as np

from ..exceptions import ParameterError
from .dtw import dtw_with_path

__all__ = ["fastdtw", "coarsen", "expand_window"]

#: below this length the exact DTW is cheap enough to run directly.
_MIN_SIZE_FACTOR = 2


def coarsen(series: np.ndarray) -> np.ndarray:
    """Halve the resolution by averaging adjacent point pairs.

    An odd trailing point is carried over unaveraged so no data is
    dropped.
    """
    n = len(series)
    half = n // 2
    pairs = series[: 2 * half].reshape(half, 2, *series.shape[1:]).mean(axis=1)
    if n % 2:
        return np.concatenate([pairs, series[-1:]])
    return pairs


def expand_window(
    path: list[tuple[int, int]], n: int, m: int, radius: int
) -> set[tuple[int, int]]:
    """Project a coarse warping path to fine resolution plus ``radius``.

    Each coarse cell (i, j) covers the fine block
    (2i..2i+1, 2j..2j+1); the block is then dilated by ``radius`` cells
    in every direction and clipped to the matrix.  The endpoints are
    forced into the window so a path always exists.
    """
    window: set[tuple[int, int]] = set()
    for ci, cj in path:
        for i in range(2 * ci - radius, 2 * ci + 2 + radius):
            if not 0 <= i < n:
                continue
            for j in range(2 * cj - radius, 2 * cj + 2 + radius):
                if 0 <= j < m:
                    window.add((i, j))
    window.add((0, 0))
    window.add((n - 1, m - 1))
    # Guarantee connectivity around the forced endpoints: a cell whose
    # predecessors were all clipped away would make the path infeasible.
    for i, j in ((0, 0), (n - 1, m - 1)):
        for di in (-1, 0, 1):
            for dj in (-1, 0, 1):
                if 0 <= i + di < n and 0 <= j + dj < m:
                    window.add((i + di, j + dj))
    return window


def fastdtw(
    a: np.ndarray,
    b: np.ndarray,
    radius: int = 0,
) -> tuple[float, list[tuple[int, int]]]:
    """Approximate DTW distance and warping path.

    Returns ``(distance, path)``.  The distance is an upper bound on
    the exact DTW distance; larger ``radius`` tightens it at higher
    cost.
    """
    if radius < 0:
        raise ParameterError(f"radius must be >= 0, got {radius}")
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    min_size = radius + _MIN_SIZE_FACTOR
    if len(a) <= min_size or len(b) <= min_size:
        return dtw_with_path(a, b)
    coarse_a = coarsen(a)
    coarse_b = coarsen(b)
    _, coarse_path = fastdtw(coarse_a, coarse_b, radius=radius)
    window = expand_window(coarse_path, len(a), len(b), radius)
    try:
        return dtw_with_path(a, b, window_cells=window)
    except ParameterError:
        # Degenerate clipping can disconnect a tiny window; fall back
        # to the exact computation rather than fail the distance call.
        return dtw_with_path(a, b)
