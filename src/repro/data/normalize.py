"""Z-normalization of time series (paper Section 2, "Preprocessing").

Every algorithm in the paper assumes its inputs are z-normalized:
``Norm(S) = (S - mean(S)) / std(S)``.  For multi-dimensional series we
normalize each value dimension independently, which is the standard UCR
convention and what Section 5.1 implies.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = ["z_normalize", "z_normalize_all", "is_z_normalized"]

#: Standard deviations below this are treated as zero (constant series).
_STD_FLOOR = 1e-12


def z_normalize(series: np.ndarray) -> np.ndarray:
    """Return a z-normalized copy of ``series``.

    A constant series has zero standard deviation; dividing by it would
    produce NaNs, so constant series (and constant dimensions of a
    multi-dimensional series) are mapped to all zeros instead.  This is
    the conventional treatment in the UCR tooling and keeps downstream
    grid assignment well-defined.
    """
    arr = np.asarray(series, dtype=np.float64)
    # Two-pass centering: a second subtraction removes the residual mean
    # that catastrophic cancellation leaves for near-constant series
    # with large offsets, making normalization numerically idempotent.
    centered = arr - arr.mean(axis=0)
    centered -= centered.mean(axis=0)
    std = centered.std(axis=0)
    if arr.ndim == 1:
        if std < _STD_FLOOR:
            return np.zeros_like(arr)
        return centered / std
    safe_std = np.where(std < _STD_FLOOR, 1.0, std)
    out = centered / safe_std
    out[:, std < _STD_FLOOR] = 0.0
    return out


def z_normalize_all(series_list: Iterable[np.ndarray]) -> list[np.ndarray]:
    """Z-normalize every series in an iterable, returning a list."""
    return [z_normalize(s) for s in series_list]


def is_z_normalized(series: np.ndarray, tolerance: float = 1e-6) -> bool:
    """Check whether ``series`` already has ~zero mean and ~unit std.

    An all-zero series also counts: it is the canonical normalization
    of a constant series (see :func:`z_normalize`).
    """
    arr = np.asarray(series, dtype=np.float64)
    mean_ok = bool(np.all(np.abs(arr.mean(axis=0)) <= tolerance))
    std = arr.std(axis=0)
    std_ok = bool(np.all((np.abs(std - 1.0) <= tolerance) | (std <= tolerance)))
    return mean_ok and std_ok
