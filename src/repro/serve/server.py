"""Network front ends of the query service.

Two transports over one :class:`~repro.serve.service.QueryService`:

- the **binary protocol** (:mod:`repro.serve.protocol`) on the main
  port — length-prefixed frames with raw float64 series blobs; the
  path clients should use for anything latency- or fidelity-sensitive,
- an **HTTP/1.1 + JSON adapter** on a second port — ``curl``-able
  endpoints for health checks, Prometheus scrapes, and ad-hoc queries
  where copy-pasteable beats compact.

Both share the service's admission control, coalescing windows, and
metrics; the adapter is a thin schema translation, not a second
implementation.  Each binary connection dispatches every request as
its own task (responses carry the request ``id`` and may arrive out of
order), so pipelined clients coalesce just as well as a fleet of
single-shot ones.

:class:`ServerThread` embeds a running server in a background thread —
what the tests and ``benchmarks/bench_serve.py`` use; :func:`serve` is
the long-running entry behind ``sts3 serve``, with signal-triggered
graceful drain.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Awaitable, Callable

import numpy as np

from ..obs import get_registry, span
from .protocol import (
    DEFAULT_PORT,
    HTTP_STATUS,
    PROTOCOL_VERSION,
    ProtocolError,
    ServeError,
    read_message,
    result_to_wire,
    write_message,
)
from .service import QueryService, ServiceConfig

__all__ = ["STS3Server", "ServerThread", "serve"]


def _float_or_none(value, name: str) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError):
        raise ServeError("BAD_REQUEST", f"{name} must be a number or null")


def _int_or_none(value, name: str) -> int | None:
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError):
        raise ServeError("BAD_REQUEST", f"{name} must be an integer or null")


def _query_params(header: dict) -> dict:
    """Shared k/method/scale/deadline parsing for query and batch ops."""
    method = header.get("method", "auto")
    if not isinstance(method, str):
        raise ServeError("BAD_REQUEST", "method must be a string")
    return {
        "k": _int_or_none(header.get("k", 1), "k") or 1,
        "method": method,
        "scale": _int_or_none(header.get("scale"), "scale"),
        "max_scale": _int_or_none(header.get("max_scale"), "max_scale"),
        "deadline_ms": _float_or_none(header.get("deadline_ms"), "deadline_ms"),
    }


def _series_from_json(values, name: str = "series") -> np.ndarray:
    try:
        series = np.asarray(values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise ServeError("BAD_REQUEST", f"{name} must be a numeric array") from exc
    if series.ndim != 1 or series.size == 0:
        raise ServeError("BAD_REQUEST", f"{name} must be a non-empty 1-D array")
    return series


class STS3Server:
    """Asyncio server pairing the binary protocol with an HTTP adapter.

    ``port``/``http_port`` may be 0 to bind ephemeral ports; the bound
    numbers are available after :meth:`start` (what the tests use to
    avoid port collisions).  ``http_port=None`` disables the adapter.
    """

    def __init__(
        self,
        service: QueryService,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        http_port: int | None = None,
    ):
        self.service = service
        self.host = host
        self.port = port
        self.http_port = http_port
        self._binary: asyncio.Server | None = None
        self._http: asyncio.Server | None = None

    async def start(self) -> None:
        """Bind both listeners and update the ports with bound values."""
        self._binary = await asyncio.start_server(
            self._handle_binary, self.host, self.port
        )
        self.port = self._binary.sockets[0].getsockname()[1]
        if self.http_port is not None:
            self._http = await asyncio.start_server(
                self._handle_http, self.host, self.http_port
            )
            self.http_port = self._http.sockets[0].getsockname()[1]

    async def stop(self, drain: bool = True) -> None:
        """Graceful shutdown: stop listening, drain, release the engine."""
        for server in (self._binary, self._http):
            if server is not None:
                server.close()
        if drain:
            await self.service.drain()
        for server in (self._binary, self._http):
            if server is not None:
                await server.wait_closed()
        self.service.close()

    # -- binary protocol -------------------------------------------------

    async def _handle_binary(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peer = writer.get_extra_info("peername")
        default_client = f"{peer[0]}:{peer[1]}" if peer else "unknown"
        gauge = get_registry().gauge(
            "sts3_server_connections", "open binary-protocol connections"
        )
        gauge.inc()
        write_lock = asyncio.Lock()
        tasks: set[asyncio.Task] = set()

        async def respond(header: dict, arrays=()) -> None:
            async with write_lock:
                try:
                    await write_message(writer, header, arrays)
                except (ConnectionError, RuntimeError):
                    pass  # client went away; nothing to tell it

        try:
            while True:
                try:
                    message = await read_message(reader)
                except ProtocolError as exc:
                    # The stream is no longer frame-aligned; answer once
                    # and hang up rather than misparse what follows.
                    await respond(
                        {
                            "v": PROTOCOL_VERSION,
                            "status": "error",
                            "code": "BAD_REQUEST",
                            "message": str(exc),
                        }
                    )
                    break
                if message is None:
                    break
                task = asyncio.get_running_loop().create_task(
                    self._dispatch_binary(message, default_client, respond)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            for task in tasks:
                task.cancel()
            gauge.inc(-1)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _dispatch_binary(
        self,
        message: tuple[dict, list[np.ndarray]],
        default_client: str,
        respond: Callable[..., Awaitable[None]],
    ) -> None:
        header, arrays = message
        reply: dict = {"v": PROTOCOL_VERSION, "id": header.get("id")}
        try:
            version = header.get("v", PROTOCOL_VERSION)
            if version != PROTOCOL_VERSION:
                raise ServeError(
                    "BAD_REQUEST",
                    f"protocol version {version!r} not supported "
                    f"(server speaks {PROTOCOL_VERSION})",
                )
            op = header.get("op")
            client = header.get("client") or default_client
            if not isinstance(client, str):
                raise ServeError("BAD_REQUEST", "client must be a string")
            with span("server.request", op=str(op), transport="binary"):
                body = await self._execute(op, header, arrays, client)
            reply.update(status="ok", **body)
        except ServeError as exc:
            reply.update(status="error", code=exc.code, message=str(exc))
        except Exception as exc:  # noqa: BLE001 — never tear the connection
            reply.update(status="error", code="INTERNAL", message=str(exc))
        await respond(reply)

    async def _execute(
        self, op, header: dict, arrays: list[np.ndarray], client: str
    ) -> dict:
        """Run one operation against the service; returns reply fields."""
        service = self.service
        if op == "ping":
            return {
                "pong": True,
                "n_series": len(service.db),
                "draining": service.draining,
            }
        if op == "query":
            if len(arrays) != 1:
                raise ServeError(
                    "BAD_REQUEST", "query carries exactly one series blob"
                )
            result = await service.query(
                arrays[0], client=client, **_query_params(header)
            )
            return {"result": result_to_wire(result)}
        if op == "batch":
            if not arrays:
                raise ServeError(
                    "BAD_REQUEST", "batch carries one blob per query"
                )
            results = await service.query_batch(
                arrays, client=client, **_query_params(header)
            )
            return {"results": [result_to_wire(r) for r in results]}
        if op == "insert":
            if len(arrays) != 1:
                raise ServeError(
                    "BAD_REQUEST", "insert carries exactly one series blob"
                )
            return await service.insert(arrays[0], client=client)
        if op == "verify":
            problems = await service.verify(client=client)
            return {"problems": problems}
        if op == "metrics":
            return {"text": get_registry().to_prometheus()}
        raise ServeError("BAD_REQUEST", f"unknown op {op!r}")

    # -- HTTP adapter ----------------------------------------------------

    async def _handle_http(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """One request per connection (``Connection: close`` semantics)."""
        status, body, content_type = 500, b"{}", "application/json"
        try:
            request_line = await reader.readline()
            parts = request_line.decode("latin-1").split()
            if len(parts) < 2:
                return
            http_method, path = parts[0], parts[1]
            content_length = 0
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
                name, _, value = line.decode("latin-1").partition(":")
                if name.strip().lower() == "content-length":
                    content_length = int(value.strip())
            raw = (
                await reader.readexactly(content_length)
                if content_length
                else b""
            )
            status, body, content_type = await self._http_route(
                http_method, path, raw
            )
        except (ConnectionError, asyncio.IncompleteReadError):
            return
        except Exception as exc:  # noqa: BLE001 — malformed HTTP input
            status, body = 400, json.dumps(
                {"status": "error", "code": "BAD_REQUEST", "message": str(exc)}
            ).encode()
        finally:
            reason = {200: "OK", 400: "Bad Request", 404: "Not Found",
                      429: "Too Many Requests", 503: "Service Unavailable",
                      500: "Internal Server Error"}.get(status, "OK")
            head = (
                f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            try:
                writer.write(head.encode("latin-1") + body)
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _http_route(
        self, http_method: str, path: str, raw: bytes
    ) -> tuple[int, bytes, str]:
        service = self.service
        if http_method == "GET" and path == "/healthz":
            payload = {
                "status": "draining" if service.draining else "ok",
                "n_series": len(service.db),
                "pending": service.pending,
            }
            status = getattr(service.db, "maintenance_status", None)
            if status is not None:
                m = status()
                over_segments = (
                    m["max_segments"] is not None
                    and m["live_segments"] > m["max_segments"]
                )
                over_budget = (
                    m["memory_budget_bytes"] is not None
                    and m["resident_bytes"] > m["memory_budget_bytes"]
                )
                payload["maintenance"] = {
                    "engine": m["engine"],
                    "wal_lag": m["wal_lag"],
                    "live_segments": m["live_segments"],
                    "max_segments": m["max_segments"],
                    "segments_over_threshold": over_segments,
                    "resident_bytes": m["resident_bytes"],
                    "memory_budget_bytes": m["memory_budget_bytes"],
                    "over_memory_budget": over_budget,
                    "pinned_snapshots": m["pinned_snapshots"],
                }
            code = 503 if service.draining else 200
            return code, json.dumps(payload).encode(), "application/json"
        if http_method == "GET" and path == "/metrics":
            text = get_registry().to_prometheus()
            return 200, text.encode(), "text/plain; version=0.0.4"
        if http_method != "POST" or not path.startswith("/v1/"):
            return 404, json.dumps(
                {"status": "error", "code": "BAD_REQUEST",
                 "message": f"no route for {http_method} {path}"}
            ).encode(), "application/json"
        try:
            try:
                payload = json.loads(raw.decode("utf-8")) if raw else {}
            except (UnicodeDecodeError, json.JSONDecodeError) as exc:
                raise ServeError("BAD_REQUEST", f"body is not JSON: {exc}")
            if not isinstance(payload, dict):
                raise ServeError("BAD_REQUEST", "body must be a JSON object")
            client = payload.get("client") or "http"
            op = path[len("/v1/"):]
            with span("server.request", op=op, transport="http"):
                body = await self._http_execute(op, payload, client)
            return 200, json.dumps({"status": "ok", **body}).encode(), \
                "application/json"
        except ServeError as exc:
            code = HTTP_STATUS[exc.code]
            return code, json.dumps(
                {"status": "error", "code": exc.code, "message": str(exc)}
            ).encode(), "application/json"
        except Exception as exc:  # noqa: BLE001
            return 500, json.dumps(
                {"status": "error", "code": "INTERNAL", "message": str(exc)}
            ).encode(), "application/json"

    async def _http_execute(self, op: str, payload: dict, client: str) -> dict:
        service = self.service
        if op == "query":
            series = _series_from_json(payload.get("series"))
            result = await service.query(
                series, client=client, **_query_params(payload)
            )
            return {"result": result_to_wire(result)}
        if op == "batch":
            queries = payload.get("queries")
            if not isinstance(queries, list) or not queries:
                raise ServeError(
                    "BAD_REQUEST", "queries must be a non-empty list"
                )
            batch = [
                _series_from_json(q, name=f"queries[{i}]")
                for i, q in enumerate(queries)
            ]
            results = await service.query_batch(
                batch, client=client, **_query_params(payload)
            )
            return {"results": [result_to_wire(r) for r in results]}
        if op == "insert":
            series = _series_from_json(payload.get("series"))
            return await service.insert(series, client=client)
        if op == "verify":
            return {"problems": await service.verify(client=client)}
        raise ServeError("BAD_REQUEST", f"unknown op {op!r}")


class ServerThread:
    """A running server on a background event loop, for embedding.

    The tests and ``benchmarks/bench_serve.py`` use this to stand up a
    real TCP server inside one process::

        with ServerThread(db, ServiceConfig()) as handle:
            client = ServeClient("127.0.0.1", handle.port)

    Entering the context starts the loop thread and blocks until the
    ports are bound; exiting drains and joins.
    """

    def __init__(
        self,
        db,
        config: ServiceConfig | None = None,
        host: str = "127.0.0.1",
        http_port: int | None = 0,
    ):
        self.service = QueryService(db, config)
        self.server = STS3Server(self.service, host=host, port=0,
                                 http_port=http_port)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()

    @property
    def port(self) -> int:
        return self.server.port

    @property
    def http_port(self) -> int | None:
        return self.server.http_port

    def start(self) -> "ServerThread":
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._run, name="sts3-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=10):
            raise RuntimeError("server thread failed to start")
        return self

    def _run(self) -> None:
        assert self._loop is not None
        asyncio.set_event_loop(self._loop)
        self._loop.run_until_complete(self.server.start())
        self._started.set()
        self._loop.run_forever()
        # run_until_complete below (in stop) happens via call_soon_threadsafe

    def submit(self, coro) -> "asyncio.Future":
        """Schedule a coroutine on the server loop from any thread."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop)

    def stop(self, drain: bool = True) -> None:
        if self._loop is None:
            return
        self.submit(self.server.stop(drain=drain)).result(timeout=30)
        self._loop.call_soon_threadsafe(self._loop.stop)
        assert self._thread is not None
        self._thread.join(timeout=10)
        self._loop.close()
        self._loop = None

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


async def serve(
    db,
    config: ServiceConfig | None = None,
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    http_port: int | None = DEFAULT_PORT + 1,
    ready: Callable[[STS3Server], None] | None = None,
) -> None:
    """Run a server until SIGINT/SIGTERM, then drain and exit.

    The ``sts3 serve`` entry point.  ``ready`` (if given) is called
    with the started server once ports are bound — the CLI uses it to
    print where the server is listening.
    """
    import signal

    service = QueryService(db, config)
    server = STS3Server(service, host=host, port=port, http_port=http_port)
    await server.start()
    if ready is not None:
        ready(server)
    stopping = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stopping.set)
        except (NotImplementedError, RuntimeError):
            pass  # platforms without signal handler support
    await stopping.wait()
    await server.stop(drain=True)
