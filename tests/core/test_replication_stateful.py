"""Hypothesis stateful drill of the replicated sharded engine.

The rule machine interleaves acked inserts, shipping rounds, network
partitions (and their heals), checkpoints, primary SIGKILLs, and
manual promotions, and checks after every step that

- no acked write is ever lost: every series the engine acknowledged
  is findable under its global id with similarity 1.0, through every
  read preference,
- replica reads are bit-identical to primary reads of the same engine
  (the bounded-staleness guard must hide every lagging follower),
- the id space never tears: ``len(db)`` equals the model's count.

This hunts the interleavings the example-based drills in
``test_replication.py`` can't reach: a partition healed across a
checkpoint, a promotion racing a stale follower, a kill directly
after a partition.  Process lifecycles make steps expensive, so the
machine runs few but deep examples.
"""

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.core.shard import ShardedDatabase, ShardError

LENGTH = 24
SHARDS = 2
REPLICAS = 1


def _series(seed: int) -> np.ndarray:
    return np.random.default_rng(seed).normal(size=LENGTH)


def _hex(results):
    return [
        [(n.index, float(n.similarity).hex()) for n in r.neighbors]
        for r in results
    ]


class ReplicationMachine(RuleBasedStateMachine):
    @initialize(seed=st.integers(0, 2**20))
    def build(self, seed):
        self.seed = seed
        import tempfile
        from pathlib import Path

        self.dir = Path(tempfile.mkdtemp(prefix="sts3-repl-"))
        base = [_series(seed + i) for i in range(24)]
        self.db = ShardedDatabase.build(
            base, SHARDS, self.dir / "shards",
            sigma=2, epsilon=0.5, normalize=False, replicas=REPLICAS,
        )
        #: every acked write: global id -> the exact array acked
        self.model = {i: s for i, s in enumerate(base)}

    # -- writes ----------------------------------------------------------

    @rule(offset=st.integers(0, 1000))
    def insert_acked(self, offset):
        series = _series(self.seed + 10_000 + offset)
        for _ in range(3):
            try:
                report = self.db.insert(series)
                break
            except ShardError:
                continue  # not acked; the client retries
        else:
            return  # never acked: the model must not see it either
        self.model[report["id"]] = series

    @rule()
    def checkpoint(self):
        self.db.save()

    # -- replication control ----------------------------------------------

    @rule()
    def ship(self):
        self.db.ship_replication()

    @rule(shard=st.integers(0, SHARDS - 1), flag=st.booleans())
    def partition(self, shard, flag):
        self.db._replicas.set_partitioned(shard, 0, flag)

    @rule(shard=st.integers(0, SHARDS - 1))
    def kill_primary(self, shard):
        self.db.kill_worker(shard)
        # the next read heals (failover when a follower is promotable,
        # restart-from-WAL otherwise); either way it must stay complete
        result = self.db.query(_series(self.seed), k=1)
        assert result.complete
        assert result.skipped_shards == []

    @rule(shard=st.integers(0, SHARDS - 1))
    def promote_manually(self, shard):
        self.db._replicas.set_partitioned(shard, 0, False)
        try:
            ready = self.db.promote(shard)
        except ShardError:
            return  # no promotable follower left for this shard
        assert ready["promoted"]

    # -- invariants --------------------------------------------------------

    @invariant()
    def no_acked_write_lost(self):
        assert len(self.db) == len(self.model)

    @rule(offset=st.integers(0, 1000))
    def acked_write_findable(self, offset):
        ids = sorted(self.model)
        series_id = ids[offset % len(ids)]
        for pref in ("primary", "replica", "nearest"):
            result = self.db.query(
                self.model[series_id], k=1, read_preference=pref
            )
            assert result.complete, pref
            assert result.neighbors[0].index == series_id, pref
            assert float(result.neighbors[0].similarity) == 1.0, pref

    @rule(offset=st.integers(0, 1000), k=st.integers(1, 5))
    def replica_reads_match_primary(self, offset, k):
        queries = [_series(self.seed + 30_000 + offset + i) for i in range(2)]
        expected = _hex(self.db.query_batch(queries, k=k))
        for pref in ("replica", "nearest"):
            got = self.db.query_batch(queries, k=k, read_preference=pref)
            assert all(r.complete for r in got), pref
            assert _hex(got) == expected, pref

    def teardown(self):
        import shutil

        if hasattr(self, "db"):
            self.db.close()
        if hasattr(self, "dir"):
            shutil.rmtree(self.dir, ignore_errors=True)


TestReplicationStateful = ReplicationMachine.TestCase
TestReplicationStateful.settings = settings(
    max_examples=6, stateful_step_count=8, deadline=None
)
