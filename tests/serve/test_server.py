"""End-to-end server tests: real TCP sockets, both transports.

A :class:`ServerThread` runs the asyncio server in-process; clients
are real blocking sockets (binary protocol) and ``http.client`` (the
HTTP adapter), so these tests cover framing, dispatch, and the service
behind them together.
"""

from __future__ import annotations

import http.client
import json
import socket
import struct
import threading

import numpy as np
import pytest

from repro.obs import get_registry
from repro.serve import (
    PROTOCOL_VERSION,
    ServeClient,
    ServeError,
    ServerThread,
    ServiceConfig,
)


@pytest.fixture
def server(db):
    with ServerThread(db, ServiceConfig(coalesce_window_ms=2.0)) as handle:
        yield handle


def http_request(server, method, path, payload=None):
    conn = http.client.HTTPConnection("127.0.0.1", server.http_port, timeout=10)
    body = json.dumps(payload) if payload is not None else None
    conn.request(method, path, body, {"Content-Type": "application/json"})
    response = conn.getresponse()
    raw = response.read()
    conn.close()
    return response, raw


class TestBinaryProtocol:
    def test_ping(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            reply = client.ping()
        assert reply["pong"] is True
        assert reply["v"] == PROTOCOL_VERSION
        assert reply["n_series"] > 0

    def test_query_parity_with_direct_call(self, db, server, queries):
        direct = [db.query(q, k=5, method="index") for q in queries[:4]]
        with ServeClient("127.0.0.1", server.port) as client:
            served = [client.query(q, k=5, method="index") for q in queries[:4]]
        for s, d in zip(served, direct):
            assert s.neighbors == d.neighbors
            assert s.stats == d.stats
            assert s.complete == d.complete

    def test_concurrent_clients_coalesce_and_agree(self, db, server, queries):
        # The acceptance scenario in miniature: N threads, one query
        # each, answers must match direct calls bit-for-bit.
        direct = [db.query(q, k=5, method="index") for q in queries]
        served = [None] * len(queries)
        errors = []

        def worker(i):
            try:
                with ServeClient("127.0.0.1", server.port) as client:
                    served[i] = client.query(queries[i], k=5, method="index")
            except Exception as exc:  # noqa: BLE001 — surfaced below
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,))
            for i in range(len(queries))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        for s, d in zip(served, direct):
            assert s.neighbors == d.neighbors
            assert s.stats == d.stats
        # Every query went through a window; how they grouped depends
        # on thread timing, but none may be lost or duplicated.
        snapshot = get_registry().histogram(
            "sts3_server_window_queries"
        ).series_snapshot()
        assert snapshot["sum"] == len(queries)

    def test_batch_op(self, db, server, queries):
        direct = db.query_batch(list(queries[:5]), k=3, method="index")
        with ServeClient("127.0.0.1", server.port) as client:
            served = client.query_batch(queries[:5], k=3, method="index")
        assert len(served) == 5
        for s, d in zip(served, direct):
            assert s.neighbors == d.neighbors

    def test_insert_then_query_sees_it(self, server, queries):
        with ServeClient("127.0.0.1", server.port) as client:
            before = client.ping()["n_series"]
            report = client.insert(queries[0])
            assert report["n_series"] == before + 1
            assert report["path"] in ("direct", "buffered")
            # The inserted series is its own best match.
            result = client.query(queries[0], k=1, method="index")
            assert result.neighbors[0].similarity == 1.0

    def test_verify_op(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            assert client.verify() == []

    def test_metrics_op(self, server, queries):
        with ServeClient("127.0.0.1", server.port) as client:
            client.query(queries[0], k=3)
            text = client.metrics()
        assert "sts3_server_requests_total" in text
        assert 'op="query"' in text

    def test_deadline_field_travels(self, db, server, queries):
        # A generous deadline completes; the field must round-trip
        # without perturbing the answer.
        direct = db.query(queries[0], k=5, method="index")
        with ServeClient("127.0.0.1", server.port) as client:
            served = client.query(
                queries[0], k=5, method="index", deadline_ms=60_000
            )
        assert served.neighbors == direct.neighbors

    def test_unknown_op_is_bad_request(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client._call({"op": "frobnicate"})
        assert excinfo.value.code == "BAD_REQUEST"

    def test_wrong_protocol_version_refused(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client._call({"op": "ping", "v": 99})
        assert excinfo.value.code == "BAD_REQUEST"
        assert "version" in str(excinfo.value)

    def test_query_without_blob_is_bad_request(self, server):
        with ServeClient("127.0.0.1", server.port) as client:
            with pytest.raises(ServeError) as excinfo:
                client._call({"op": "query", "k": 3})
        assert excinfo.value.code == "BAD_REQUEST"

    def test_garbage_frame_gets_error_then_close(self, server):
        with socket.create_connection(("127.0.0.1", server.port), timeout=10) as raw:
            # A framed payload that is not valid JSON.
            junk = b"\x00\x00\x00\x04junk"
            raw.sendall(struct.pack(">I", len(junk)) + junk)
            prefix = raw.recv(4)
            (length,) = struct.unpack(">I", prefix)
            payload = b""
            while len(payload) < length:
                chunk = raw.recv(length - len(payload))
                if not chunk:
                    break
                payload += chunk
            (head_len,) = struct.unpack(">I", payload[:4])
            reply = json.loads(payload[4:4 + head_len])
            assert reply["status"] == "error"
            assert reply["code"] == "BAD_REQUEST"
            # Server hangs up after a framing error.
            assert raw.recv(1) == b""


class TestHttpAdapter:
    def test_healthz(self, server):
        response, raw = http_request(server, "GET", "/healthz")
        assert response.status == 200
        payload = json.loads(raw)
        assert payload["status"] == "ok"
        assert payload["n_series"] > 0

    def test_metrics_exposition(self, server, queries):
        with ServeClient("127.0.0.1", server.port) as client:
            client.query(queries[0], k=3)
        response, raw = http_request(server, "GET", "/metrics")
        assert response.status == 200
        assert response.getheader("Content-Type", "").startswith("text/plain")
        assert b"sts3_server_requests_total" in raw

    def test_query_endpoint_parity(self, db, server, queries):
        direct = db.query(queries[0], k=3, method="index")
        response, raw = http_request(
            server, "POST", "/v1/query",
            {"series": [float(x) for x in queries[0]], "k": 3,
             "method": "index"},
        )
        assert response.status == 200
        payload = json.loads(raw)
        served = payload["result"]["neighbors"]
        assert [i for i, _ in served] == [n.index for n in direct.neighbors]
        # JSON floats are repr round-trips: similarity is bit-exact.
        for (_, sim), neighbor in zip(served, direct.neighbors):
            assert sim == neighbor.similarity

    def test_batch_endpoint(self, db, server, queries):
        direct = db.query_batch(list(queries[:3]), k=2, method="index")
        response, raw = http_request(
            server, "POST", "/v1/batch",
            {"queries": [[float(x) for x in q] for q in queries[:3]], "k": 2,
             "method": "index"},
        )
        assert response.status == 200
        results = json.loads(raw)["results"]
        assert len(results) == 3
        for wire, d in zip(results, direct):
            assert [i for i, _ in wire["neighbors"]] == [
                n.index for n in d.neighbors
            ]

    def test_insert_endpoint(self, server, queries):
        response, raw = http_request(
            server, "POST", "/v1/insert",
            {"series": [float(x) for x in queries[1]]},
        )
        assert response.status == 200
        payload = json.loads(raw)
        assert payload["status"] == "ok"
        assert payload["path"] in ("direct", "buffered")

    def test_verify_endpoint(self, server):
        response, raw = http_request(server, "POST", "/v1/verify", {})
        assert response.status == 200
        assert json.loads(raw)["problems"] == []

    def test_bad_body_is_400(self, server):
        conn = http.client.HTTPConnection(
            "127.0.0.1", server.http_port, timeout=10
        )
        conn.request(
            "POST", "/v1/query", "not json",
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        payload = json.loads(response.read())
        conn.close()
        assert response.status == 400
        assert payload["code"] == "BAD_REQUEST"

    def test_missing_series_is_400(self, server):
        response, raw = http_request(server, "POST", "/v1/query", {"k": 3})
        assert response.status == 400

    def test_unknown_route_is_404(self, server):
        response, raw = http_request(server, "GET", "/nope")
        assert response.status == 404

    def test_rate_limit_maps_to_429(self, db):
        config = ServiceConfig(
            coalesce_window_ms=0.0, rate_limit=1.0, rate_burst=1
        )
        with ServerThread(db, config) as handle:
            handle.service.clock = lambda: 0.0  # bucket never refills
            body = {"series": [0.0, 1.0, 2.0, 1.0] * 8, "k": 1,
                    "client": "alice"}
            first, _ = http_request(handle.server, "POST", "/v1/query", body)
            assert first.status == 200
            second, raw = http_request(handle.server, "POST", "/v1/query", body)
            assert second.status == 429
            assert json.loads(raw)["code"] == "RATE_LIMITED"
            handle.service._draining = True  # skip the drain wait on exit


class TestLifecycle:
    def test_drain_on_stop_counts_connections_down(self, db, queries):
        with ServerThread(db, ServiceConfig()) as handle:
            with ServeClient("127.0.0.1", handle.port) as client:
                client.query(queries[0], k=3)
                gauge = get_registry().gauge("sts3_server_connections")
                assert gauge.value() == 1
        assert get_registry().gauge("sts3_server_connections").value() == 0

    def test_server_after_drain_refuses(self, db, queries):
        handle = ServerThread(db, ServiceConfig()).start()
        try:
            handle.submit(handle.service.drain()).result(timeout=30)
            with ServeClient("127.0.0.1", handle.port) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.query(queries[0], k=3)
            assert excinfo.value.code == "DRAINING"
            response, raw = http_request(handle.server, "GET", "/healthz")
            assert response.status == 503
            assert json.loads(raw)["status"] == "draining"
        finally:
            handle.stop()


class TestServeCommand:
    def test_cli_serve_end_to_end(self, tmp_path):
        # The real `sts3 serve` process: synthetic db, ephemeral ports,
        # one query over the wire, SIGINT drains and exits 0.
        import re
        import signal
        import subprocess
        import sys
        import time

        import numpy as np

        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--http-port", "0", "--series", "60", "--length", "32"],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True,
        )
        try:
            port = None
            deadline = time.monotonic() + 30
            lines = []
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                lines.append(line)
                match = re.search(r"binary protocol on .*:(\d+)", line)
                if match:
                    port = int(match.group(1))
                    break
            assert port is not None, "".join(lines)
            with ServeClient("127.0.0.1", port) as client:
                assert client.ping()["n_series"] == 60
                result = client.query(
                    np.sin(np.linspace(0, 6, 32)), k=3, method="index"
                )
                assert len(result.neighbors) == 3
            proc.send_signal(signal.SIGINT)
            assert proc.wait(timeout=30) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10)
