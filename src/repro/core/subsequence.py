"""Set-based subsequence search over a long stream.

The paper cites SPRING [25] for *subsequence* similarity search under
DTW; this module provides the STS3 counterpart: given a long stream and
a query of length ``n``, find the stream windows whose cell-ID sets are
most Jaccard-similar to the query's.

The trick that makes this fast is that STS3's time axis is already
quantized into σ-sample columns.  Gridding the *stream* once with
absolute columns, a window starting at column ``c0`` has the cell set
``{(ac − c0, row)}`` of the stream cells it covers — so the
intersection size of the query against **every** column-aligned window
falls out of one sparse join on the row coordinate: each occupied
stream cell ``(ac, row)`` matches each query cell ``(rc, row)`` in the
window at offset ``c0 = ac − rc``.  Candidate generation over all
``N/σ`` alignments therefore costs roughly the number of (stream cell,
query cell) row-collisions, not ``O(N·n)``.

Column alignment quantizes the match position to multiples of σ; the
optional refinement step re-grids candidate windows at every sample
offset within ±σ of each candidate and re-scores them exactly.  Window
values are gridded against the stream's global value range (one
z-normalization for the whole stream) — the stationarity assumption is
documented on :class:`SubsequenceSearcher`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..exceptions import ParameterError
from .jaccard import jaccard

__all__ = ["SubsequenceMatch", "SubsequenceSearcher"]


@dataclass(frozen=True)
class SubsequenceMatch:
    """One subsequence answer: window start (sample index) + similarity."""

    offset: int
    similarity: float


class SubsequenceSearcher:
    """Sliding-window Jaccard search over a 1-D stream.

    The stream is gridded once: column ``ac = t // sigma`` on the time
    axis and ``row = floor((x − x_min)/epsilon)`` on the value axis,
    with the value range taken from the whole stream.  Queries must be
    on the same value scale as the stream (z-normalize the stream once
    and draw queries from the same normalization — the stationarity
    assumption; per-window re-normalization would break the
    incremental structure).
    """

    def __init__(self, stream: np.ndarray, sigma: int, epsilon: float):
        stream = np.asarray(stream, dtype=np.float64)
        if stream.ndim != 1:
            raise ParameterError("subsequence search is implemented for 1-D streams")
        if len(stream) < 2:
            raise ParameterError("stream must contain at least 2 points")
        if sigma < 1:
            raise ParameterError(f"sigma must be >= 1, got {sigma}")
        if epsilon <= 0:
            raise ParameterError(f"epsilon must be positive, got {epsilon}")
        self.stream = stream
        self.sigma = int(sigma)
        self.epsilon = float(epsilon)
        self._x_min = float(stream.min())
        x_span = float(stream.max()) - self._x_min
        self._n_rows = int(np.floor(x_span / epsilon)) + 1

        columns = np.arange(len(stream)) // self.sigma
        rows = self._rows_of(stream)
        # Occupied (column, row) stream cells, deduplicated.
        packed = columns * self._n_rows + rows
        occupied = np.unique(packed)
        self._cell_columns = occupied // self._n_rows
        self._cell_rows = occupied % self._n_rows
        self.n_columns = int(columns[-1]) + 1
        #: occupied-cell count per column, for window set sizes.
        self._cells_per_column = np.bincount(
            self._cell_columns, minlength=self.n_columns
        )

    def _rows_of(self, values: np.ndarray) -> np.ndarray:
        rows = np.floor((values - self._x_min) / self.epsilon).astype(np.int64)
        return np.clip(rows, 0, self._n_rows - 1)

    def _query_cells(self, query: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Distinct (relative column, row) cells of the query."""
        columns = np.arange(len(query)) // self.sigma
        rows = self._rows_of(np.asarray(query, dtype=np.float64))
        packed = np.unique(columns * self._n_rows + rows)
        return packed // self._n_rows, packed % self._n_rows

    def window_set(self, offset: int, length: int) -> np.ndarray:
        """Exact cell set of the window ``stream[offset : offset+length]``.

        The window is re-gridded with its own column origin (columns
        relative to ``offset``), which is what the refinement step and
        the brute-force reference in the tests use.
        """
        window = self.stream[offset : offset + length]
        columns = np.arange(len(window)) // self.sigma
        rows = self._rows_of(window)
        return np.unique(columns * self._n_rows + rows)

    def search(self, query: np.ndarray, k: int = 1, refine: bool = True) -> list[SubsequenceMatch]:
        """The ``k`` best non-duplicate window alignments for ``query``.

        Candidates are scored at every column-aligned offset via the
        sparse row join; with ``refine=True`` each of the top
        candidates is re-scored exactly at all sample offsets within
        ±σ and the best wins.  Returned matches are sorted by
        descending similarity; offsets are sample indices.
        """
        query = np.asarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ParameterError("query must be 1-D")
        n = len(query)
        if n < self.sigma:
            raise ParameterError("query must span at least one column")
        if n > len(self.stream):
            raise ParameterError("query is longer than the stream")
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")

        q_cols, q_rows = self._query_cells(query)
        q_size = len(q_cols)
        window_columns = int(np.ceil(n / self.sigma))
        max_c0 = self.n_columns - window_columns
        if max_c0 < 0:
            raise ParameterError("query is longer than the gridded stream")

        # Sparse join on the row coordinate: every (stream cell, query
        # cell) pair sharing a row votes for offset c0 = ac − rc.
        intersections = np.zeros(max_c0 + 1, dtype=np.int64)
        order = np.argsort(q_rows, kind="stable")
        q_rows_sorted = q_rows[order]
        q_cols_sorted = q_cols[order]
        row_starts = np.searchsorted(q_rows_sorted, self._cell_rows, side="left")
        row_ends = np.searchsorted(q_rows_sorted, self._cell_rows, side="right")
        for ac, lo, hi in zip(self._cell_columns, row_starts, row_ends):
            if lo == hi:
                continue
            offsets = ac - q_cols_sorted[lo:hi]
            valid = offsets[(offsets >= 0) & (offsets <= max_c0)]
            np.add.at(intersections, valid, 1)

        # Window set sizes from the per-column occupied-cell counts.
        cumulative = np.concatenate(([0], np.cumsum(self._cells_per_column)))
        window_sizes = (
            cumulative[window_columns : window_columns + max_c0 + 1]
            - cumulative[: max_c0 + 1]
        )
        unions = q_size + window_sizes - intersections
        similarities = np.where(unions > 0, intersections / np.maximum(unions, 1), 1.0)

        top = np.argsort(-similarities, kind="stable")[: max(k, 1)]
        matches: list[SubsequenceMatch] = []
        taken: list[int] = []
        for c0 in top.tolist():
            base = c0 * self.sigma
            if refine:
                best_offset, best_sim = base, -1.0
                lo = max(0, base - self.sigma + 1)
                hi = min(len(self.stream) - n, base + self.sigma - 1)
                q_set = np.unique(q_cols * self._n_rows + q_rows)
                for offset in range(lo, hi + 1):
                    sim = jaccard(self.window_set(offset, n), q_set)
                    if sim > best_sim:
                        best_offset, best_sim = offset, sim
                candidate = SubsequenceMatch(best_offset, best_sim)
            else:
                candidate = SubsequenceMatch(base, float(similarities[c0]))
            # Drop near-duplicate answers (overlapping refined windows).
            if any(abs(candidate.offset - t) < self.sigma for t in taken):
                continue
            taken.append(candidate.offset)
            matches.append(candidate)
            if len(matches) >= k:
                break
        matches.sort(key=lambda m: (-m.similarity, m.offset))
        return matches
