"""Approximate STS3 (Algorithm 5): coarse-to-fine candidate filtering.

Set representations of every database series are precomputed at coarse
grids ``2×2, 3×3, …, maxScale×maxScale`` (offline).  A query walks the
scales from coarsest to finest, at each scale keeping only the
candidates whose coarse Jaccard similarity is maximal (for k-NN: whose
similarity ties the k-th largest), and stops early once at most ``k``
candidates survive.  The survivors are finally ranked by their exact
full-resolution Jaccard similarity.

Implementation note: a coarse grid at scale ``s`` has only ``s²`` cells
(per value dimension), so a series' coarse set packs into
``ceil(s²/64)`` uint64 words — a :class:`~repro.core.bitset.BitsetStore`
row.  Every refinement round then runs as a popcount kernel: the coarse
``|S ∩ Q|`` of the query against all surviving candidates is
``popcount(matrix[candidates] & q)`` in one vectorized pass, replacing
both the paper's per-candidate Java loop and the earlier one-hot
incidence-matrix product (at 1/8th the memory of a uint8 matrix).
(For very high-dimensional series whose coarse grids exceed
``_DENSE_CELL_LIMIT`` cells, the code falls back to per-candidate
merges.)

The filtering is lossy — "the computation in the coarse scale may miss
the time series that are most similar" (Figure 3) — which is why the
benchmarks measure the error rate
``(approxDist − optimalDist) / optimalDist`` alongside the speed-up.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import EmptyDatabaseError, ParameterError
from ..obs import span
from .bitset import BitsetStore
from .cache import CandidateCache, fingerprint
from .grid import Bound, Grid
from .jaccard import jaccard
from .result import Neighbor, QueryResult, SearchStats
from .selection import top_k_indices
from .setrep import transform

__all__ = ["ApproximateSearcher"]

#: coarse grids larger than this use sorted-array sets, not bitsets.
_DENSE_CELL_LIMIT = 65536

#: per-searcher budget for cached coarse-filter survivor sets.  A
#: searcher is built over an immutable segment, so entries never go
#: stale and the cache is on by default; survivor arrays are small
#: (int64 indices), so 1 MiB holds thousands of distinct queries.
_CANDIDATE_CACHE_BYTES = 1 << 20


class _CoarseLevel:
    """One scale's precomputed representation of the whole database.

    A ``maxScale × maxScale`` grid fits every series in
    ``ceil(maxScale²/64)`` uint64 words, so the level is a tiny
    :class:`BitsetStore` and each refinement round is one popcount
    kernel over the surviving candidates.
    """

    def __init__(self, grid: Grid, series: list[np.ndarray]):
        self.grid = grid
        sets = [transform(s, grid) for s in series]
        self.lengths = np.asarray([len(s) for s in sets], dtype=np.int64)
        self.dense = grid.n_cells <= _DENSE_CELL_LIMIT
        if self.dense:
            self.store: BitsetStore | None = BitsetStore(sets)
            self.sets: list[np.ndarray] | None = None
        else:  # exercised via the sparse-fallback tests
            self.store = None
            self.sets = sets

    @property
    def nbytes(self) -> int:
        """Resident bytes of this level's candidate representation."""
        if self.store is not None:
            return self.store.nbytes + self.lengths.nbytes
        return sum(s.nbytes for s in self.sets) + self.lengths.nbytes

    def similarities(self, candidates: np.ndarray, query_rep: np.ndarray) -> np.ndarray:
        """Coarse Jaccard of the query against each candidate index."""
        q_len = len(query_rep)
        if self.dense:
            inter = self.store.intersection_counts_rows(
                candidates, self.store.pack(query_rep)
            )
        else:
            inter = np.asarray(
                [
                    np.intersect1d(self.sets[i], query_rep, assume_unique=True).size
                    for i in candidates
                ],
                dtype=np.int64,
            )
        union = self.lengths[candidates] + q_len - inter
        return np.where(union > 0, inter / np.maximum(union, 1), 1.0)


class ApproximateSearcher:
    """Multi-scale approximate k-NN search.

    Needs the raw series (not just their fine-grid sets) because the
    coarse representations are recomputed from the points at each
    scale, exactly as the paper's offline step does (Algorithm 5,
    lines 1-5).
    """

    def __init__(
        self,
        series: list[np.ndarray],
        sets: list[np.ndarray],
        bound: Bound,
        max_scale: int = 4,
    ):
        if not sets:
            raise EmptyDatabaseError("cannot search an empty database")
        if len(series) != len(sets):
            raise ParameterError("series and sets must be parallel lists")
        if max_scale < 2:
            raise ParameterError(f"max_scale must be >= 2, got {max_scale}")
        self.sets = sets
        self.bound = bound
        self.max_scale = int(max_scale)
        #: ``Ddivision[scale]``: per-scale coarse grids + representations.
        self.levels: dict[int, _CoarseLevel] = {
            scale: _CoarseLevel(Grid.from_resolution(bound, scale), series)
            for scale in range(2, self.max_scale + 1)
        }
        #: survivor sets keyed on the query's exact coarse reps (see
        #: :meth:`filter_candidates`); segment immutability is the
        #: invalidation story, so this needs no generation component.
        self._candidates = CandidateCache(_CANDIDATE_CACHE_BYTES)

    def __len__(self) -> int:
        return len(self.sets)

    def filter_candidates(
        self, query_series: np.ndarray, k: int
    ) -> tuple[np.ndarray, int]:
        """Lines 6-22: shrink the search set scale by scale.

        Returns the surviving candidate indices and the number of
        filtering rounds executed.
        """
        # All coarse reps are computed up front so the cache key covers
        # *exactly* the inputs filtering depends on — two queries with
        # identical reps at every scale provably produce identical
        # survivors, so serving the cached set is bit-identical, not
        # heuristic.  (max_scale is small, so the extra transforms on an
        # early-exit miss are noise next to the similarity kernels.)
        reps = {
            scale: transform(query_series, self.levels[scale].grid)
            for scale in range(2, self.max_scale + 1)
        }
        key = (
            int(k),
            fingerprint(*(reps[s].tobytes() for s in sorted(reps))),
        )
        cached = self._candidates.get(key)
        if cached is not None:
            survivors, rounds = cached
            return survivors.copy(), rounds
        candidates = np.arange(len(self.sets), dtype=np.int64)
        rounds = 0
        for scale in range(2, self.max_scale + 1):
            rounds += 1
            level = self.levels[scale]
            query_rep = reps[scale]
            sims = level.similarities(candidates, query_rep)
            if len(candidates) > k:
                # Keep everything tying the k-th largest similarity, so
                # the 1-NN case keeps exactly the argmax ties (line 14).
                kth = np.partition(sims, len(sims) - k)[len(sims) - k]
                candidates = candidates[sims >= kth]
            if len(candidates) <= k:
                break
        self._candidates.put(
            key, (candidates.copy(), rounds), candidates.nbytes + 64
        )
        return candidates, rounds

    def query(
        self, query_series: np.ndarray, query_set: np.ndarray, k: int = 1
    ) -> QueryResult:
        """Approximate k-NN: coarse filtering then exact refinement.

        ``query_series`` drives the coarse-scale filtering;
        ``query_set`` is the full-resolution set representation used
        for the final ranking (lines 23-30).
        """
        if k < 1:
            raise ParameterError(f"k must be >= 1, got {k}")
        k = min(k, len(self.sets))
        with span("filter"):
            survivors, rounds = self.filter_candidates(query_series, k)
        stats = SearchStats(
            candidates=len(self.sets),
            filter_rounds=rounds,
            final_candidates=len(survivors),
            pruned=len(self.sets) - len(survivors),
        )
        with span("refine", survivors=len(survivors)):
            sims = np.asarray(
                [jaccard(self.sets[index], query_set) for index in survivors.tolist()],
                dtype=np.float64,
            )
            stats.exact_computations += len(survivors)
        with span("select_topk"):
            # O(n) deterministic selection over the survivors; the
            # tie-break runs on database indices, not survivor
            # positions, so ties resolve exactly as a full scan would.
            chosen = top_k_indices(sims, k, tie_break=survivors)
            neighbors = [
                Neighbor(index=int(survivors[i]), similarity=float(sims[i]))
                for i in chosen.tolist()
            ]
        return QueryResult(neighbors=neighbors, stats=stats)
