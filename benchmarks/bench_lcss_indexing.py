"""Background bench: the LCSS acceleration stack of the paper's intro.

"In LCSS, time series are indexed as MBRs stored in an R-tree ... the
exact LCSS is performed only on the qualified sequences.  Thus, by
excluding the series that cannot be in k-NN, LCSS is accelerated."
(Section 1.)  The paper's argument is that this acceleration "depends
on the rapid estimation of accurate distance, which is related to the
specific data" — i.e. it helps, but not enough to close the gap to
STS3.  This bench measures exactly that: plain LCSS scan vs FTSE vs the
MBE/R-tree search vs STS3 on one workload.
"""

from __future__ import annotations

import pytest

from repro.baselines import MBESearcher, knn_search, measures
from repro.bench import Timer, render_table, scaled
from repro.core import STS3Database
from repro.data.workloads import ecg_workload


@pytest.fixture(scope="module")
def experiment(report):
    n_series = scaled(2000, minimum=100)
    n_queries = scaled(40, minimum=3)
    workload = ecg_workload(n_series, n_queries, length=128, seed=16)

    with Timer() as t_scan:
        for q in workload.queries:
            knn_search(
                workload.database, q, measures.lcss(0.3, 0.05), k=1, early_stop=False
            )
    with Timer() as t_ftse:
        for q in workload.queries:
            knn_search(
                workload.database, q, measures.ftse(0.3, 0.05), k=1, early_stop=False
            )
    mbe = MBESearcher(workload.database, delta_fraction=0.05, epsilon=0.3)
    with Timer() as t_mbe:
        for q in workload.queries:
            mbe.nearest(q)
    db = STS3Database(workload.database, sigma=3, epsilon=0.5, normalize=False)
    db.indexed_searcher()
    with Timer() as t_sts3:
        for q in workload.queries:
            db.query(q, k=1, method="index")

    verified_share = mbe.stats["verified"] / (n_series * n_queries)
    rows = [
        ["LCSS full scan", t_scan.millis / n_queries, "-"],
        ["FTSE evaluation", t_ftse.millis / n_queries, "-"],
        ["MBE + R-tree", t_mbe.millis / n_queries, f"{verified_share:.2f} verified"],
        ["STS3 (index)", t_sts3.millis / n_queries, "-"],
    ]
    report(
        "lcss_indexing",
        render_table(
            ["method", "ms / query", "note"],
            rows,
            title=(
                f"Section 1 LCSS acceleration stack "
                f"(#series={n_series}, len=128, delta=5%, eps=0.3)"
            ),
        ),
    )
    # The paper's narrative: indexing accelerates LCSS, but STS3 stays
    # orders of magnitude ahead.
    assert t_mbe.seconds <= t_scan.seconds * 1.2
    assert t_sts3.seconds < t_mbe.seconds
    return workload, mbe, db


def test_bench_mbe(benchmark, experiment):
    workload, mbe, _ = experiment
    benchmark.pedantic(
        lambda: mbe.nearest(workload.queries[0]), rounds=3, iterations=1
    )


def test_bench_sts3(benchmark, experiment):
    workload, _, db = experiment
    benchmark(lambda: db.query(workload.queries[0], k=1, method="index"))
