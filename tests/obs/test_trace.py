"""Tracer edge cases: nesting, exceptions, no-op mode, threads, forks."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    NOOP,
    NoopTracer,
    Span,
    Tracer,
    get_tracer,
    span,
    use_tracer,
)
from repro.obs.trace import _NOOP_SPAN


class TestNesting:
    def test_parent_child_ids(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query") as parent:
                with span("filter") as child:
                    pass
        assert child.parent_id == parent.span_id
        assert parent.parent_id is None

    def test_siblings_share_parent(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query") as parent:
                with span("filter") as a:
                    pass
                with span("refine") as b:
                    pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_to_dicts_builds_forest(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query"):
                with span("filter"):
                    pass
                with span("refine"):
                    pass
            with span("query"):
                pass
        forest = tracer.to_dicts()
        assert [node["name"] for node in forest] == ["query", "query"]
        assert [c["name"] for c in forest[0]["children"]] == ["filter", "refine"]
        assert forest[1]["children"] == []

    def test_durations_nest(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer") as outer:
                with span("inner") as inner:
                    pass
        assert outer.duration_ns >= inner.duration_ns >= 0

    def test_attrs_recorded_and_settable(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("tile", kernel="dense") as s:
                s.set(queries=32)
        assert s.attrs == {"kernel": "dense", "queries": 32}
        assert tracer.to_dicts()[0]["attrs"] == {"kernel": "dense", "queries": 32}

    def test_orphan_parent_becomes_root(self):
        # A span whose parent never finished (it lived in a forked
        # worker, or is still open) must render as a root, not vanish.
        tracer = Tracer()
        orphan = Span(tracer, "filter", parent_id=10 ** 9, attrs={})
        with orphan:
            pass
        forest = tracer.to_dicts()
        assert [node["name"] for node in forest] == ["filter"]


class TestExceptions:
    def test_span_closes_and_records_error(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError, match="boom"):
                with span("refine") as s:
                    raise ValueError("boom")
        assert s.end_ns is not None
        assert s.error == "ValueError"
        assert tracer.stage_counts() == {"refine": 1}

    def test_outer_span_survives_inner_failure(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query") as outer:
                with pytest.raises(KeyError):
                    with span("filter"):
                        raise KeyError("x")
                with span("refine") as after:
                    pass
        assert outer.error is None
        assert after.parent_id == outer.span_id

    def test_use_tracer_restores_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with use_tracer(tracer):
                assert get_tracer() is tracer
                raise RuntimeError
        assert get_tracer() is NOOP

    def test_error_shown_in_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with pytest.raises(ValueError):
                with span("filter"):
                    raise ValueError
        assert "!ValueError" in tracer.format_tree()


class TestNoopMode:
    def test_default_tracer_is_noop(self):
        assert get_tracer() is NOOP
        assert isinstance(NOOP, NoopTracer)
        assert NOOP.enabled is False

    def test_noop_span_is_shared_singleton(self):
        a = span("query")
        b = span("filter", method="index")
        assert a is b is _NOOP_SPAN

    def test_noop_emits_nothing(self):
        with span("query"):
            with span("filter"):
                pass
        assert NOOP.finished() == []

    def test_noop_set_is_chainable(self):
        with span("tile") as s:
            assert s.set(queries=4) is s

    def test_noop_never_swallows(self):
        with pytest.raises(ValueError):
            with span("query"):
                raise ValueError

    def test_real_tracer_leaves_no_residue_in_noop(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query"):
                pass
        with span("query"):  # back in no-op mode
            pass
        assert len(tracer.finished()) == 1


class TestThreads:
    def test_threads_keep_independent_stacks(self):
        tracer = Tracer()
        barrier = threading.Barrier(2)
        spans_by_thread = {}

        def work(tag):
            with tracer.span(f"query-{tag}") as outer:
                barrier.wait()  # both outers open concurrently
                with tracer.span(f"filter-{tag}") as inner:
                    pass
            spans_by_thread[tag] = (outer, inner)

        threads = [threading.Thread(target=work, args=(t,)) for t in "ab"]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        for tag in "ab":
            outer, inner = spans_by_thread[tag]
            # each inner is parented to its own thread's outer, never
            # to the other thread's concurrently-open span
            assert inner.parent_id == outer.span_id
        assert len(tracer.finished()) == 4


class TestWorkerForks:
    def test_query_batch_fork_keeps_parent_trace_well_formed(self, small_db,
                                                             small_workload):
        tracer = Tracer()
        with use_tracer(tracer):
            results = small_db.query_batch(
                small_workload.queries[:4], k=3, method="index", workers=2
            )
        assert len(results) == 4
        counts = tracer.stage_counts()
        # the parent's root span closed normally across the fork
        assert counts.get("query_batch") == 1
        # worker-process spans died with the workers: every recorded
        # span still resolves into one single-rooted forest
        forest = tracer.to_dicts()

        def count(nodes):
            return sum(1 + count(n["children"]) for n in nodes)

        assert count(forest) == len(tracer.finished())
        roots = [n["name"] for n in forest]
        assert "query_batch" in roots

    def test_forked_and_serial_traces_agree_on_root(self, small_db,
                                                    small_workload):
        serial = Tracer()
        with use_tracer(serial):
            small_db.query_batch(small_workload.queries[:4], k=3, method="index")
        forked = Tracer()
        with use_tracer(forked):
            small_db.query_batch(
                small_workload.queries[:4], k=3, method="index", workers=2
            )
        assert serial.stage_counts()["query_batch"] == 1
        assert forked.stage_counts()["query_batch"] == 1


class TestInspection:
    def test_stage_seconds_sums_and_sorts(self):
        tracer = Tracer()
        with use_tracer(tracer):
            for _ in range(3):
                with span("filter"):
                    pass
            with span("refine"):
                pass
        stages = tracer.stage_seconds()
        assert list(stages) == ["filter", "refine"]
        assert stages["filter"] >= 0
        assert tracer.stage_counts() == {"filter": 3, "refine": 1}
        assert tracer.total_seconds("filter") == pytest.approx(stages["filter"])
        assert tracer.total_seconds("missing") == 0.0

    def test_reset_clears_finished(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query"):
                pass
        tracer.reset()
        assert tracer.finished() == []
        assert tracer.stage_seconds() == {}

    def test_format_tree_indents_and_truncates(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query", method="index"):
                for _ in range(5):
                    with span("filter"):
                        pass
        tree = tracer.format_tree()
        lines = tree.splitlines()
        assert "query" in lines[0] and "method=index" in lines[0]
        assert all("  filter" in line for line in lines[1:])
        truncated = tracer.format_tree(max_spans=2)
        assert "... (4 more spans)" in truncated

    def test_to_dict_shape(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("query", k=3) as s:
                pass
        d = s.to_dict()
        assert d["name"] == "query"
        assert d["duration_ns"] == s.duration_ns
        assert d["attrs"] == {"k": 3}
        assert "error" not in d

    def test_open_span_duration_is_none(self):
        tracer = Tracer()
        s = tracer.span("query")
        s.__enter__()
        assert s.duration_ns is None
        assert s.duration_s == 0.0
        s.__exit__(None, None, None)
        assert s.duration_ns >= 0
